"""The probe runner: schedules in, measurements out.

Executes every :class:`~repro.probing.backends.ProbeRequest` of a
schedule against a backend, delivering successes to a sink and
returning an auditable :class:`RunReport`. Failure handling is
delegated to the resilience layer:

* a :class:`~repro.resilience.RetryPolicy` bounds attempts per probe,
  spaces retries with decorrelated-jitter backoff, and enforces a
  per-campaign wall-clock deadline (after which no new work starts);
* an optional :class:`~repro.resilience.BreakerBoard` short-circuits
  probes whose ``(backend, client)`` circuit is open, so a dead dataset
  stops consuming the schedule;
* an optional :class:`~repro.resilience.CampaignJournal` makes the run
  crash-safe: completed probes are recorded after their measurement is
  in the sink, and an interrupted campaign resumed against the same
  journal skips exactly the work already done.

Both :class:`~repro.core.exceptions.BackendError` (the backend failed
the probe) and ``OSError`` from the sink (the measurement could not be
persisted) consume attempts; any other exception is a bug and
propagates.

The runner is synchronous and single-threaded on purpose: probe
*timing* lives in the schedule's timestamps, not in wall-clock
concurrency, so a deterministic loop is both sufficient and exactly
reproducible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.core.exceptions import BackendError
from repro.obs import counter, gauge, get_logger, timer
from repro.obs.health import get_health_monitor
from repro.resilience import CampaignJournal, RetryPolicy, probe_key
from repro.resilience.breaker import BreakerBoard

from .backends import MeasurementBackend, ProbeRequest
from .sinks import ResultSink

_logger = get_logger(__name__)

_SCHEDULED = counter("probe.runner.scheduled")
_SUCCEEDED = counter("probe.runner.succeeded")
_RETRIED = counter("probe.runner.retried")
_ABANDONED = counter("probe.runner.abandoned")
_SHORT_CIRCUITED = counter("probe.circuit.short_circuited")
_RESUMED = counter("probe.runner.resumed")
_DEADLINE_EXPIRED = counter("probe.runner.deadline_expired")

# Liveness gauges, maintained on every run (telemetry server or not) so
# `iqb metrics` shows batch-run liveness through the same vocabulary a
# live /healthz scrape uses.
_UPTIME = gauge("probe.runner.uptime_s")
_LAST_RUN = gauge("probe.runner.last_run_unix")
_OPEN_CIRCUITS = gauge("probe.circuit.open")

#: Process start reference for the uptime gauge (module import is as
#: close to process start as a library can observe).
_PROCESS_START_UNIX = time.time()


def backend_name(backend: MeasurementBackend) -> str:
    """The stable name used in breaker keys for ``backend``.

    Wrappers (e.g. :class:`~repro.resilience.ChaosBackend`) may expose a
    ``name`` attribute to keep breaker keys stable across wrapping;
    otherwise the class name serves.
    """
    return str(getattr(backend, "name", type(backend).__name__))


@dataclass(frozen=True)
class FailedProbe:
    """A probe abandoned after exhausting its retries."""

    request: ProbeRequest
    attempts: int
    last_error: str


@dataclass(frozen=True)
class RunReport:
    """Outcome accounting for one runner invocation."""

    scheduled: int
    succeeded: int
    retried: int
    abandoned: Tuple[FailedProbe, ...]
    #: Wall-clock bounds of the invocation (Unix seconds; 0.0 when the
    #: report was constructed by hand rather than by ``run``).
    started_unix: float = 0.0
    finished_unix: float = 0.0
    #: Probes skipped because their circuit breaker was open.
    short_circuited: int = 0
    #: Probes skipped because a journal shows them already completed.
    resumed: int = 0
    #: True when the campaign deadline expired before the schedule was
    #: exhausted (remaining probes never started and are not counted).
    deadline_expired: bool = False

    @property
    def duration_s(self) -> float:
        """Wall-clock seconds the invocation took."""
        return self.finished_unix - self.started_unix

    @property
    def success_rate(self) -> Optional[float]:
        """Fraction of scheduled probes that eventually succeeded.

        ``None`` when nothing was scheduled: an empty run carries no
        evidence of health, and reporting it as 1.0 let a monitor that
        scheduled zero probes read as perfectly healthy.
        """
        if self.scheduled == 0:
            return None
        return self.succeeded / self.scheduled


class ProbeRunner:
    """Executes probe schedules against a backend with retries."""

    def __init__(
        self,
        backend: MeasurementBackend,
        sink: ResultSink,
        max_attempts: int = 3,
        retry_policy: Optional[RetryPolicy] = None,
        breakers: Optional[BreakerBoard] = None,
        journal: Optional[CampaignJournal] = None,
    ) -> None:
        """Args:
            backend: where probes run.
            sink: where successful measurements go.
            max_attempts: total tries per probe (1 = no retries);
                ignored when ``retry_policy`` is given.
            retry_policy: attempt budget + backoff + campaign deadline.
                The default policy retries immediately (no backoff, no
                deadline), matching the historical runner.
            breakers: per-(backend, client) circuit breakers; ``None``
                disables short-circuiting.
            journal: crash-safe campaign journal; when given, probes
                recorded complete in it are skipped and new completions
                are recorded after their measurement reaches the sink.
        """
        if retry_policy is None:
            retry_policy = RetryPolicy(max_attempts=max_attempts)
        self.backend = backend
        self.sink = sink
        self.policy = retry_policy
        self.max_attempts = retry_policy.max_attempts
        self.breakers = breakers
        self.journal = journal
        # Per-backend probe latency histogram, bound once per runner so
        # the hot loop does no registry lookups.
        self._latency = timer(f"probe.latency.{type(backend).__name__}")

    def run(self, schedule: Iterable[ProbeRequest]) -> RunReport:
        """Execute every request in the schedule.

        ``BackendError`` from the backend and ``OSError`` from the sink
        are retried within the policy's attempt budget and then
        abandoned (recorded in the report); any other exception is a
        bug and propagates. With a journal, completed probes are
        durably recorded and a compaction checkpoint is attempted even
        when the run dies mid-schedule.
        """
        started_unix = time.time()
        scheduled = 0
        succeeded = 0
        retried = 0
        short_circuited = 0
        resumed = 0
        deadline_expired = False
        abandoned: List[FailedProbe] = []
        deadline = self.policy.deadline()
        source = backend_name(self.backend)
        try:
            for request in schedule:
                if deadline.expired():
                    # Stop *starting* work: a campaign must not outlive
                    # its reporting window on a slow-failing backend.
                    deadline_expired = True
                    _DEADLINE_EXPIRED.inc()
                    _logger.warning(
                        "campaign deadline expired after %.1fs",
                        deadline.elapsed(),
                        extra={"ctx": {"deadline_s": deadline.seconds}},
                    )
                    break
                key = probe_key(request.client, request.region,
                                request.timestamp)
                if self.journal is not None and key in self.journal:
                    resumed += 1
                    _RESUMED.inc()
                    continue
                scheduled += 1
                _SCHEDULED.inc()
                if self.breakers is not None:
                    guard = self.breakers.breaker((source, request.client))
                    if not guard.allow():
                        short_circuited += 1
                        _SHORT_CIRCUITED.inc()
                        continue
                else:
                    guard = None
                delivered, attempts, last_error = self._run_one(
                    request, guard, deadline
                )
                retried += attempts - 1
                if delivered:
                    succeeded += 1
                    _SUCCEEDED.inc()
                    if self.journal is not None:
                        self.journal.record(key)
                else:
                    _ABANDONED.inc()
                    _logger.warning(
                        "probe abandoned after %d attempts",
                        attempts,
                        extra={
                            "ctx": {
                                "client": request.client,
                                "region": request.region,
                                "error": last_error,
                            }
                        },
                    )
                    abandoned.append(
                        FailedProbe(
                            request=request,
                            attempts=attempts,
                            last_error=last_error,
                        )
                    )
        finally:
            # Runs even when the campaign dies (KeyboardInterrupt, a
            # sink bug): compact what completed so a resume skips it.
            if self.journal is not None:
                self.journal.checkpoint()
            if self.breakers is not None:
                _OPEN_CIRCUITS.set(float(self.breakers.open_count()))
            _RETRIED.inc(retried)
            finished_unix = time.time()
            _LAST_RUN.set(finished_unix)
            _UPTIME.set(finished_unix - _PROCESS_START_UNIX)
        return RunReport(
            scheduled=scheduled,
            succeeded=succeeded,
            retried=retried,
            abandoned=tuple(abandoned),
            started_unix=started_unix,
            finished_unix=finished_unix,
            short_circuited=short_circuited,
            resumed=resumed,
            deadline_expired=deadline_expired,
        )

    def _run_one(self, request, guard, deadline):
        """One probe through its full retry sequence.

        Returns ``(delivered, attempts, last_error)``; attempts counts
        every try made, so ``attempts - 1`` is this probe's retries.
        """
        debug = _logger.isEnabledFor(10)  # logging.DEBUG
        last_error = ""
        attempt = 0
        delays = self.policy.delays()
        while True:
            attempt += 1
            error: Optional[str] = None
            started = time.perf_counter()
            try:
                measurement = self.backend.run(request)
            except BackendError as exc:
                error = str(exc)
            self._latency.observe(time.perf_counter() - started)
            if error is None:
                try:
                    self.sink.accept(measurement)
                except OSError as exc:
                    error = f"sink write failed: {exc}"
            if error is None:
                if guard is not None:
                    guard.record_success()
                # The sink accepted the measurement: advance health
                # freshness. Freshness-only (count=False) because a
                # sketch-feeding sink already notifies per record —
                # the freshness watermark is an idempotent max, but a
                # second completeness count would double-book the
                # sample.
                health = get_health_monitor()
                if health is not None:
                    health.record_arrival(
                        measurement.region,
                        measurement.source,
                        measurement.timestamp,
                        count=False,
                    )
                return True, attempt, ""
            last_error = error
            if guard is not None:
                guard.record_failure()
            delay = next(delays, None)
            if delay is None or deadline.expired():
                return False, attempt, last_error
            if debug:
                _logger.debug(
                    "probe retry",
                    extra={
                        "ctx": {
                            "client": request.client,
                            "region": request.region,
                            "attempt": attempt,
                            "error": last_error,
                        }
                    },
                )
            self.policy.backoff(delay)
