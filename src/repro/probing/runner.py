"""The probe runner: schedules in, measurements out.

Executes every :class:`~repro.probing.backends.ProbeRequest` of a
schedule against a backend, with bounded retries on
:class:`~repro.core.exceptions.BackendError` (transient failures are a
fact of life for real measurement infrastructure) and a final abandon
count, delivering successes to a sink and returning an auditable
:class:`RunReport`.

The runner is synchronous and single-threaded on purpose: probe
*timing* lives in the schedule's timestamps, not in wall-clock
concurrency, so a deterministic loop is both sufficient and exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.core.exceptions import BackendError

from .backends import MeasurementBackend, ProbeRequest
from .sinks import ResultSink


@dataclass(frozen=True)
class FailedProbe:
    """A probe abandoned after exhausting its retries."""

    request: ProbeRequest
    attempts: int
    last_error: str


@dataclass(frozen=True)
class RunReport:
    """Outcome accounting for one runner invocation."""

    scheduled: int
    succeeded: int
    retried: int
    abandoned: Tuple[FailedProbe, ...]

    @property
    def success_rate(self) -> float:
        """Fraction of scheduled probes that eventually succeeded."""
        if self.scheduled == 0:
            return 1.0
        return self.succeeded / self.scheduled


class ProbeRunner:
    """Executes probe schedules against a backend with retries."""

    def __init__(
        self,
        backend: MeasurementBackend,
        sink: ResultSink,
        max_attempts: int = 3,
    ) -> None:
        """Args:
            backend: where probes run.
            sink: where successful measurements go.
            max_attempts: total tries per probe (1 = no retries).
        """
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {max_attempts}")
        self.backend = backend
        self.sink = sink
        self.max_attempts = max_attempts

    def run(self, schedule: Iterable[ProbeRequest]) -> RunReport:
        """Execute every request in the schedule.

        BackendErrors are retried up to ``max_attempts`` times and then
        abandoned (recorded in the report); any other exception is a
        bug and propagates.
        """
        scheduled = 0
        succeeded = 0
        retried = 0
        abandoned: List[FailedProbe] = []
        for request in schedule:
            scheduled += 1
            last_error = ""
            for attempt in range(1, self.max_attempts + 1):
                try:
                    measurement = self.backend.run(request)
                except BackendError as exc:
                    last_error = str(exc)
                    if attempt < self.max_attempts:
                        retried += 1
                    continue
                self.sink.accept(measurement)
                succeeded += 1
                break
            else:
                abandoned.append(
                    FailedProbe(
                        request=request,
                        attempts=self.max_attempts,
                        last_error=last_error,
                    )
                )
        return RunReport(
            scheduled=scheduled,
            succeeded=succeeded,
            retried=retried,
            abandoned=tuple(abandoned),
        )
