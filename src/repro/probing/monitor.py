"""Continuous barometer monitoring: windows in, alerts out.

:class:`BarometerMonitor` is the long-running-operator composition of
the pieces below it: each reporting window's measurements are ingested,
every region's IQB is appended to its history, and the trailing-median
drop detector (:func:`repro.analysis.temporal.detect_drops`) decides
whether the *new* window constitutes an alert. The monitor is
deliberately batch-synchronous — feed it a window, get back alerts —
so it is trivially drivable from a cron job, a stream consumer, or a
simulation loop (see ``examples/incident_monitoring.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.temporal import ScorePoint, detect_drops
from repro.core.config import IQBConfig
from repro.core.exceptions import DataError
from repro.core.scoring import QUANTILE_SOURCES, score_region
from repro.measurements.collection import MeasurementSet
from repro.measurements.record import Measurement
from repro.measurements.sketchplane import SketchPlane
from repro.obs import counter, gauge, get_logger
from repro.obs.health import get_health_monitor

_logger = get_logger(__name__)

_WINDOWS_SCORED = counter("monitor.windows.scored")
_WINDOWS_THIN = counter("monitor.windows.below_min_samples")
_WINDOWS_UNSCORABLE = counter("monitor.windows.unscorable")
_ALERTS = counter("monitor.alerts")

# Liveness gauges for /healthz and `iqb metrics`: a healthy campaign
# keeps completing cycles; a stalled one stops advancing these.
_CYCLES = gauge("monitor.cycles")
_LAST_CYCLE = gauge("monitor.last_cycle_unix")

# Streamed-but-unscored measurements in the open sketch window: a
# score_pending loop that stalls shows up as this gauge climbing while
# monitor.cycles stands still (the complement of the stalled-campaign
# 503, which only fires once cycles stop entirely).
_PENDING = gauge("monitor.pending.records")


@dataclass(frozen=True)
class Alert:
    """One region's score collapsed in the just-ingested window."""

    region: str
    window_start: float
    window_end: float
    score: float
    baseline: float

    @property
    def drop(self) -> float:
        """How far below the trailing baseline the window fell."""
        return self.baseline - self.score

    def __str__(self) -> str:
        return (
            f"ALERT {self.region}: IQB {self.score:.3f} "
            f"vs baseline {self.baseline:.3f} "
            f"(-{self.drop:.3f}) in window starting "
            f"{self.window_start / 86400.0:.1f}d"
        )


class BarometerMonitor:
    """Stateful window-by-window monitor over one or more regions."""

    def __init__(
        self,
        config: IQBConfig,
        min_drop: float = 0.1,
        trailing: int = 3,
        min_samples: int = 20,
        quantiles: str = "exact",
    ) -> None:
        """Args:
            config: scoring configuration for every window.
            min_drop: alert threshold below the trailing baseline.
            trailing: windows in the baseline median.
            min_samples: windows with fewer tests are recorded as
                unscored (they never alert and never enter baselines).
            quantiles: ``"exact"`` scores each window by batch sort
                (the original path); ``"sketch"`` scores from streaming
                t-digests, enabling :meth:`observe` /
                :meth:`score_pending` — measurements fold in one at a
                time and closing the window re-reads live sketches
                instead of recomputing the batch.
        """
        if min_drop <= 0:
            raise ValueError(f"min_drop must be positive: {min_drop}")
        if trailing < 1:
            raise ValueError(f"trailing must be >= 1: {trailing}")
        if quantiles not in QUANTILE_SOURCES:
            raise ValueError(
                f"unknown quantile source: {quantiles!r} "
                f"(have {QUANTILE_SOURCES})"
            )
        self.config = config
        self.min_drop = min_drop
        self.trailing = trailing
        self.min_samples = min_samples
        self.quantiles = quantiles
        self._history: Dict[str, List[ScorePoint]] = {}
        self._pending: Optional[SketchPlane] = (
            SketchPlane() if quantiles == "sketch" else None
        )

    def history(self, region: str) -> Tuple[ScorePoint, ...]:
        """The region's full window history so far."""
        return tuple(self._history.get(region, ()))

    def regions(self) -> Tuple[str, ...]:
        """Regions seen so far, sorted."""
        return tuple(sorted(self._history))

    # -- resumable state ----------------------------------------------------
    #
    # A monitoring campaign is exactly its per-region window history:
    # serializing that (plus per-window redo entries in the campaign
    # journal) is what lets `iqb monitor --resume` continue a killed
    # campaign with identical baselines and alerts.

    def state_dict(self) -> Dict[str, Any]:
        """The full monitor state as a JSON-compatible document.

        In sketch mode this includes the live t-digest plane of any
        not-yet-closed window (``pending_sketch``), so a resumed
        campaign continues mid-window with the same sketches.
        """
        document: Dict[str, Any] = {
            "history": {
                region: [
                    [p.start, p.end, p.score, p.samples] for p in history
                ]
                for region, history in self._history.items()
            }
        }
        if self.quantiles != "exact":
            document["quantiles"] = self.quantiles
        if self._pending is not None and len(self._pending):
            document["pending_sketch"] = self._pending.to_state()
        return document

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Replace history with a :meth:`state_dict` document."""
        history: Dict[str, List[ScorePoint]] = {}
        for region, points in dict(state.get("history", {})).items():
            history[str(region)] = [self._point(entry) for entry in points]
        self._history = history
        if self.quantiles == "sketch":
            pending = state.get("pending_sketch")
            self._pending = (
                SketchPlane.from_state(dict(pending))
                if pending
                else SketchPlane()
            )
            # A resumed campaign reports its carried-over buffer; the
            # liveness gauges (cycles, last_cycle_unix) are left alone
            # so a journal restore never masquerades as fresh progress.
            _PENDING.set(float(len(self._pending)))

    def window_state(
        self, window_start: float, window_end: float
    ) -> Dict[str, List[Any]]:
        """One window's per-region points (a journal redo payload)."""
        out: Dict[str, List[Any]] = {}
        for region, history in self._history.items():
            for point in history:
                if point.start == window_start and point.end == window_end:
                    out[region] = [
                        point.start, point.end, point.score, point.samples
                    ]
        return out

    def apply_window(self, points: Mapping[str, Sequence[Any]]) -> None:
        """Redo one window from its :meth:`window_state` payload.

        Appends the recorded points without rescoring (the window's raw
        measurements are gone by resume time) and without re-emitting
        alerts (they were already delivered by the original run).
        """
        for region in sorted(points):
            self._history.setdefault(str(region), []).append(
                self._point(points[region])
            )

    @staticmethod
    def _point(entry: Sequence[Any]) -> ScorePoint:
        start, end, score, samples = entry
        return ScorePoint(
            start=float(start),
            end=float(end),
            score=None if score is None else float(score),
            samples=int(samples),
        )

    def _score_window(self, records: MeasurementSet) -> Optional[float]:
        if len(records) < self.min_samples:
            _WINDOWS_THIN.inc()
            return None
        try:
            value = score_region(records.group_by_source(), self.config).value
        except DataError as exc:
            # A window that cannot be scored is an infrastructure event,
            # not a silent no-op: count it and say why.
            _WINDOWS_UNSCORABLE.inc()
            _logger.warning(
                "window unscorable: %s",
                exc,
                extra={"ctx": {"samples": len(records)}},
            )
            return None
        _WINDOWS_SCORED.inc()
        return value

    def _score_sketch_region(
        self, sources: Mapping[str, Any], samples: int
    ) -> Optional[float]:
        """Score one region's live sketch cells (no batch recompute)."""
        if samples < self.min_samples:
            _WINDOWS_THIN.inc()
            return None
        try:
            value = score_region(
                sources, self.config, quantile_source="sketch"
            ).value
        except DataError as exc:
            _WINDOWS_UNSCORABLE.inc()
            _logger.warning(
                "window unscorable: %s",
                exc,
                extra={"ctx": {"samples": samples}},
            )
            return None
        _WINDOWS_SCORED.inc()
        return value

    # -- streaming (sketch mode) --------------------------------------------

    def observe(self, record: Measurement) -> None:
        """Fold one measurement into the open window — O(1) amortized.

        Sketch mode only: the record lands in the live
        :class:`~repro.measurements.sketchplane.SketchPlane` and the
        next :meth:`score_pending` reads it, without ever re-sorting
        the window's accumulated measurements.

        Raises:
            ValueError: in exact mode, which has no live plane.
        """
        if self._pending is None:
            raise ValueError(
                "observe() requires quantiles='sketch'; the exact "
                "monitor scores whole windows via ingest()"
            )
        self._pending.add(record)
        _PENDING.set(float(len(self._pending)))

    def pending(self) -> int:
        """Measurements streamed into the open window so far."""
        return 0 if self._pending is None else len(self._pending)

    def score_pending(
        self, window_start: float, window_end: float
    ) -> List[Alert]:
        """Close the streamed window: score live sketches, emit alerts.

        The incremental counterpart of :meth:`ingest` — every region's
        percentiles are read straight from its t-digests, so closing a
        window costs O(cells · delta) regardless of how many
        measurements :meth:`observe` buffered. The plane resets for
        the next window.

        Raises:
            ValueError: on an inverted window or in exact mode.
        """
        if self._pending is None:
            raise ValueError(
                "score_pending() requires quantiles='sketch'"
            )
        if window_end <= window_start:
            raise ValueError(
                f"inverted window: [{window_start}, {window_end})"
            )
        scored: Dict[str, Tuple[Optional[float], int]] = {}
        for region, sources in self._pending.sources_by_region().items():
            samples = sum(len(view) for view in sources.values())
            scored[region] = (
                self._score_sketch_region(sources, samples),
                samples,
            )
        self._pending = SketchPlane(delta=self._pending.delta)
        _PENDING.set(0.0)
        return self._close_window(scored, window_start, window_end)

    def ingest(
        self,
        records: MeasurementSet,
        window_start: float,
        window_end: float,
    ) -> List[Alert]:
        """Ingest one window of measurements; return new alerts.

        Every region present in ``records`` gets a window entry;
        previously-seen regions absent from this window get an unscored
        gap entry (a silent region must not freeze its baseline
        forever without trace). In sketch mode the window's records
        fold into the live plane (joining anything already streamed
        via :meth:`observe`) and the window closes through
        :meth:`score_pending`.

        Raises:
            ValueError: on an empty or inverted window.
        """
        if window_end <= window_start:
            raise ValueError(
                f"inverted window: [{window_start}, {window_end})"
            )
        window = records.between(window_start, window_end)
        if self._pending is not None:
            self._pending.extend(window)
            return self.score_pending(window_start, window_end)
        # Exact mode has no live plane to notify the health monitor, so
        # arrivals are fed here, once per windowed record.
        health = get_health_monitor()
        if health is not None:
            for record in window:
                health.record_arrival(
                    record.region, record.source, record.timestamp
                )
        # Group the window once; every region's subset shares the index.
        by_region = window.group_by_region()
        scored = {
            region: (self._score_window(subset), len(subset))
            for region, subset in by_region.items()
        }
        return self._close_window(scored, window_start, window_end)

    def _close_window(
        self,
        scored: Mapping[str, Tuple[Optional[float], int]],
        window_start: float,
        window_end: float,
    ) -> List[Alert]:
        """Append one window's points, evaluate the drop detector."""
        alerts: List[Alert] = []
        for region in sorted(set(scored) | set(self._history)):
            score, samples = scored.get(region, (None, 0))
            point = ScorePoint(
                start=window_start,
                end=window_end,
                score=score,
                samples=samples,
            )
            history = self._history.setdefault(region, [])
            history.append(point)
            alert = self._evaluate(region, history)
            if alert is not None:
                _ALERTS.inc()
                _logger.warning(
                    "score drop alert",
                    extra={
                        "ctx": {
                            "region": alert.region,
                            "score": round(alert.score, 4),
                            "baseline": round(alert.baseline, 4),
                        }
                    },
                )
                alerts.append(alert)
        _CYCLES.inc()
        _LAST_CYCLE.set(time.time())
        health = get_health_monitor()
        if health is not None:
            health.window_closed(
                window_start,
                window_end,
                {region: score for region, (score, _) in scored.items()},
            )
        return alerts

    def _evaluate(
        self, region: str, history: List[ScorePoint]
    ) -> Optional[Alert]:
        """Alert iff the newest window is flagged by the detector."""
        newest = history[-1]
        if newest.score is None:
            return None
        anomalies = detect_drops(
            history, min_drop=self.min_drop, trailing=self.trailing
        )
        for anomaly in anomalies:
            if anomaly.start == newest.start:
                return Alert(
                    region=region,
                    window_start=anomaly.start,
                    window_end=anomaly.end,
                    score=anomaly.score,
                    baseline=anomaly.baseline,
                )
        return None
