"""Crash-safe filesystem primitives shared across the pipeline.

Every artifact the pipeline persists — publications, run manifests,
Chrome traces, journal snapshots — must never be observable in a
half-written state: a consumer (or a resumed campaign) reading a
truncated JSON document is strictly worse than one reading the previous
complete version. :func:`atomic_write` is the one way artifacts land on
disk: write to a temporary sibling, flush (and optionally fsync), then
``os.replace`` onto the destination, which POSIX and Windows both
guarantee to be atomic within a filesystem.

Stdlib-only and dependency-free on purpose: this module sits below
``repro.obs`` and ``repro.resilience`` in the layering so both can use
it without cycles.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

_PathLike = Union[str, "os.PathLike[str]"]


def fsync_dir(path: _PathLike) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    ``os.replace`` makes a rename atomic, but the *directory entry*
    pointing at the new file lives in the directory's own data blocks —
    until those are flushed, a crash can forget the rename entirely and
    resurface the old file (or nothing). Callers that fsync file
    contents must also fsync the containing directory or the durability
    story has a hole exactly one power cut wide.

    Best-effort on platforms where directories cannot be opened for
    reading (notably Windows): ``OSError`` from the open is swallowed,
    matching what every production WAL implementation does.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write(
    path: _PathLike,
    data: Union[str, bytes],
    encoding: str = "utf-8",
    fsync: bool = False,
) -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    A crash at any point leaves either the previous complete file or the
    new complete file at ``path`` — never a truncated artifact. The
    temporary file lives in the destination directory (``os.replace``
    must not cross filesystems) and is removed on failure.

    Args:
        data: text (encoded with ``encoding``) or raw bytes.
        fsync: force the data to stable storage before the rename, and
            the containing directory's entry after it (without the
            latter a power loss right after the rename can lose the
            file even though its bytes were flushed); costs disk
            flushes, so reserve it for journals, cache artifacts, and
            other files whose loss cannot be recomputed.

    Raises:
        OSError: when the destination directory is missing or unwritable.
    """
    target = Path(path)
    payload = data.encode(encoding) if isinstance(data, str) else data
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=str(target.parent)
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_name, target)
        if fsync:
            fsync_dir(target.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
