# Development targets for the IQB reproduction.
#
# `make verify` is the PR gate: the full tier-1 test suite plus the
# scoring-benchmark regression check against the checked-in baseline
# (benchmarks/BENCH_baseline.json). Run it before every push.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# Suite-wide hang protection: enforced only where pytest-timeout is
# installed (CI installs it; a bare dev box without the plugin still
# runs the suite, just without the watchdog).
TIMEOUT_FLAG := $(shell $(PYTHON) -c "import pytest_timeout" 2>/dev/null && echo --timeout=300)

.PHONY: verify test bench metrics

verify: test bench

test:
	$(PYTHON) -m pytest -x -q $(TIMEOUT_FLAG)

bench:
	$(PYTHON) benchmarks/compare_bench.py

# Quick operational sanity check: run an instrumented pipeline and
# dump the metrics snapshot.
metrics:
	$(PYTHON) -m repro metrics
