# Development targets for the IQB reproduction.
#
# `make verify` is the PR gate: the full tier-1 test suite plus the
# scoring-benchmark regression check against the checked-in baseline
# (benchmarks/BENCH_baseline.json). Run it before every push.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify test bench metrics

verify: test bench

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) benchmarks/compare_bench.py

# Quick operational sanity check: run an instrumented pipeline and
# dump the metrics snapshot.
metrics:
	$(PYTHON) -m repro metrics
