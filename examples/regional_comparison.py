"""Regional digital-divide comparison: IQB vs "speed" across six markets.

The scenario the poster's introduction motivates: a decision-maker
comparing regions must not rank them by headline speed alone. This
example scores all six canonical region presets three ways —

* the IQB score (paper methodology),
* a speed-only baseline (median blended throughput / 100 Mbit/s),
* the FCC 100/20 binary benchmark —

and checks each against the simulated population's ground-truth QoE.
Watch for regions that the speed baseline ranks high but that IQB
(agreeing with QoE) ranks low: throughput-rich but latency/loss-poor
markets, e.g. GEO satellite.

Usage::

    python examples/regional_comparison.py
"""

from repro.analysis.national import national_score, render_national
from repro.analysis.ranking import rank_regions, spearman_rho
from repro.analysis.tables import render_table
from repro.baselines import fcc_verdict, median_speed_score
from repro.core import paper_config, score_region
from repro.netsim import REGION_PRESETS, simulate_region
from repro.qoe import region_qoe

SEED = 42


def main() -> None:
    config = paper_config()
    rows = []
    iqb, speed, qoe = {}, {}, {}
    for name, profile in sorted(REGION_PRESETS.items()):
        records = simulate_region(profile, seed=SEED)
        sources = records.group_by_source()
        breakdown = score_region(sources, config)
        iqb[name] = breakdown.value
        speed[name] = median_speed_score(sources)
        fcc = fcc_verdict(sources)
        qoe[name] = region_qoe(profile, seed=SEED).overall
        rows.append(
            (
                name,
                breakdown.value,
                breakdown.grade,
                speed[name],
                "served" if fcc.served else "unserved",
                qoe[name],
            )
        )

    rows.sort(key=lambda row: -float(row[1]))
    print("Region scores (higher is better):")
    print(
        render_table(
            ["Region", "IQB", "Grade", "Speed-only", "FCC 100/20", "True QoE"],
            rows,
        )
    )

    print("\nRankings:")
    for label, scores in (("IQB", iqb), ("Speed-only", speed), ("True QoE", qoe)):
        ordered = ", ".join(name for name, _ in rank_regions(scores))
        print(f"  {label:10s}: {ordered}")

    print("\nAgreement with ground-truth QoE (Spearman):")
    print(f"  IQB        : {spearman_rho(iqb, qoe):+.3f}")
    print(f"  Speed-only : {spearman_rho(speed, qoe):+.3f}")

    # National roll-up: weight each region by a plausible population.
    populations = {
        "metro-fiber": 4.0e6,
        "mixed-urban": 3.0e6,
        "suburban-cable": 2.5e6,
        "mobile-first": 1.2e6,
        "rural-dsl": 0.9e6,
        "satellite-remote": 0.4e6,
    }
    national = national_score(iqb, populations)
    print()
    print(render_national(national))


if __name__ == "__main__":
    main()
