"""A full national barometer run: the production workflow end to end.

The pipeline a real IQB operator would run every reporting period:

1. simulate measurement campaigns for every region (the stand-in for
   pulling a week of NDT/Cloudflare/Ookla data);
2. sanity-check the scoring config against the data (lint);
3. estimate and apply cross-dataset methodology calibration;
4. score every region and roll the results up into a
   population-weighted national score with shortfall attribution;
5. print consumer scorecards for the regions most responsible for the
   national shortfall;
6. explain the gap between the best and worst regions cell by cell.

Usage::

    python examples/national_barometer.py
"""

from repro.analysis.national import national_score, render_national
from repro.analysis.scorecard import scorecard_from_breakdown, render_scorecard
from repro.analysis.tables import render_table
from repro.core import paper_config, score_region
from repro.core.compare import attribute_difference, render_attribution
from repro.core.lint import lint_config
from repro.measurements.calibration import estimate_biases
from repro.netsim import REGION_PRESETS, region_preset, simulate_regions

SEED = 42

#: Plausible populations per preset (millions scaled to units).
POPULATIONS = {
    "metro-fiber": 4.0e6,
    "mixed-urban": 3.0e6,
    "suburban-cable": 2.5e6,
    "mobile-first": 1.2e6,
    "rural-dsl": 0.9e6,
    "satellite-remote": 0.4e6,
}


def main() -> None:
    config = paper_config()
    print("1. Collecting a week of measurements for every region...")
    records = simulate_regions(
        [region_preset(name) for name in sorted(REGION_PRESETS)], seed=SEED
    )
    print(f"   {len(records)} tests across {len(records.regions())} regions\n")

    print("2. Linting the scoring config against the data...")
    findings = lint_config(config, records)
    if findings:
        for finding in findings:
            print(f"   {finding}")
    else:
        print("   config is clean for this dataset")

    print("\n3. Calibrating methodology bias across datasets...")
    model = estimate_biases(records)
    for dataset in ("ndt", "cloudflare", "ookla"):
        from repro.core.metrics import Metric

        print(
            f"   {dataset:10s} download x{model.factor(dataset, Metric.DOWNLOAD):.2f} "
            f"upload x{model.factor(dataset, Metric.UPLOAD):.2f}"
        )

    print("\n4. Scoring regions (calibrated) and rolling up nationally...")
    breakdowns = {}
    for region in records.regions():
        sources = model.calibrate(records.for_region(region).group_by_source())
        breakdowns[region] = score_region(sources, config)
    rows = [
        (region, b.value, b.grade, b.credit)
        for region, b in sorted(breakdowns.items(), key=lambda kv: -kv[1].value)
    ]
    print(render_table(["Region", "IQB", "Grade", "Credit"], rows, indent="   "))
    national = national_score(
        {region: b.value for region, b in breakdowns.items()}, POPULATIONS
    )
    print()
    print(render_national(national))

    print("\n5. Consumer labels for the top shortfall contributors:")
    for share in national.ranked_by_shortfall()[:2]:
        card = scorecard_from_breakdown(
            breakdowns[share.region],
            region=share.region,
            tests=len(records.for_region(share.region)),
            datasets=records.for_region(share.region).sources(),
        )
        print()
        print(render_scorecard(card))

    print("\n6. Why the best region beats the worst, cell by cell:")
    ranked = sorted(breakdowns.items(), key=lambda kv: kv[1].value)
    worst_region, worst = ranked[0]
    best_region, best = ranked[-1]
    attribution = attribute_difference(worst, best)
    print(f"   {worst_region} -> {best_region}")
    print(render_attribution(attribution, top=6))


if __name__ == "__main__":
    main()
