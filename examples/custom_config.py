"""Adapting IQB: a remote-work configuration (the poster's §4 claim).

IQB "is designed to be easily adapted". This example builds a
policy-maker's variant for a remote-work program: video conferencing
and online backup dominate the use-case weights, upload thresholds are
tightened, and the configuration round-trips through JSON (the form a
real deployment would version-control). Scores under the paper config
and the remote-work config are then compared across regions — the
asymmetric-upload cable market drops visibly under the remote-work
lens, while fiber does not.

Usage::

    python examples/custom_config.py
"""

import tempfile
from pathlib import Path

from repro.analysis.tables import render_table
from repro.core import (
    AggregationPolicy,
    IQBConfig,
    Metric,
    PercentileSemantics,
    Threshold,
    UseCase,
    paper_config,
    score_region,
)
from repro.netsim import REGION_PRESETS, simulate_region

SEED = 7


def remote_work_config() -> IQBConfig:
    """The paper config re-weighted and re-thresholded for remote work."""
    base = paper_config()
    weights = base.use_case_weights.replace(
        {
            UseCase.VIDEO_CONFERENCING: 5,
            UseCase.ONLINE_BACKUP: 4,
            UseCase.WEB_BROWSING: 3,
            UseCase.VIDEO_STREAMING: 1,
            UseCase.AUDIO_STREAMING: 1,
            UseCase.GAMING: 1,
        }
    )
    # A home office needs symmetric headroom: raise upload bars.
    thresholds = base.thresholds.replace(
        {
            (UseCase.VIDEO_CONFERENCING, Metric.UPLOAD): Threshold(25.0, 50.0),
            (UseCase.ONLINE_BACKUP, Metric.UPLOAD): Threshold(50.0, 200.0),
        }
    )
    # Remote work cannot gamble on the lucky tail: use worst-tail
    # (CONSERVATIVE) percentile semantics instead of the paper's literal
    # 95th percentile, so throughput is judged at p5 rather than p95.
    aggregation = AggregationPolicy(
        percentile=95.0, semantics=PercentileSemantics.CONSERVATIVE
    )
    return base.with_(
        use_case_weights=weights,
        thresholds=thresholds,
        aggregation=aggregation,
    )


def main() -> None:
    paper = paper_config()
    remote = remote_work_config()

    # Round-trip through JSON, as a deployment would store it.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "remote_work.json"
        remote.save(path)
        remote = IQBConfig.load(path)
        print(f"Remote-work config round-tripped through {path.name}\n")

    rows = []
    for name, profile in sorted(REGION_PRESETS.items()):
        records = simulate_region(profile, seed=SEED)
        sources = records.group_by_source()
        score_paper = score_region(sources, paper).value
        score_remote = score_region(sources, remote).value
        rows.append((name, score_paper, score_remote, score_remote - score_paper))

    rows.sort(key=lambda row: -float(row[1]))
    print("Paper config vs remote-work config:")
    print(
        render_table(
            ["Region", "IQB (paper)", "IQB (remote work)", "Delta"], rows
        )
    )
    print(
        "\nEvery market drops under the stricter lens (the conservative "
        "tail judges the p5 user, not the p95), but asymmetric cable and "
        "mixed markets lose a larger share of their score than symmetric "
        "fiber does."
    )


if __name__ == "__main__":
    main()
