"""Quickstart: score one region with the paper's canonical IQB setup.

Runs a simulated week of NDT/Cloudflare/Ookla measurements over a
suburban cable market, computes the IQB score with the published
Fig. 2 thresholds and Table 1 weights, and prints the full tier-by-tier
explanation.

Usage::

    python examples/quickstart.py
"""

from repro import IQBFramework
from repro.core.explain import explain
from repro.netsim import region_preset, simulate_region


def main() -> None:
    framework = IQBFramework()  # Fig. 2 + Table 1 + 95th-percentile rule
    region = region_preset("suburban-cable")

    print(f"Simulating a measurement campaign in {region.name!r}:")
    print(f"  {region.description}")
    records = simulate_region(region, seed=42)
    print(
        f"  {len(records)} measurements from datasets: "
        f"{', '.join(records.sources())}\n"
    )

    breakdown = framework.score_measurements(records, region.name)
    print(explain(breakdown))

    print("\nFramework tiers (paper Fig. 1):")
    print(framework.render_tier_map())


if __name__ == "__main__":
    main()
