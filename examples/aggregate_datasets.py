"""Mixing raw and pre-aggregated datasets (the Ookla code path).

Ookla's open data ships as regional aggregates, not raw tests. This
example reproduces that pipeline end to end: simulate raw campaigns,
"publish" the Ookla share as an aggregate table (quantile knots +
counts only), then score the region from the *mixed* evidence — NDT and
Cloudflare raw, Ookla aggregate — exactly as a real IQB deployment
would consume the three sources. It also quantifies the information
loss: scores from full raw data vs the aggregate-only Ookla feed.

Usage::

    python examples/aggregate_datasets.py
"""

from repro.analysis.tables import render_table
from repro.core import paper_config, score_region
from repro.measurements import aggregate_measurements
from repro.netsim import REGION_PRESETS, simulate_region

SEED = 23


def main() -> None:
    config = paper_config()
    rows = []
    for name, profile in sorted(REGION_PRESETS.items()):
        records = simulate_region(profile, seed=SEED)
        raw_sources = records.group_by_source()

        # Publisher step: reduce Ookla's raw tests to published knots.
        published = aggregate_measurements(records, region=name, source="ookla")

        mixed_sources = dict(raw_sources)
        mixed_sources["ookla"] = published

        raw_score = score_region(raw_sources, config).value
        mixed_score = score_region(mixed_sources, config).value
        rows.append((name, raw_score, mixed_score, mixed_score - raw_score))

    print("Raw-everything vs raw+aggregated-Ookla IQB scores:")
    print(
        render_table(
            ["Region", "All raw", "Ookla aggregated", "Delta"], rows
        )
    )
    print(
        "\nDeltas are small: the published 95th-percentile knot carries "
        "exactly the statistic the IQB rule needs. They are nonzero only "
        "when the scorer asks for a percentile between published knots "
        "(interpolation) — e.g. under CONSERVATIVE semantics (p5)."
    )


if __name__ == "__main__":
    main()
