"""Tracking an infrastructure upgrade: the barometer over time.

The scenario a barometer exists for: a DSL-heavy region migrates to
fiber over six months. This example simulates the buildout, computes a
monthly IQB time series alongside a speed-only score, and shows the
fixed-window analyses a regulator would run — the trend slope and the
prime-time vs off-peak contrast.

Watch the shape: IQB starts moving in the *first* periods (early fiber
adopters immediately fix latency and loss for their households, and the
DSL plant decongests), while the speed-only metric mostly tracks the
later capacity ramp and saturates at its reference speed long before
the buildout finishes. The prime-time contrast is floor-limited early
on — an all-DSL region scores near zero at every hour, so there is
nothing left for evenings to degrade; the contrast only becomes
informative once the region has quality to lose.

Usage::

    python examples/upgrade_tracking.py
"""

from repro.analysis.tables import render_table
from repro.analysis.temporal import peak_vs_offpeak, score_time_series, trend
from repro.baselines import median_speed_score
from repro.core import paper_config
from repro.measurements.collection import MeasurementSet
from repro.netsim import fiber_buildout, simulate_evolution, stage_boundaries

SEED = 19
DAYS_PER_PERIOD = 20.0


def main() -> None:
    config = paper_config()
    stages = fiber_buildout(
        region_name="upgrade-town",
        periods=6,
        days_per_period=DAYS_PER_PERIOD,
    )
    print("Simulating a 6-period DSL-to-fiber buildout...")
    records = simulate_evolution(
        stages, seed=SEED, tests_per_client_per_stage=350, subscribers=100
    )
    print(f"  {len(records)} measurements over "
          f"{int(6 * DAYS_PER_PERIOD)} days\n")

    points = score_time_series(
        records,
        "upgrade-town",
        config,
        window_seconds=DAYS_PER_PERIOD * 86400.0,
    )
    rows = []
    for (start, end), stage, point in zip(
        stage_boundaries(stages), stages, points
    ):
        window = records.between(start, end)
        speed = median_speed_score(window.group_by_source())
        fiber_share = stage.profile.isps[0].tech_mix.get("fiber", 0.0)
        rows.append(
            (
                f"{int(start / 86400)}-{int(end / 86400)}d",
                f"{fiber_share:.0%}",
                "n/a" if point.score is None else f"{point.score:.3f}",
                f"{speed:.3f}",
            )
        )
    print("Buildout progress:")
    print(render_table(["Period", "Fiber share", "IQB", "Speed-only"], rows))

    slope, _ = trend(points)
    print(f"\nIQB trend: {slope:+.4f} per day "
          f"({slope * DAYS_PER_PERIOD:+.3f} per period)")

    first_window = records.between(0.0, DAYS_PER_PERIOD * 86400.0)
    last_window = records.between(
        5 * DAYS_PER_PERIOD * 86400.0, 6 * DAYS_PER_PERIOD * 86400.0
    )
    for label, window in (("first", first_window), ("final", last_window)):
        contrast = peak_vs_offpeak(
            MeasurementSet(window), "upgrade-town", config
        )
        if contrast.degradation is not None:
            print(
                f"Prime-time degradation, {label} period: "
                f"{contrast.degradation:+.3f}"
            )


if __name__ == "__main__":
    main()
