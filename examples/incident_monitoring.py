"""Continuous monitoring: a barometer operator's alerting loop.

Drives :class:`repro.probing.monitor.BarometerMonitor` window by window
through a simulated timeline in which one region suffers a two-day
congestion incident, then archives every window's full breakdown in a
:class:`repro.analysis.history.ScoreArchive` and uses the archive's
exact period-over-period attribution to explain *which requirements*
the incident broke.

Usage::

    python examples/incident_monitoring.py
"""

import tempfile
from pathlib import Path

from repro.analysis.history import ScoreArchive
from repro.core import paper_config, score_region
from repro.core.compare import render_attribution
from repro.netsim import region_preset
from repro.netsim.evolution import (
    EvolutionStage,
    simulate_evolution,
    with_incident,
)
from repro.probing.monitor import BarometerMonitor

DAY = 86400.0
QUIET_DAYS = 4
INCIDENT_DAYS = 2
RECOVERY_DAYS = 3


def main() -> None:
    config = paper_config()
    profile = region_preset("suburban-cable")
    stages = [
        EvolutionStage(profile, days=float(QUIET_DAYS)),
        EvolutionStage(
            with_incident(profile, severity=1.2), days=float(INCIDENT_DAYS)
        ),
        EvolutionStage(profile, days=float(RECOVERY_DAYS)),
    ]
    total_days = QUIET_DAYS + INCIDENT_DAYS + RECOVERY_DAYS
    print(
        f"Simulating {total_days} days over {profile.name!r} with a "
        f"{INCIDENT_DAYS}-day congestion incident starting day {QUIET_DAYS}..."
    )
    records = simulate_evolution(
        stages, seed=37, tests_per_client_per_stage=250, subscribers=60
    )

    monitor = BarometerMonitor(config, min_drop=0.08, trailing=3)
    with tempfile.TemporaryDirectory() as tmp:
        archive = ScoreArchive(Path(tmp) / "windows.jsonl")
        print("\nDaily ingest:")
        for day in range(total_days):
            window = records.between(day * DAY, (day + 1) * DAY)
            alerts = monitor.ingest(window, day * DAY, (day + 1) * DAY)
            breakdown = score_region(
                window.for_region(profile.name).group_by_source(), config
            )
            archive.append(f"day-{day:02d}", profile.name, breakdown)
            status = "; ".join(str(a) for a in alerts) if alerts else "ok"
            print(f"  day {day}: IQB {breakdown.value:.3f}  [{status}]")

        # Explain the first alerted day against the last quiet day.
        alert_day = next(
            day
            for day in range(total_days)
            if QUIET_DAYS <= day < QUIET_DAYS + INCIDENT_DAYS
        )
        print(
            f"\nWhat the incident broke "
            f"(day {QUIET_DAYS - 1} -> day {alert_day}):"
        )
        attribution = archive.compare(
            profile.name, f"day-{QUIET_DAYS - 1:02d}", f"day-{alert_day:02d}"
        )
        print(render_attribution(attribution, top=5))


if __name__ == "__main__":
    main()
