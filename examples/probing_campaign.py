"""Running a probing campaign with the active-measurement framework.

The lower-level workflow behind the one-shot simulator: build a backend
hosting vantage-point populations, generate a crowdsourced-style probe
schedule, execute it with retries against injected transient failures,
and deliver results simultaneously to (a) a durable JSONL archive and
(b) an O(1)-memory streaming-quantile sink that can feed the IQB scorer
directly — the architecture a long-running deployment would use.

While the campaign runs, a :class:`~repro.obs.TelemetryServer` exposes
``/metrics`` (Prometheus), ``/metrics.json``, and ``/healthz`` on an
ephemeral port, and at the end a :class:`~repro.obs.RunManifest`
records what ran: inputs hashed, config digested, and the full metrics
snapshot — the provenance a published score should carry.

Usage::

    python examples/probing_campaign.py
"""

import tempfile
import urllib.request
from pathlib import Path

from repro.core import paper_config, score_region
from repro.measurements import IngestStats, read_jsonl
from repro.obs import RunContext, TelemetryServer
from repro.probing import (
    DiurnalSchedule,
    FanOutSink,
    JsonlSink,
    MemorySink,
    ProbeRunner,
    SimulatedBackend,
    StreamingQuantileSink,
)
from repro.netsim import region_preset

SEED = 11
REGIONS = ("mixed-urban", "rural-dsl")


def main() -> None:
    backend = SimulatedBackend(
        profiles=[region_preset(name) for name in REGIONS],
        seed=SEED,
        failure_rate=0.05,  # 5 % of probes fail transiently
    )
    schedule = DiurnalSchedule(
        regions=REGIONS,
        clients=backend.clients(),
        tests_per_pair=250,
        evening_bias=0.5,
        seed=SEED,
    )

    run = RunContext(["examples/probing_campaign.py"])
    with tempfile.TemporaryDirectory() as tmp, TelemetryServer() as telemetry:
        print(f"Telemetry live at {telemetry.url('/metrics')} "
              "(also /metrics.json, /healthz)")

        archive = Path(tmp) / "campaign.jsonl"
        memory = MemorySink()
        streaming = StreamingQuantileSink()
        with JsonlSink(archive) as jsonl:
            runner = ProbeRunner(
                backend,
                FanOutSink(memory, jsonl, streaming),
                max_attempts=3,
            )
            report = runner.run(schedule)

        rate = report.success_rate
        print(
            f"Campaign: {report.scheduled} probes scheduled, "
            f"{report.succeeded} succeeded "
            f"({'n/a' if rate is None else format(rate, '.1%')}), "
            f"{report.retried} retries, "
            f"{len(report.abandoned)} abandoned."
        )
        stats = IngestStats()
        archived = read_jsonl(archive, stats=stats)
        run.add_input(archive, stats)
        print(f"Archived {len(archived)} records to JSONL.\n")

        # One scrape of our own endpoint, like a Prometheus server would.
        with urllib.request.urlopen(telemetry.url("/healthz")) as response:
            print(f"Self-scrape /healthz -> {response.status} "
                  f"{response.read().decode()[:72]}...\n")

        config = paper_config()
        run.set_config(config)
        print("Scores from the in-memory record set (exact percentiles):")
        records = memory.as_set()
        for region in records.regions():
            sources = records.for_region(region).group_by_source()
            print(f"  {region:12s} IQB={score_region(sources, config).value:.3f}")

        print("\nScores from the streaming P2 sink (O(1) memory):")
        for region in streaming.regions():
            sources = streaming.sources_for(region)
            print(f"  {region:12s} IQB={score_region(sources, config).value:.3f}")
        print(
            "\nThe two agree closely; the streaming path never stored a "
            "raw measurement."
        )

        manifest_path = Path(tmp) / "campaign.manifest.json"
        manifest = run.build()
        manifest.save(manifest_path)
        print(
            f"\nManifest: {len(manifest.inputs)} input(s) hashed, "
            f"config sha256 {manifest.config_sha256[:12]}..., "
            f"{len(manifest.metrics['counters'])} counters snapshotted "
            f"(written to {manifest_path.name})."
        )


if __name__ == "__main__":
    main()
