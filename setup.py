"""Legacy setup shim.

The execution environment has no `wheel` package and no network, so
PEP 517 editable installs fail; this shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``pip install -e .`` on older pips) fall back to `setup.py develop`.
Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
