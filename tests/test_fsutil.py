"""Durability tests for the crash-safe write primitives."""

import os
import stat

import pytest

from repro.fsutil import atomic_write, fsync_dir


@pytest.fixture()
def fsync_log(monkeypatch):
    """Record every fsynced fd as (is_directory, path-ish stat)."""
    synced = []
    real_fsync = os.fsync

    def recording_fsync(fd):
        synced.append(stat.S_ISDIR(os.fstat(fd).st_mode))
        return real_fsync(fd)

    monkeypatch.setattr(os, "fsync", recording_fsync)
    return synced


class TestAtomicWrite:
    def test_writes_text_and_bytes(self, tmp_path):
        atomic_write(tmp_path / "t.txt", "héllo")
        assert (tmp_path / "t.txt").read_text(encoding="utf-8") == "héllo"
        atomic_write(tmp_path / "b.bin", b"\x00\x01")
        assert (tmp_path / "b.bin").read_bytes() == b"\x00\x01"

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "f.json"
        atomic_write(target, "old")
        atomic_write(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_litter_on_failure(self, tmp_path):
        with pytest.raises(TypeError):
            atomic_write(tmp_path / "f.json", 12345)  # not str/bytes
        assert list(tmp_path.iterdir()) == []

    def test_fsync_true_syncs_file_and_directory(self, tmp_path, fsync_log):
        """The durability regression guard: after the rename, the
        *containing directory* must be fsynced too — without it a power
        cut can forget the rename even though the file's bytes made it
        to disk."""
        atomic_write(tmp_path / "f.json", "data", fsync=True)
        assert True in fsync_log, "directory entry was never fsynced"
        assert False in fsync_log, "file contents were never fsynced"
        # Ordering: the file's bytes go stable before the rename's
        # directory entry does, never the other way around.
        assert fsync_log.index(False) < fsync_log.index(True)

    def test_fsync_false_never_syncs(self, tmp_path, fsync_log):
        atomic_write(tmp_path / "f.json", "data", fsync=False)
        assert fsync_log == []

    def test_missing_directory_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            atomic_write(tmp_path / "absent" / "f.json", "data")


class TestFsyncDir:
    def test_syncs_a_real_directory(self, tmp_path, fsync_log):
        fsync_dir(tmp_path)
        assert fsync_log == [True]

    def test_missing_path_is_best_effort(self, tmp_path):
        fsync_dir(tmp_path / "nope")  # must not raise
