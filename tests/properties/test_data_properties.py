"""Property-based tests for data substrates (hypothesis).

* P² streaming quantiles track the exact estimator;
* aggregate tables reproduce exact percentiles at their knots and stay
  monotone between them;
* measurement records and configs survive serialization round trips;
* percentile_of is monotone in the percentile.
"""

import math

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.aggregation import percentile_of
from repro.core.config import IQBConfig, paper_config
from repro.core.metrics import Metric
from repro.measurements.aggregates import MetricAggregate
from repro.measurements.quantile import P2Quantile
from repro.measurements.record import Measurement

finite = st.floats(
    min_value=0.001, max_value=1e6, allow_nan=False, allow_infinity=False
)


@settings(max_examples=50, deadline=None)
@given(values=st.lists(finite, min_size=1, max_size=200),
       p=st.floats(0.0, 100.0))
def test_percentile_within_data_range(values, p):
    result = percentile_of(values, p)
    assert min(values) <= result <= max(values)


@settings(max_examples=50, deadline=None)
@given(values=st.lists(finite, min_size=2, max_size=100),
       p1=st.floats(0.0, 100.0), p2=st.floats(0.0, 100.0))
def test_percentile_monotone_in_percentile(values, p1, p2):
    lo, hi = sorted((p1, p2))
    assert percentile_of(values, lo) <= percentile_of(values, hi) + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(finite, min_size=50, max_size=400),
    q=st.sampled_from([0.05, 0.25, 0.5, 0.75, 0.95]),
)
def test_p2_stays_inside_observed_range(values, q):
    estimator = P2Quantile(q)
    for value in values:
        estimator.add(value)
    assert min(values) <= estimator.value() <= max(values)


@settings(max_examples=25, deadline=None)
@given(values=st.lists(st.floats(0.0, 1000.0), min_size=200, max_size=600))
def test_p2_median_near_exact_on_bulk_data(values):
    spread = max(values) - min(values)
    estimator = P2Quantile(0.5)
    for value in values:
        estimator.add(value)
    exact = percentile_of(values, 50.0)
    assert abs(estimator.value() - exact) <= max(0.15 * spread, 1e-6)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(finite, min_size=3, max_size=100),
    p_query=st.floats(0.0, 100.0),
)
def test_aggregate_table_monotone_and_bounded(values, p_query):
    knots = tuple(
        (p, percentile_of(values, p)) for p in (5.0, 25.0, 50.0, 75.0, 95.0)
    )
    aggregate = MetricAggregate(knots=knots, count=len(values))
    result = aggregate.quantile(p_query)
    assert knots[0][1] <= result <= knots[-1][1]
    # Exact at published knots.
    for p, v in knots:
        assert aggregate.quantile(p) == pytest.approx(v)


@settings(max_examples=50, deadline=None)
@given(
    region=st.text(min_size=1, max_size=10),
    source=st.text(min_size=1, max_size=10),
    timestamp=st.floats(0.0, 1e10, allow_nan=False),
    down=st.one_of(st.none(), st.floats(0.0, 1e5, allow_nan=False)),
    up=st.one_of(st.none(), st.floats(0.0, 1e5, allow_nan=False)),
    latency=st.one_of(st.none(), st.floats(0.001, 1e5, allow_nan=False)),
    loss=st.one_of(st.none(), st.floats(0.0, 1.0, allow_nan=False)),
)
def test_measurement_round_trip(region, source, timestamp, down, up, latency, loss):
    assume(any(v is not None for v in (down, up, latency, loss)))
    record = Measurement(
        region=region,
        source=source,
        timestamp=timestamp,
        download_mbps=down,
        upload_mbps=up,
        latency_ms=latency,
        packet_loss=loss,
    )
    assert Measurement.from_dict(record.to_dict()) == record


@settings(max_examples=20, deadline=None)
@given(
    percentile=st.floats(0.0, 100.0),
    weights=st.lists(st.integers(0, 5), min_size=24, max_size=24),
)
def test_config_round_trip_for_random_variants(percentile, weights):
    from repro.core.aggregation import AggregationPolicy
    from repro.core.usecases import UseCase
    from repro.core.weights import RequirementWeights

    matrix = {}
    index = 0
    for use_case in UseCase:
        row = weights[index : index + 4]
        if sum(row) == 0:
            row = [1] + list(row[1:])
        for metric, weight in zip(Metric.ordered(), row):
            matrix[(use_case, metric)] = weight
        index += 4
    config = paper_config().with_(
        aggregation=AggregationPolicy(percentile=percentile),
        requirement_weights=RequirementWeights(matrix),
    )
    rebuilt = IQBConfig.from_json(config.to_json())
    assert rebuilt.to_dict() == config.to_dict()
    assert rebuilt.aggregation.percentile == pytest.approx(percentile)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(finite, min_size=1, max_size=120),
    p=st.floats(0.0, 100.0),
)
def test_columnar_store_quantiles_equal_exact_quantiles(values, p):
    """The columnar plane and the exact accumulator agree bit-for-bit."""
    from repro.measurements.columnar import ColumnarStore
    from repro.measurements.quantile import ExactQuantiles

    records = [
        Measurement(
            region="r", source="ndt", timestamp=float(i), download_mbps=v
        )
        for i, v in enumerate(values)
    ]
    store = ColumnarStore(records)
    exact = ExactQuantiles(values)
    assert store.quantile(Metric.DOWNLOAD, p) == exact.quantile(p)
    assert store.view(region="r", source="ndt").quantile(
        Metric.DOWNLOAD, p
    ) == exact.quantile(p)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(finite, min_size=1, max_size=120),
    p=st.floats(0.0, 100.0),
)
def test_measurement_set_cache_equals_exact_quantiles(values, p):
    """Memoized MeasurementSet.quantile answers equal the exact plane."""
    from repro.measurements.collection import MeasurementSet
    from repro.measurements.quantile import ExactQuantiles

    records = MeasurementSet(
        Measurement(
            region="r", source="ndt", timestamp=float(i), download_mbps=v
        )
        for i, v in enumerate(values)
    )
    exact = ExactQuantiles(values)
    first = records.quantile(Metric.DOWNLOAD, p)
    assert first == exact.quantile(p)
    # The memo must return the same answer on a repeat query.
    assert records.quantile(Metric.DOWNLOAD, p) == first


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(finite, min_size=1, max_size=60),
    extra=st.lists(finite, min_size=1, max_size=60),
    p=st.floats(0.0, 100.0),
)
def test_exact_quantiles_invalidation_matches_fresh_build(values, extra, p):
    """Mutating after a cached query must equal a from-scratch build."""
    from repro.measurements.quantile import ExactQuantiles

    mutated = ExactQuantiles(values)
    mutated.quantile(p)  # warm the memo
    mutated.extend(extra)
    fresh = ExactQuantiles(values + extra)
    assert mutated.quantile(p) == fresh.quantile(p)
