"""Property-based tests for the IQB score (hypothesis).

These pin the algebraic invariants of Eqs. 1-5 under arbitrary
configurations and data, not just the fixtures the unit tests use:

* the score is always in [0, 1];
* the flat Eq. 5 expansion always equals the tier-by-tier computation;
* improving any metric of any dataset never lowers the score
  (monotonicity), under both percentile semantics;
* normalized weights always sum to 1.
"""

from typing import Dict

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregation import (
    AggregationPolicy,
    PercentileSemantics,
    SequenceSource,
)
from repro.core.config import ScoreMode, paper_config
from repro.core.metrics import Metric
from repro.core.scoring import flat_score, score_region
from repro.core.usecases import UseCase
from repro.core.weights import (
    RequirementWeights,
    UseCaseWeights,
    normalize,
)

ALL_METRICS = tuple(Metric)


def weight_matrix():
    """A valid random requirement-weight matrix (no all-zero row)."""
    cell = st.integers(min_value=0, max_value=5)

    def build(values):
        matrix = {}
        index = 0
        for use_case in UseCase:
            row = values[index : index + 4]
            if sum(row) == 0:
                row = (1, row[1], row[2], row[3])
            for metric, weight in zip(Metric.ordered(), row):
                matrix[(use_case, metric)] = weight
            index += 4
        return RequirementWeights(matrix)

    return st.lists(cell, min_size=24, max_size=24).map(tuple).map(build)


def use_case_weights():
    def build(values):
        if sum(values) == 0:
            values = (1,) + tuple(values[1:])
        return UseCaseWeights(dict(zip(UseCase.ordered(), values)))

    return (
        st.lists(st.integers(0, 5), min_size=6, max_size=6).map(tuple).map(build)
    )


def metric_values(metric: Metric):
    if metric is Metric.PACKET_LOSS:
        element = st.floats(0.0, 1.0, allow_nan=False)
    elif metric is Metric.LATENCY:
        element = st.floats(0.1, 2000.0, allow_nan=False)
    else:
        element = st.floats(0.0, 2000.0, allow_nan=False)
    return st.lists(element, min_size=1, max_size=30)


def sources_strategy(n_datasets=2):
    names = [f"d{i}" for i in range(n_datasets)]

    def build(per_dataset):
        return {
            name: SequenceSource(
                download_mbps=values[0],
                upload_mbps=values[1],
                latency_ms=values[2],
                packet_loss=values[3],
            )
            for name, values in zip(names, per_dataset)
        }

    one = st.tuples(*(metric_values(m) for m in Metric.ordered()))
    return st.lists(one, min_size=n_datasets, max_size=n_datasets).map(build)


def config_for(sources_names, requirement_weights=None, use_case=None,
               percentile=95.0, semantics=PercentileSemantics.LITERAL):
    config = paper_config(
        datasets={name: ALL_METRICS for name in sources_names}
    )
    if requirement_weights is not None:
        config = config.with_(requirement_weights=requirement_weights)
    if use_case is not None:
        config = config.with_(use_case_weights=use_case)
    return config.with_(
        aggregation=AggregationPolicy(percentile=percentile, semantics=semantics)
    )


@settings(max_examples=60, deadline=None)
@given(sources=sources_strategy(), weights=weight_matrix(), uw=use_case_weights())
def test_score_bounded_and_flat_expansion_exact(sources, weights, uw):
    config = config_for(sources, requirement_weights=weights, use_case=uw)
    breakdown = score_region(sources, config)
    assert 0.0 <= breakdown.value <= 1.0
    assert flat_score(breakdown) == pytest.approx(breakdown.value, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    sources=sources_strategy(),
    percentile=st.floats(0.0, 100.0),
    semantics=st.sampled_from(list(PercentileSemantics)),
)
def test_score_bounded_for_any_percentile(sources, percentile, semantics):
    config = config_for(sources, percentile=percentile, semantics=semantics)
    breakdown = score_region(sources, config)
    assert 0.0 <= breakdown.value <= 1.0


@settings(max_examples=40, deadline=None)
@given(
    sources=sources_strategy(n_datasets=1),
    factor=st.floats(1.0, 10.0),
    metric=st.sampled_from(list(Metric)),
    semantics=st.sampled_from(list(PercentileSemantics)),
    score_mode=st.sampled_from(list(ScoreMode)),
)
def test_improving_a_metric_never_lowers_the_score(
    sources, factor, metric, semantics, score_mode
):
    """Monotonicity: uniformly improving one metric cannot hurt,
    under every score mode (binary, graded, continuous)."""
    config = config_for(sources, semantics=semantics).with_(
        score_mode=score_mode
    )
    base = score_region(sources, config).value

    def improve(values):
        if values is None:
            return None
        if metric.value in ("download_mbps", "upload_mbps"):
            return [v * factor for v in values]
        if metric is Metric.LATENCY:
            return [max(v / factor, 0.1) for v in values]
        return [v / factor for v in values]

    (name, source), = sources.items()
    improved: Dict[str, SequenceSource] = {
        name: SequenceSource(
            download_mbps=(
                improve(source.download_mbps)
                if metric is Metric.DOWNLOAD
                else source.download_mbps
            ),
            upload_mbps=(
                improve(source.upload_mbps)
                if metric is Metric.UPLOAD
                else source.upload_mbps
            ),
            latency_ms=(
                improve(source.latency_ms)
                if metric is Metric.LATENCY
                else source.latency_ms
            ),
            packet_loss=(
                improve(source.packet_loss)
                if metric is Metric.PACKET_LOSS
                else source.packet_loss
            ),
        )
    }
    assert score_region(improved, config).value >= base - 1e-12


@settings(max_examples=100, deadline=None)
@given(
    st.dictionaries(
        st.text(min_size=1, max_size=5),
        st.integers(0, 5),
        min_size=1,
        max_size=8,
    ).filter(lambda d: sum(d.values()) > 0)
)
def test_normalize_always_sums_to_one(weights):
    assert sum(normalize(weights).values()) == pytest.approx(1.0)


@settings(max_examples=60, deadline=None)
@given(weights=weight_matrix())
def test_normalized_rows_sum_to_one(weights):
    for use_case in UseCase:
        assert sum(weights.normalized_row(use_case).values()) == pytest.approx(1.0)
