"""Property-based tests for the QoE models (hypothesis).

Every use-case model must respect the physics of its inputs: quality
never improves when latency or loss worsen, never degrades when
throughput improves, and always stays in [0, 1]. These are exactly the
properties that make the QoE layer a legitimate ground truth for the
IQB-vs-speed evaluation — a non-monotone ground truth would let either
metric "win" by accident.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.qoe.audio import AudioModel
from repro.qoe.backup import BackupModel
from repro.qoe.conditions import NetworkConditions
from repro.qoe.conferencing import ConferencingModel
from repro.qoe.gaming import GamingModel
from repro.qoe.video import VideoModel
from repro.qoe.web import WebModel

ALL_MODELS = [
    WebModel(),
    VideoModel(),
    ConferencingModel(),
    AudioModel(),
    BackupModel(),
    GamingModel(),
]

conditions_strategy = st.builds(
    NetworkConditions,
    download_mbps=st.floats(0.0, 2000.0, allow_nan=False),
    upload_mbps=st.floats(0.0, 2000.0, allow_nan=False),
    rtt_ms=st.floats(1.0, 1500.0, allow_nan=False),
    loss=st.floats(0.0, 0.3, allow_nan=False),
)


def _replace(c: NetworkConditions, **changes) -> NetworkConditions:
    fields = dict(
        download_mbps=c.download_mbps,
        upload_mbps=c.upload_mbps,
        rtt_ms=c.rtt_ms,
        loss=c.loss,
    )
    fields.update(changes)
    return NetworkConditions(**fields)


@settings(max_examples=40, deadline=None)
@given(conditions=conditions_strategy)
@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
def test_satisfaction_bounded(model, conditions):
    assert 0.0 <= model.satisfaction(conditions) <= 1.0


@settings(max_examples=40, deadline=None)
@given(conditions=conditions_strategy, factor=st.floats(1.0, 20.0))
@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
def test_more_throughput_never_hurts(model, conditions, factor):
    better = _replace(
        conditions,
        download_mbps=conditions.download_mbps * factor,
        upload_mbps=conditions.upload_mbps * factor,
    )
    assert model.satisfaction(better) >= model.satisfaction(conditions) - 1e-9


@settings(max_examples=40, deadline=None)
@given(conditions=conditions_strategy, factor=st.floats(1.0, 20.0))
@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
def test_more_latency_never_helps(model, conditions, factor):
    worse = _replace(conditions, rtt_ms=min(conditions.rtt_ms * factor, 1500.0))
    assert model.satisfaction(worse) <= model.satisfaction(conditions) + 1e-9


@settings(max_examples=40, deadline=None)
@given(conditions=conditions_strategy, extra=st.floats(0.0, 0.3))
@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
def test_more_loss_never_helps(model, conditions, extra):
    worse = _replace(conditions, loss=min(conditions.loss + extra, 0.3))
    assert model.satisfaction(worse) <= model.satisfaction(conditions) + 1e-9
