"""Property-based tests for the probing schedules (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.probing.scheduler import (
    DiurnalSchedule,
    PoissonSchedule,
    UniformSchedule,
)

region_names = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz-", min_size=1, max_size=10
    ),
    min_size=1,
    max_size=4,
    unique=True,
).map(tuple)
client_names = st.sampled_from(
    [("ndt",), ("ndt", "ookla"), ("ndt", "cloudflare", "ookla")]
)


@settings(max_examples=30, deadline=None)
@given(
    regions=region_names,
    clients=client_names,
    tests=st.integers(1, 60),
    days=st.floats(0.5, 14.0),
    seed=st.integers(0, 1000),
)
def test_uniform_schedule_invariants(regions, clients, tests, days, seed):
    schedule = UniformSchedule(
        regions=regions,
        clients=clients,
        tests_per_pair=tests,
        days=days,
        seed=seed,
    )
    requests = list(schedule)
    assert len(requests) == len(regions) * len(clients) * tests
    for request in requests:
        assert 0.0 <= request.timestamp < days * 86400.0
        assert request.region in regions
        assert request.client in clients
    # Determinism: same parameters, same schedule.
    assert requests == list(schedule)


@settings(max_examples=30, deadline=None)
@given(
    regions=region_names,
    clients=client_names,
    tests=st.integers(1, 60),
    bias=st.floats(0.0, 1.0),
    days=st.floats(0.5, 14.0),
    seed=st.integers(0, 1000),
)
def test_diurnal_schedule_invariants(regions, clients, tests, bias, days, seed):
    schedule = DiurnalSchedule(
        regions=regions,
        clients=clients,
        tests_per_pair=tests,
        days=days,
        evening_bias=bias,
        seed=seed,
    )
    requests = list(schedule)
    assert len(requests) == len(regions) * len(clients) * tests
    for request in requests:
        assert 0.0 <= request.timestamp < days * 86400.0


@settings(max_examples=30, deadline=None)
@given(
    rate=st.floats(1.0, 200.0),
    days=st.floats(0.5, 14.0),
    seed=st.integers(0, 1000),
)
def test_poisson_schedule_invariants(rate, days, seed):
    schedule = PoissonSchedule(
        regions=("r",),
        clients=("ndt",),
        rate_per_day=rate,
        days=days,
        seed=seed,
    )
    timestamps = [request.timestamp for request in schedule]
    assert timestamps == sorted(timestamps)
    for timestamp in timestamps:
        assert 0.0 <= timestamp < days * 86400.0
    # Count concentrates around rate*days: very loose 5-sigma bound.
    expected = rate * days
    assert abs(len(timestamps) - expected) <= 5.0 * max(expected**0.5, 1.0)
