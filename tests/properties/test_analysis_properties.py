"""Property-based tests for the analysis layer (hypothesis).

Pin the exact-decomposition identities and detector invariants under
arbitrary inputs:

* attribution deltas sum exactly to the score difference for any two
  breakdowns;
* contributions sum exactly to the score;
* national shortfall decomposition is exact and weights sum to one;
* the drop detector never alarms on monotone non-decreasing series and
  every alarm's drop exceeds the threshold;
* graded scoring is always sandwiched between the binary readings.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.national import national_score
from repro.analysis.temporal import ScorePoint, detect_drops
from repro.core.aggregation import SequenceSource
from repro.core.compare import attribute_difference, requirement_contributions
from repro.core.config import ScoreMode, paper_config
from repro.core.metrics import Metric
from repro.core.quality import QualityLevel
from repro.core.scoring import score_region

ALL_METRICS = tuple(Metric)


def metric_values(metric):
    if metric is Metric.PACKET_LOSS:
        element = st.floats(0.0, 1.0, allow_nan=False)
    elif metric is Metric.LATENCY:
        element = st.floats(0.1, 2000.0, allow_nan=False)
    else:
        element = st.floats(0.0, 2000.0, allow_nan=False)
    return st.lists(element, min_size=1, max_size=20)


def sources_strategy():
    one = st.tuples(*(metric_values(m) for m in Metric.ordered()))
    return one.map(
        lambda values: {
            "d0": SequenceSource(
                download_mbps=values[0],
                upload_mbps=values[1],
                latency_ms=values[2],
                packet_loss=values[3],
            )
        }
    )


CONFIG = paper_config(datasets={"d0": ALL_METRICS})


@settings(max_examples=50, deadline=None)
@given(a=sources_strategy(), b=sources_strategy())
def test_attribution_identity(a, b):
    breakdown_a = score_region(a, CONFIG)
    breakdown_b = score_region(b, CONFIG)
    attribution = attribute_difference(breakdown_a, breakdown_b)
    assert attribution.check() == pytest.approx(0.0, abs=1e-12)


@settings(max_examples=50, deadline=None)
@given(sources=sources_strategy())
def test_contributions_sum_to_score(sources):
    breakdown = score_region(sources, CONFIG)
    contributions = requirement_contributions(breakdown)
    assert sum(c.value for c in contributions.values()) == pytest.approx(
        breakdown.value, abs=1e-12
    )


@settings(max_examples=50, deadline=None)
@given(sources=sources_strategy())
def test_graded_sandwiched_between_binary_readings(sources):
    high = score_region(sources, CONFIG).value
    minimum = score_region(
        sources, CONFIG.with_(quality_level=QualityLevel.MINIMUM)
    ).value
    graded = score_region(
        sources, CONFIG.with_(score_mode=ScoreMode.GRADED)
    ).value
    assert high - 1e-12 <= graded <= minimum + 1e-12


@settings(max_examples=50, deadline=None)
@given(sources=sources_strategy())
def test_continuous_dominates_graded_dominates_binary(sources):
    binary = score_region(sources, CONFIG).value
    graded = score_region(
        sources, CONFIG.with_(score_mode=ScoreMode.GRADED)
    ).value
    continuous = score_region(
        sources, CONFIG.with_(score_mode=ScoreMode.CONTINUOUS)
    ).value
    assert binary - 1e-12 <= graded <= continuous + 1e-12
    assert 0.0 <= continuous <= 1.0


@settings(max_examples=60, deadline=None)
@given(
    entries=st.dictionaries(
        st.text(min_size=1, max_size=6),
        st.tuples(st.floats(0.0, 1.0), st.floats(1.0, 1e7)),
        min_size=1,
        max_size=12,
    )
)
def test_national_decomposition_exact(entries):
    scores = {region: score for region, (score, _) in entries.items()}
    populations = {region: pop for region, (_, pop) in entries.items()}
    national = national_score(scores, populations)
    assert 0.0 <= national.value <= 1.0
    assert sum(s.weight for s in national.regions) == pytest.approx(1.0)
    assert national.check() == pytest.approx(0.0, abs=1e-9)
    assert min(scores.values()) - 1e-9 <= national.value <= max(
        scores.values()
    ) + 1e-9


def _series(values):
    return [
        ScorePoint(start=i * 86400.0, end=(i + 1) * 86400.0, score=v,
                   samples=100)
        for i, v in enumerate(values)
    ]


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=30),
    min_drop=st.floats(0.01, 0.5),
    trailing=st.integers(1, 5),
)
def test_detector_alarms_exceed_threshold(values, min_drop, trailing):
    anomalies = detect_drops(_series(values), min_drop=min_drop,
                             trailing=trailing)
    for anomaly in anomalies:
        assert anomaly.drop > min_drop - 1e-12


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=30),
    min_drop=st.floats(0.01, 0.5),
)
def test_detector_silent_on_nondecreasing_series(values, min_drop):
    increasing = sorted(values)
    assert detect_drops(_series(increasing), min_drop=min_drop) == []
