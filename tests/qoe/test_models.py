"""Unit tests for the per-use-case QoE models."""

import pytest

from repro.qoe.audio import AudioModel
from repro.qoe.backup import BackupModel
from repro.qoe.conditions import NetworkConditions, clamp01, from_link
from repro.qoe.conferencing import (
    ConferencingModel,
    delay_impairment,
    loss_impairment,
    r_factor,
    r_to_mos,
)
from repro.qoe.gaming import GamingModel
from repro.qoe.video import VideoModel
from repro.qoe.web import WebModel
from repro.netsim.link import SubscriberLink


def conditions(down=100.0, up=50.0, rtt=20.0, loss=0.001):
    return NetworkConditions(
        download_mbps=down, upload_mbps=up, rtt_ms=rtt, loss=loss
    )


GOOD = conditions()
BAD = conditions(down=2.0, up=0.5, rtt=400.0, loss=0.05)

ALL_MODELS = [
    WebModel(),
    VideoModel(),
    ConferencingModel(),
    AudioModel(),
    BackupModel(),
    GamingModel(),
]


class TestConditions:
    def test_validation(self):
        with pytest.raises(ValueError):
            conditions(down=-1.0)
        with pytest.raises(ValueError):
            conditions(rtt=0.0)
        with pytest.raises(ValueError):
            conditions(loss=1.5)

    def test_from_link(self):
        link = SubscriberLink(
            subscriber_id="s",
            region="r",
            isp="i",
            tech="fiber",
            down_capacity_mbps=100.0,
            up_capacity_mbps=50.0,
            base_rtt_ms=10.0,
            base_loss=0.001,
            bloat_ms=50.0,
        )
        c = from_link(link, 0.5)
        assert c.rtt_ms == pytest.approx(35.0)
        assert c.download_mbps < 100.0

    def test_clamp(self):
        assert clamp01(1.5) == 1.0
        assert clamp01(-0.5) == 0.0
        assert clamp01(0.3) == 0.3


class TestUniversalProperties:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_satisfaction_bounded(self, model):
        for c in (GOOD, BAD, conditions(down=0.0, up=0.0)):
            assert 0.0 <= model.satisfaction(c) <= 1.0

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_good_beats_bad(self, model):
        assert model.satisfaction(GOOD) > model.satisfaction(BAD)


class TestWebModel:
    def test_plt_components(self):
        model = WebModel()
        fast = model.page_load_time(GOOD)
        assert 0.4 < fast < 2.0
        slow = model.page_load_time(conditions(rtt=600.0, down=5.0))
        assert slow > fast + 2.0

    def test_latency_matters_even_with_huge_throughput(self):
        model = WebModel()
        low_lat = model.satisfaction(conditions(down=1000.0, rtt=10.0))
        high_lat = model.satisfaction(conditions(down=1000.0, rtt=500.0))
        assert low_lat - high_lat > 0.2

    def test_bigger_pages_load_slower(self):
        small = WebModel(page_bytes=1e6).page_load_time(GOOD)
        large = WebModel(page_bytes=10e6).page_load_time(GOOD)
        assert large > small


class TestVideoModel:
    def test_rung_selection_scales_with_throughput(self):
        model = VideoModel()
        slow = model.select_rung(conditions(down=2.0))[0]
        fast = model.select_rung(conditions(down=100.0))[0]
        assert slow in ("240p", "480p")
        assert fast == "2160p"

    def test_headroom_respected(self):
        model = VideoModel()
        label, bitrate, _ = model.select_rung(conditions(down=7.0))
        assert bitrate * 1.25 <= 7.0

    def test_rebuffer_grows_with_loss(self):
        model = VideoModel()
        clean = model.rebuffer_ratio(conditions(loss=0.0))
        lossy = model.rebuffer_ratio(conditions(loss=0.05))
        assert lossy > clean

    def test_starved_link_rebuffers_chronically(self):
        model = VideoModel()
        assert model.rebuffer_ratio(conditions(down=0.2)) > 0.4


class TestConferencing:
    def test_delay_impairment_shape(self):
        # Gentle below the 177.3 ms knee, steep beyond it.
        assert delay_impairment(50.0) < 2.0
        assert delay_impairment(200.0) > delay_impairment(150.0)
        assert delay_impairment(400.0) > delay_impairment(299.0) + 10.0
        # Cole-Rosenbluth anchor: Id(350) ≈ 0.024*350 + 0.11*172.7 ≈ 27.4.
        assert delay_impairment(350.0) == pytest.approx(27.4, abs=0.5)

    def test_loss_impairment_monotone(self):
        losses = [0.0, 0.01, 0.05, 0.2]
        values = [loss_impairment(p) for p in losses]
        assert values == sorted(values)
        assert values[0] == 0.0

    def test_r_to_mos_anchors(self):
        assert r_to_mos(0.0) == 1.0
        assert r_to_mos(100.0) == 4.5
        assert r_to_mos(93.0) == pytest.approx(4.4, abs=0.2)

    def test_mos_degrades_with_rtt(self):
        model = ConferencingModel()
        assert model.mos(conditions(rtt=20.0)) > model.mos(conditions(rtt=600.0))

    def test_asymmetric_upload_hurts(self):
        model = ConferencingModel()
        symmetric = model.satisfaction(conditions(up=10.0))
        starved = model.satisfaction(conditions(up=0.3))
        assert symmetric > starved

    def test_satellite_rtt_is_painful_despite_bandwidth(self):
        model = ConferencingModel()
        satellite = model.satisfaction(conditions(down=100.0, up=20.0, rtt=620.0))
        fiber = model.satisfaction(conditions(down=100.0, up=20.0, rtt=15.0))
        assert satellite < 0.7
        assert fiber - satellite > 0.25


class TestAudioModel:
    def test_low_bandwidth_suffices(self):
        model = AudioModel()
        assert model.satisfaction(conditions(down=2.0, rtt=40.0, loss=0.001)) > 0.7

    def test_stall_risk_from_starvation(self):
        model = AudioModel()
        assert model.stall_risk(conditions(down=0.1)) > 0.3

    def test_startup_delay_grows_with_rtt(self):
        model = AudioModel()
        assert model.startup_delay(conditions(rtt=600.0)) > model.startup_delay(
            conditions(rtt=20.0)
        )


class TestBackupModel:
    def test_upload_bound(self):
        model = BackupModel()
        fast_up = model.satisfaction(conditions(up=100.0))
        slow_up = model.satisfaction(conditions(up=1.0))
        assert fast_up > slow_up

    def test_download_is_irrelevant(self):
        model = BackupModel()
        a = model.satisfaction(conditions(down=1000.0, up=10.0))
        b = model.satisfaction(conditions(down=5.0, up=10.0))
        assert a == pytest.approx(b)

    def test_completion_hours_inverse_in_upload(self):
        model = BackupModel()
        assert model.completion_hours(conditions(up=10.0)) > model.completion_hours(
            conditions(up=100.0)
        ) * 5.0


class TestGamingModel:
    def test_latency_cliff(self):
        model = GamingModel()
        lan = model.satisfaction(conditions(rtt=15.0))
        ok = model.satisfaction(conditions(rtt=80.0))
        bad = model.satisfaction(conditions(rtt=250.0))
        assert lan > ok > bad
        assert lan > 0.9
        assert bad < 0.1

    def test_loss_causes_rubber_banding(self):
        model = GamingModel()
        clean = model.satisfaction(conditions(loss=0.0))
        lossy = model.satisfaction(conditions(loss=0.03))
        assert clean > 2.0 * lossy

    def test_throughput_is_secondary(self):
        model = GamingModel()
        modest = model.satisfaction(conditions(down=10.0, up=5.0, rtt=20.0))
        gigabit = model.satisfaction(conditions(down=1000.0, up=1000.0, rtt=20.0))
        assert modest == pytest.approx(gigabit, abs=0.05)
