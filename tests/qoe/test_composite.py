"""Unit tests for repro.qoe.composite (population ground truth)."""

import pytest

from repro.core.usecases import UseCase
from repro.core.weights import UseCaseWeights
from repro.netsim.population import REGION_PRESETS, region_preset
from repro.qoe.composite import UseCaseModels, region_qoe, regions_qoe


class TestRegionQoE:
    def test_shape(self):
        result = region_qoe(region_preset("metro-fiber"), seed=1, subscribers=40)
        assert result.region == "metro-fiber"
        assert set(result.per_use_case) == set(UseCase)
        assert result.subscribers == 40
        assert 0.0 <= result.overall <= 1.0

    def test_reproducible(self):
        a = region_qoe(region_preset("rural-dsl"), seed=2, subscribers=30)
        b = region_qoe(region_preset("rural-dsl"), seed=2, subscribers=30)
        assert a.overall == b.overall
        assert a.per_use_case == b.per_use_case

    def test_fiber_dominates_satellite_for_interactive_use(self):
        fiber = region_qoe(region_preset("metro-fiber"), seed=3, subscribers=60)
        satellite = region_qoe(
            region_preset("satellite-remote"), seed=3, subscribers=60
        )
        assert (
            fiber.per_use_case[UseCase.VIDEO_CONFERENCING]
            > satellite.per_use_case[UseCase.VIDEO_CONFERENCING] + 0.3
        )
        assert (
            fiber.per_use_case[UseCase.GAMING]
            > satellite.per_use_case[UseCase.GAMING] + 0.3
        )

    def test_overall_is_weighted_average(self):
        result = region_qoe(region_preset("metro-fiber"), seed=1, subscribers=20)
        mean = sum(result.per_use_case.values()) / 6.0
        assert result.overall == pytest.approx(mean)  # equal default weights

    def test_custom_weights_shift_overall(self):
        gaming_only = UseCaseWeights(
            {u: (5 if u is UseCase.GAMING else 0) for u in UseCase}
        )
        profile = region_preset("satellite-remote")
        weighted = region_qoe(profile, seed=1, subscribers=20, weights=gaming_only)
        assert weighted.overall == pytest.approx(
            weighted.per_use_case[UseCase.GAMING]
        )

    def test_custom_models_injectable(self):
        class AlwaysHappy:
            def satisfaction(self, conditions):
                return 1.0

        models = UseCaseModels(web=AlwaysHappy())
        result = region_qoe(
            region_preset("rural-dsl"), seed=1, subscribers=10, models=models
        )
        assert result.per_use_case[UseCase.WEB_BROWSING] == 1.0


class TestRegionsQoE:
    def test_all_regions_covered(self):
        results = regions_qoe(REGION_PRESETS, seed=1, subscribers=20)
        assert set(results) == set(REGION_PRESETS)

    def test_quality_gradient_matches_intuition(self):
        results = regions_qoe(REGION_PRESETS, seed=4, subscribers=60)
        assert results["metro-fiber"].overall > results["rural-dsl"].overall
        assert results["metro-fiber"].overall > results["satellite-remote"].overall
