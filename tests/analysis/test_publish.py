"""Unit tests for repro.analysis.publish and the publish CLI command."""

import json

import pytest

from repro.analysis.publish import build_publication
from repro.core.usecases import UseCase


class TestBuildPublication:
    def test_contains_all_sections(self, small_campaign, config):
        document = build_publication(
            small_campaign,
            config,
            populations={"metro-fiber": 2e6, "rural-dsl": 1e6},
        )
        assert document.startswith("# Internet Quality Barometer report")
        assert "## National headline" in document
        assert "## Regional scores" in document
        assert "## metro-fiber" in document
        assert "## rural-dsl" in document
        assert "## Methodology & provenance" in document

    def test_no_national_section_without_populations(
        self, small_campaign, config
    ):
        document = build_publication(small_campaign, config)
        assert "## National headline" not in document
        assert "## Regional scores" in document

    def test_regions_ordered_best_first(self, small_campaign, config):
        document = build_publication(small_campaign, config)
        assert document.index("## metro-fiber") < document.index("## rural-dsl")

    def test_use_case_tables_present(self, small_campaign, config):
        document = build_publication(small_campaign, config)
        for use_case in UseCase:
            assert use_case.display_name in document

    def test_improvement_targets_for_failing_region(
        self, small_campaign, config
    ):
        document = build_publication(small_campaign, config)
        assert "Improvement needed" in document
        assert "Mbit/s" in document

    def test_provenance_records_methodology(self, small_campaign, config):
        document = build_publication(small_campaign, config)
        assert "p95" in document
        assert "literal semantics" in document
        assert "cloudflare, ndt, ookla" in document

    def test_custom_title(self, small_campaign, config):
        document = build_publication(
            small_campaign, config, title="Q3 Barometer"
        )
        assert document.startswith("# Q3 Barometer")


class TestPublishCli:
    @pytest.fixture()
    def campaign_file(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "campaign.jsonl"
        main(
            [
                "simulate",
                str(path),
                "--regions",
                "metro-fiber",
                "rural-dsl",
                "--tests",
                "80",
                "--subscribers",
                "25",
            ]
        )
        return path

    def test_publish_to_stdout(self, campaign_file, capsys):
        from repro.cli import main

        assert main(["publish", str(campaign_file)]) == 0
        out = capsys.readouterr().out
        assert "# Internet Quality Barometer report" in out

    def test_publish_to_file_with_populations(
        self, campaign_file, tmp_path, capsys
    ):
        from repro.cli import main

        populations = tmp_path / "pop.json"
        populations.write_text(
            json.dumps({"metro-fiber": 2e6, "rural-dsl": 1e6})
        )
        output = tmp_path / "report.md"
        assert main(
            [
                "publish",
                str(campaign_file),
                "--populations",
                str(populations),
                "--output",
                str(output),
            ]
        ) == 0
        document = output.read_text()
        assert "## National headline" in document
        assert "wrote publication" in capsys.readouterr().out
