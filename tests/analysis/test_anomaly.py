"""Unit tests for drop detection (analysis.temporal.detect_drops)."""

import pytest

from repro.analysis.temporal import AnomalyWindow, ScorePoint, detect_drops

DAY = 86400.0


def point(day, score, samples=100):
    return ScorePoint(start=day * DAY, end=(day + 1) * DAY, score=score,
                      samples=samples)


class TestDetectDrops:
    def test_flat_series_never_alarms(self):
        points = [point(i, 0.5) for i in range(10)]
        assert detect_drops(points) == []

    def test_single_drop_detected(self):
        points = [point(i, 0.6) for i in range(4)] + [point(4, 0.3)]
        anomalies = detect_drops(points, min_drop=0.1)
        assert len(anomalies) == 1
        assert anomalies[0].start == 4 * DAY
        assert anomalies[0].drop == pytest.approx(0.3)

    def test_small_dips_below_threshold_ignored(self):
        points = [point(i, 0.6) for i in range(4)] + [point(4, 0.55)]
        assert detect_drops(points, min_drop=0.1) == []

    def test_long_outage_stays_alarmed(self):
        # Alarmed windows are excluded from the baseline, so a sustained
        # collapse keeps alarming instead of becoming the new normal.
        points = [point(i, 0.6) for i in range(4)] + [
            point(i, 0.2) for i in range(4, 8)
        ]
        anomalies = detect_drops(points, min_drop=0.1, trailing=3)
        assert len(anomalies) == 4
        assert all(a.baseline == pytest.approx(0.6) for a in anomalies)

    def test_recovery_does_not_alarm(self):
        points = (
            [point(i, 0.6) for i in range(4)]
            + [point(4, 0.2)]
            + [point(i, 0.6) for i in range(5, 8)]
        )
        anomalies = detect_drops(points, min_drop=0.1)
        assert [a.start for a in anomalies] == [4 * DAY]

    def test_no_baseline_no_alarm(self):
        # The very first windows cannot alarm: nothing to compare against.
        points = [point(0, 0.9), point(1, 0.1), point(2, 0.1)]
        assert detect_drops(points, min_drop=0.1, trailing=3) == []

    def test_unscored_windows_skipped(self):
        points = (
            [point(i, 0.6) for i in range(3)]
            + [ScorePoint(start=3 * DAY, end=4 * DAY, score=None, samples=2)]
            + [point(4, 0.3)]
        )
        anomalies = detect_drops(points, min_drop=0.1, trailing=3)
        assert len(anomalies) == 1
        assert anomalies[0].start == 4 * DAY

    def test_gradual_decline_can_evade(self):
        # Documented limitation: a slow slide tracks the baseline down.
        points = [point(i, 0.6 - 0.03 * i) for i in range(10)]
        assert detect_drops(points, min_drop=0.1, trailing=3) == []

    def test_validation(self):
        points = [point(0, 0.5)]
        with pytest.raises(ValueError):
            detect_drops(points, min_drop=0.0)
        with pytest.raises(ValueError):
            detect_drops(points, trailing=0)


class TestEndToEndIncident:
    def test_congestion_incident_detected(self, config):
        from repro.analysis.temporal import score_time_series
        from repro.netsim import region_preset
        from repro.netsim.evolution import (
            EvolutionStage,
            simulate_evolution,
            with_incident,
        )

        profile = region_preset("suburban-cable")
        stages = [
            EvolutionStage(profile, days=4.0),
            EvolutionStage(with_incident(profile, severity=1.2), days=2.0),
            EvolutionStage(profile, days=4.0),
        ]
        records = simulate_evolution(
            stages, seed=3, tests_per_client_per_stage=200, subscribers=60
        )
        points = score_time_series(
            records, "suburban-cable", config, window_seconds=86400.0
        )
        anomalies = detect_drops(points, min_drop=0.08, trailing=3)
        assert anomalies, "the incident must be detected"
        # Every alarm falls inside (or on the boundary window of) the
        # incident period, days 4-6.
        for anomaly in anomalies:
            assert 3.0 * 86400.0 <= anomaly.start < 6.0 * 86400.0

    def test_incident_profile_validation(self):
        from repro.netsim import region_preset
        from repro.netsim.evolution import with_incident

        with pytest.raises(ValueError):
            with_incident(region_preset("metro-fiber"), severity=-0.1)

    def test_incident_scales_load(self):
        from repro.netsim import region_preset
        from repro.netsim.evolution import with_incident

        base = region_preset("metro-fiber")
        hit = with_incident(base, severity=0.5)
        assert hit.load_factor == pytest.approx(base.load_factor * 1.5)
        assert hit.name == base.name
