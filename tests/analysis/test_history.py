"""Unit tests for repro.analysis.history (ScoreArchive)."""

import pytest

from repro.analysis.history import ScoreArchive
from repro.core.exceptions import DataError, SchemaError
from repro.core.scoring import score_region


@pytest.fixture()
def breakdowns(fiber_sources, dsl_sources, config):
    return {
        "fiber": score_region(fiber_sources, config),
        "dsl": score_region(dsl_sources, config),
    }


class TestArchiveLifecycle:
    def test_append_and_get(self, tmp_path, breakdowns):
        archive = ScoreArchive(tmp_path / "scores.jsonl")
        archive.append("2026-06", "metro", breakdowns["fiber"])
        archive.append("2026-06", "rural", breakdowns["dsl"])
        assert len(archive) == 2
        assert archive.get("2026-06", "metro") == breakdowns["fiber"]

    def test_persists_across_instances(self, tmp_path, breakdowns):
        path = tmp_path / "scores.jsonl"
        ScoreArchive(path).append("2026-06", "metro", breakdowns["fiber"])
        reloaded = ScoreArchive(path)
        assert reloaded.get("2026-06", "metro").value == pytest.approx(
            breakdowns["fiber"].value
        )

    def test_duplicate_cell_rejected(self, tmp_path, breakdowns):
        archive = ScoreArchive(tmp_path / "scores.jsonl")
        archive.append("2026-06", "metro", breakdowns["fiber"])
        with pytest.raises(DataError, match="already holds"):
            archive.append("2026-06", "metro", breakdowns["dsl"])

    def test_missing_cell_raises(self, tmp_path):
        archive = ScoreArchive(tmp_path / "scores.jsonl")
        with pytest.raises(DataError, match="no entry"):
            archive.get("2026-06", "metro")

    def test_corrupt_file_rejected_with_location(self, tmp_path):
        path = tmp_path / "scores.jsonl"
        path.write_text('{"period": "x"}\n')
        with pytest.raises(SchemaError, match=":1"):
            ScoreArchive(path)


class TestQueries:
    def test_periods_and_regions(self, tmp_path, breakdowns):
        archive = ScoreArchive(tmp_path / "scores.jsonl")
        archive.append("2026-05", "metro", breakdowns["dsl"])
        archive.append("2026-06", "metro", breakdowns["fiber"])
        archive.append("2026-06", "rural", breakdowns["dsl"])
        assert archive.periods() == ("2026-05", "2026-06")
        assert archive.regions() == ("metro", "rural")
        assert archive.regions(period="2026-05") == ("metro",)

    def test_series(self, tmp_path, breakdowns):
        archive = ScoreArchive(tmp_path / "scores.jsonl")
        archive.append("2026-05", "metro", breakdowns["dsl"])
        archive.append("2026-06", "metro", breakdowns["fiber"])
        series = archive.series("metro")
        assert [period for period, _ in series] == ["2026-05", "2026-06"]
        assert series[1][1] > series[0][1]  # the region improved


class TestCompare:
    def test_period_over_period_attribution(self, tmp_path, breakdowns):
        archive = ScoreArchive(tmp_path / "scores.jsonl")
        archive.append("2026-05", "metro", breakdowns["dsl"])
        archive.append("2026-06", "metro", breakdowns["fiber"])
        attribution = archive.compare("metro", "2026-05", "2026-06")
        assert attribution.difference == pytest.approx(
            breakdowns["fiber"].value - breakdowns["dsl"].value
        )
        assert attribution.check() == pytest.approx(0.0, abs=1e-12)

    def test_compare_survives_reload(self, tmp_path, breakdowns):
        path = tmp_path / "scores.jsonl"
        archive = ScoreArchive(path)
        archive.append("2026-05", "metro", breakdowns["dsl"])
        archive.append("2026-06", "metro", breakdowns["fiber"])
        reloaded = ScoreArchive(path)
        attribution = reloaded.compare("metro", "2026-05", "2026-06")
        assert attribution.check() == pytest.approx(0.0, abs=1e-12)
