"""Unit tests for repro.analysis.temporal."""

import pytest

from repro.analysis.temporal import (
    PeakContrast,
    ScorePoint,
    peak_vs_offpeak,
    score_time_series,
    trend,
)
from repro.core.exceptions import DataError

DAY = 86400.0


class TestScoreTimeSeries:
    def test_daily_series_shape(self, small_campaign, config):
        points = score_time_series(
            small_campaign, "metro-fiber", config, window_seconds=DAY
        )
        assert len(points) == 7  # the fixture campaign spans a week
        for point in points:
            assert point.end - point.start == pytest.approx(DAY)
            if point.score is not None:
                assert 0.0 <= point.score <= 1.0

    def test_min_samples_gate(self, small_campaign, config):
        points = score_time_series(
            small_campaign,
            "metro-fiber",
            config,
            window_seconds=DAY,
            min_samples=10_000,
        )
        assert all(point.score is None for point in points)

    def test_unknown_region_raises(self, small_campaign, config):
        with pytest.raises(DataError):
            score_time_series(small_campaign, "atlantis", config)

    def test_samples_reported(self, small_campaign, config):
        points = score_time_series(small_campaign, "rural-dsl", config)
        assert sum(p.samples for p in points) == len(
            small_campaign.for_region("rural-dsl")
        )


class TestPeakVsOffpeak:
    def test_contrast_computed(self, small_campaign, config):
        contrast = peak_vs_offpeak(small_campaign, "rural-dsl", config)
        assert contrast.peak_samples + contrast.off_peak_samples == len(
            small_campaign.for_region("rural-dsl")
        )
        assert contrast.peak_score is not None
        assert contrast.off_peak_score is not None
        assert contrast.degradation == pytest.approx(
            contrast.off_peak_score - contrast.peak_score
        )

    def test_oversubscribed_region_degrades_at_peak(self, config):
        from repro.netsim import CampaignConfig, region_preset, simulate_region

        # Heavy-load region, lots of samples for a stable contrast.
        records = simulate_region(
            region_preset("suburban-cable"),
            seed=31,
            config=CampaignConfig(subscribers=60, tests_per_client=600),
        )
        contrast = peak_vs_offpeak(records, "suburban-cable", config)
        assert contrast.degradation is not None
        assert contrast.degradation >= -0.05  # evenings never clearly better

    def test_degradation_none_when_undersampled(self, small_campaign, config):
        contrast = peak_vs_offpeak(
            small_campaign, "metro-fiber", config, min_samples=10_000
        )
        assert contrast.degradation is None

    def test_unknown_region_raises(self, small_campaign, config):
        with pytest.raises(DataError):
            peak_vs_offpeak(small_campaign, "atlantis", config)


class TestWeekendVsWeekday:
    def test_partition_complete(self, small_campaign, config):
        from repro.analysis.temporal import weekend_vs_weekday

        contrast = weekend_vs_weekday(small_campaign, "metro-fiber", config)
        assert contrast.peak_samples + contrast.off_peak_samples == len(
            small_campaign.for_region("metro-fiber")
        )

    def test_weekend_days_are_two_sevenths(self, small_campaign, config):
        from repro.analysis.temporal import weekend_vs_weekday

        contrast = weekend_vs_weekday(small_campaign, "rural-dsl", config)
        share = contrast.peak_samples / (
            contrast.peak_samples + contrast.off_peak_samples
        )
        assert share == pytest.approx(2 / 7, abs=0.08)

    def test_weekends_never_clearly_better(self, config):
        from repro.analysis.temporal import weekend_vs_weekday
        from repro.netsim import CampaignConfig, region_preset, simulate_region

        records = simulate_region(
            region_preset("suburban-cable"),
            seed=61,
            config=CampaignConfig(subscribers=60, tests_per_client=900),
        )
        contrast = weekend_vs_weekday(records, "suburban-cable", config)
        assert contrast.degradation is not None
        assert contrast.degradation >= -0.08

    def test_unknown_region_raises(self, small_campaign, config):
        from repro.analysis.temporal import weekend_vs_weekday

        with pytest.raises(DataError):
            weekend_vs_weekday(small_campaign, "atlantis", config)


class TestTrend:
    def point(self, day, score):
        return ScorePoint(
            start=day * DAY, end=(day + 1) * DAY, score=score, samples=100
        )

    def test_positive_slope(self):
        points = [self.point(i, 0.1 * i) for i in range(5)]
        slope, intercept = trend(points)
        assert slope == pytest.approx(0.1)
        assert intercept == pytest.approx(0.1 * 0.5 - 0.05, abs=0.06)

    def test_flat_series(self):
        points = [self.point(i, 0.5) for i in range(4)]
        slope, _ = trend(points)
        assert slope == pytest.approx(0.0)

    def test_none_windows_excluded(self):
        points = [
            self.point(0, 0.0),
            self.point(1, None),
            self.point(2, 0.2),
        ]
        slope, _ = trend(points)
        assert slope == pytest.approx(0.1)

    def test_too_few_points_raises(self):
        with pytest.raises(DataError):
            trend([self.point(0, 0.5)])
        with pytest.raises(DataError):
            trend([self.point(0, None), self.point(1, None)])
