"""Unit tests for repro.analysis.tables."""

import pytest

from repro.analysis.tables import render_markdown, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["Name", "Score"], [("alpha", 0.5), ("b", 1.0)])
        lines = text.splitlines()
        assert len(lines) == 4
        # All lines padded to equal visible structure.
        assert lines[0].startswith("Name")
        assert "-----" in lines[1]
        assert lines[2].startswith("alpha")

    def test_float_formatting(self):
        text = render_table(["x"], [(0.123456,)])
        assert "0.123" in text
        assert "0.1234" not in text

    def test_non_float_cells_via_str(self):
        text = render_table(["x"], [(42,), ("hello",)])
        assert "42" in text and "hello" in text

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="row width"):
            render_table(["a", "b"], [(1,)])

    def test_indent(self):
        text = render_table(["x"], [(1,)], indent="  ")
        assert all(line.startswith("  ") for line in text.splitlines())

    def test_empty_rows_ok(self):
        text = render_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestSparkline:
    def test_scaling(self):
        from repro.analysis.tables import sparkline

        assert sparkline([0.0, 0.5, 1.0]) == "▁▅█"

    def test_none_values_become_spaces(self):
        from repro.analysis.tables import sparkline

        assert sparkline([0.0, None, 1.0]) == "▁ █"

    def test_all_none(self):
        from repro.analysis.tables import sparkline

        assert sparkline([None, None]) == "  "

    def test_constant_series(self):
        from repro.analysis.tables import sparkline

        assert sparkline([0.4, 0.4, 0.4]) == "███"

    def test_explicit_bounds(self):
        from repro.analysis.tables import sparkline

        # With 0..1 bounds, 0.5 maps mid-scale even if the data is flat.
        assert sparkline([0.5], low=0.0, high=1.0) in "▄▅"

    def test_length_preserved(self):
        from repro.analysis.tables import sparkline

        values = [0.1 * i if i % 3 else None for i in range(10)]
        assert len(sparkline(values)) == 10


class TestRenderMarkdown:
    def test_structure(self):
        text = render_markdown(["Region", "IQB"], [("x", 0.5)])
        lines = text.splitlines()
        assert lines[0] == "| Region | IQB |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| x | 0.500 |"

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_markdown(["a"], [(1, 2)])
