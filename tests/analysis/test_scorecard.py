"""Unit tests for repro.analysis.scorecard."""

import pytest

from repro.analysis.scorecard import (
    VERDICTS,
    build_scorecard,
    render_scorecard,
    scorecard_from_breakdown,
)
from repro.core.scoring import score_region
from repro.core.usecases import UseCase


class TestBuildScorecard:
    def test_shape(self, small_campaign, config):
        card = build_scorecard(small_campaign, "rural-dsl", config)
        assert card.region == "rural-dsl"
        assert 0.0 <= card.score <= 1.0
        assert card.grade in "ABCDE"
        assert 300 <= card.credit <= 850
        assert len(card.lines) == 6
        assert card.tests == len(small_campaign.for_region("rural-dsl"))
        assert card.datasets == ("cloudflare", "ndt", "ookla")

    def test_lines_cover_every_use_case(self, small_campaign, config):
        card = build_scorecard(small_campaign, "metro-fiber", config)
        assert {line.use_case for line in card.lines} == set(UseCase)

    def test_verdicts_match_grades(self, small_campaign, config):
        card = build_scorecard(small_campaign, "rural-dsl", config)
        for line in card.lines:
            assert line.verdict == VERDICTS[line.grade]

    def test_fix_first_present_for_imperfect_region(
        self, small_campaign, config
    ):
        card = build_scorecard(small_campaign, "rural-dsl", config)
        assert card.fix_first is not None
        assert "+0." in card.fix_first

    def test_fix_first_absent_for_perfect_region(
        self, perfect_sources, config
    ):
        breakdown = score_region(perfect_sources, config)
        card = scorecard_from_breakdown(breakdown, region="perfectville")
        assert card.fix_first is None
        assert card.grade == "A"


class TestRenderScorecard:
    def test_label_structure(self, small_campaign, config):
        card = build_scorecard(small_campaign, "rural-dsl", config)
        text = render_scorecard(card)
        lines = text.splitlines()
        assert lines[0].startswith("+--")
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "INTERNET QUALITY BAROMETER" in text
        assert "rural-dsl" in text

    def test_mentions_every_use_case(self, small_campaign, config):
        card = build_scorecard(small_campaign, "metro-fiber", config)
        text = render_scorecard(card)
        for use_case in UseCase:
            assert use_case.display_name in text

    def test_mentions_data_provenance(self, small_campaign, config):
        card = build_scorecard(small_campaign, "metro-fiber", config)
        text = render_scorecard(card)
        assert "tests from: cloudflare, ndt, ookla" in text

    def test_score_bars_scale(self, perfect_sources, terrible_sources, config):
        good = scorecard_from_breakdown(
            score_region(perfect_sources, config), region="good"
        )
        bad = scorecard_from_breakdown(
            score_region(terrible_sources, config), region="bad"
        )
        assert render_scorecard(good).count("#") > render_scorecard(bad).count("#")

    def test_custom_width(self, small_campaign, config):
        card = build_scorecard(small_campaign, "metro-fiber", config)
        text = render_scorecard(card, width=80)
        assert all(len(line) == 80 for line in text.splitlines())
