"""Unit tests for repro.analysis.national."""

import pytest

from repro.analysis.national import national_score, render_national
from repro.core.exceptions import DataError


SCORES = {"metro": 0.8, "suburb": 0.6, "rural": 0.2}
POPULATIONS = {"metro": 5_000_000, "suburb": 3_000_000, "rural": 2_000_000}


class TestNationalScore:
    def test_population_weighted_mean(self):
        national = national_score(SCORES, POPULATIONS)
        expected = (0.8 * 5 + 0.6 * 3 + 0.2 * 2) / 10
        assert national.value == pytest.approx(expected)

    def test_equal_populations_reduce_to_mean(self):
        national = national_score(SCORES, {r: 1.0 for r in SCORES})
        assert national.value == pytest.approx(sum(SCORES.values()) / 3)

    def test_weights_sum_to_one(self):
        national = national_score(SCORES, POPULATIONS)
        assert sum(s.weight for s in national.regions) == pytest.approx(1.0)

    def test_shortfall_decomposition_exact(self):
        national = national_score(SCORES, POPULATIONS)
        assert national.check() == pytest.approx(0.0, abs=1e-12)
        assert national.shortfall == pytest.approx(1.0 - national.value)

    def test_ranked_by_shortfall(self):
        national = national_score(SCORES, POPULATIONS)
        ranked = national.ranked_by_shortfall()
        contributions = [s.shortfall_contribution for s in ranked]
        assert contributions == sorted(contributions, reverse=True)
        # rural: 0.2 pop-share x 0.8 shortfall = 0.16 — the biggest.
        assert ranked[0].region == "rural"

    def test_small_population_large_gap_can_outweigh(self):
        # A tiny terrible region vs a huge near-perfect one.
        national = national_score(
            {"big": 0.95, "tiny": 0.0},
            {"big": 9_000_000, "tiny": 1_000_000},
        )
        ranked = national.ranked_by_shortfall()
        assert ranked[0].region == "tiny"

    def test_extra_population_entries_ignored(self):
        populations = dict(POPULATIONS, elsewhere=99e9)
        national = national_score(SCORES, populations)
        assert {s.region for s in national.regions} == set(SCORES)

    def test_validation(self):
        with pytest.raises(DataError, match="at least one"):
            national_score({}, {})
        with pytest.raises(DataError, match="without population"):
            national_score(SCORES, {"metro": 1.0})
        with pytest.raises(DataError, match="positive"):
            national_score({"x": 0.5}, {"x": 0.0})
        with pytest.raises(DataError, match="outside"):
            national_score({"x": 1.5}, {"x": 1.0})


class TestRender:
    def test_mentions_value_and_top_contributor(self):
        national = national_score(SCORES, POPULATIONS)
        text = render_national(national)
        assert "National IQB" in text
        assert "rural" in text
        assert "shortfall" in text


class TestEndToEnd:
    def test_from_simulated_regions(self, small_campaign, config):
        from repro.core import IQBFramework

        framework = IQBFramework(config)
        scores = {
            region: breakdown.value
            for region, breakdown in framework.score_all_regions(
                small_campaign
            ).items()
        }
        national = national_score(
            scores, {"metro-fiber": 1e6, "rural-dsl": 8e5}
        )
        assert scores["rural-dsl"] <= national.value <= scores["metro-fiber"]
        assert national.ranked_by_shortfall()[0].region == "rural-dsl"
