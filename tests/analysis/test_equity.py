"""Unit tests for repro.analysis.equity."""

import pytest

from repro.analysis.equity import (
    equity_table,
    scores_by_isp,
    scores_by_technology,
)
from repro.core.exceptions import DataError
from repro.netsim import CampaignConfig, region_preset, simulate_region


@pytest.fixture(scope="module")
def mixed_records():
    # mixed-urban has three ISPs across fiber/cable/DSL: the equity case.
    return simulate_region(
        region_preset("mixed-urban"),
        seed=17,
        config=CampaignConfig(subscribers=90, tests_per_client=500),
    )


class TestScoresByISP:
    def test_all_isps_listed(self, mixed_records, config):
        breakdown = scores_by_isp(mixed_records, "mixed-urban", config)
        assert {g.group for g in breakdown.groups} == {
            "UrbanFiber",
            "CityCable",
            "OldTelco",
        }
        assert breakdown.dimension == "isp"

    def test_fiber_isp_beats_cable_isp(self, mixed_records, config):
        breakdown = scores_by_isp(mixed_records, "mixed-urban", config)
        scores = {g.group: g.score for g in breakdown.groups}
        assert scores["UrbanFiber"] > scores["CityCable"]

    def test_gap_and_worst_group(self, mixed_records, config):
        breakdown = scores_by_isp(mixed_records, "mixed-urban", config)
        assert breakdown.gap is not None and breakdown.gap > 0.0
        assert breakdown.worst_group is not None
        best = breakdown.scored_groups()[0]
        assert best.score - breakdown.worst_group.score == pytest.approx(
            breakdown.gap
        )

    def test_overall_matches_region_score(self, mixed_records, config):
        from repro.core import score_region

        breakdown = scores_by_isp(mixed_records, "mixed-urban", config)
        direct = score_region(
            mixed_records.for_region("mixed-urban").group_by_source(), config
        ).value
        assert breakdown.overall == pytest.approx(direct)

    def test_min_samples_gate(self, mixed_records, config):
        breakdown = scores_by_isp(
            mixed_records, "mixed-urban", config, min_samples=10_000
        )
        assert all(g.score is None for g in breakdown.groups)
        assert breakdown.gap is None

    def test_unknown_region_raises(self, mixed_records, config):
        with pytest.raises(DataError):
            scores_by_isp(mixed_records, "atlantis", config)


class TestScoresByTechnology:
    def test_technologies_listed(self, mixed_records, config):
        breakdown = scores_by_technology(mixed_records, "mixed-urban", config)
        assert {g.group for g in breakdown.groups} == {"fiber", "cable", "dsl"}

    def test_fiber_beats_dsl(self, mixed_records, config):
        breakdown = scores_by_technology(mixed_records, "mixed-urban", config)
        scores = {g.group: g.score for g in breakdown.groups}
        assert scores["fiber"] > scores["dsl"]

    def test_region_score_between_best_and_worst_tech(
        self, mixed_records, config
    ):
        breakdown = scores_by_technology(mixed_records, "mixed-urban", config)
        scored = breakdown.scored_groups()
        assert scored[-1].score - 0.05 <= breakdown.overall


class TestEquityTable:
    def test_rows_sorted_best_first(self, mixed_records, config):
        breakdown = scores_by_isp(mixed_records, "mixed-urban", config)
        rows = equity_table(breakdown)
        scores = [row["score"] for row in rows if row["score"] is not None]
        assert scores == sorted(scores, reverse=True)

    def test_delta_vs_overall(self, mixed_records, config):
        breakdown = scores_by_isp(mixed_records, "mixed-urban", config)
        for row in equity_table(breakdown):
            if row["score"] is not None:
                assert row["delta_vs_region"] == pytest.approx(
                    row["score"] - breakdown.overall
                )

    def test_unscored_groups_sink_to_bottom(self, mixed_records, config):
        breakdown = scores_by_isp(
            mixed_records, "mixed-urban", config, min_samples=10_000
        )
        rows = equity_table(breakdown)
        assert all(row["score"] is None for row in rows)
