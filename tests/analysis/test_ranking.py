"""Unit tests for repro.analysis.ranking, cross-checked against scipy."""

import pytest
import scipy.stats

from repro.analysis.ranking import (
    kendall_tau,
    pairwise_flips,
    pearson,
    rank_regions,
    ranks,
    spearman_rho,
)


class TestRankRegions:
    def test_best_first(self):
        ordered = rank_regions({"a": 0.2, "b": 0.9, "c": 0.5})
        assert [name for name, _ in ordered] == ["b", "c", "a"]

    def test_ties_break_alphabetically(self):
        ordered = rank_regions({"z": 0.5, "a": 0.5})
        assert [name for name, _ in ordered] == ["a", "z"]


class TestRanks:
    def test_simple(self):
        assert ranks({"a": 0.9, "b": 0.5, "c": 0.1}) == {
            "a": 1.0,
            "b": 2.0,
            "c": 3.0,
        }

    def test_ties_share_average_rank(self):
        result = ranks({"a": 0.9, "b": 0.5, "c": 0.5, "d": 0.1})
        assert result["b"] == result["c"] == 2.5
        assert result["d"] == 4.0


class TestCorrelations:
    def scores(self):
        import numpy as np

        rng = np.random.default_rng(3)
        keys = [f"r{i}" for i in range(12)]
        a = {k: float(rng.normal()) for k in keys}
        b = {k: a[k] * 0.5 + float(rng.normal()) * 0.5 for k in keys}
        return a, b

    def test_spearman_matches_scipy(self):
        a, b = self.scores()
        keys = sorted(a)
        expected = scipy.stats.spearmanr(
            [a[k] for k in keys], [b[k] for k in keys]
        ).statistic
        assert spearman_rho(a, b) == pytest.approx(float(expected))

    def test_kendall_matches_scipy(self):
        a, b = self.scores()
        keys = sorted(a)
        expected = scipy.stats.kendalltau(
            [a[k] for k in keys], [b[k] for k in keys]
        ).statistic
        assert kendall_tau(a, b) == pytest.approx(float(expected))

    def test_kendall_with_ties_matches_scipy(self):
        a = {"r1": 1.0, "r2": 1.0, "r3": 0.5, "r4": 0.2, "r5": 0.2}
        b = {"r1": 0.9, "r2": 0.7, "r3": 0.7, "r4": 0.1, "r5": 0.3}
        keys = sorted(a)
        expected = scipy.stats.kendalltau(
            [a[k] for k in keys], [b[k] for k in keys]
        ).statistic
        assert kendall_tau(a, b) == pytest.approx(float(expected))

    def test_perfect_agreement(self):
        a = {"x": 1.0, "y": 2.0, "z": 3.0}
        assert spearman_rho(a, a) == pytest.approx(1.0)
        assert kendall_tau(a, a) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        a = {"x": 1.0, "y": 2.0, "z": 3.0}
        b = {"x": 3.0, "y": 2.0, "z": 1.0}
        assert spearman_rho(a, b) == pytest.approx(-1.0)
        assert kendall_tau(a, b) == pytest.approx(-1.0)

    def test_only_shared_keys_used(self):
        a = {"x": 1.0, "y": 2.0, "z": 3.0, "only_a": 9.0}
        b = {"x": 1.0, "y": 2.0, "z": 3.0, "only_b": -9.0}
        assert spearman_rho(a, b) == pytest.approx(1.0)

    def test_too_few_keys_rejected(self):
        with pytest.raises(ValueError):
            spearman_rho({"x": 1.0}, {"x": 1.0})
        with pytest.raises(ValueError):
            kendall_tau({"x": 1.0}, {"y": 1.0})

    def test_constant_input_returns_zero(self):
        a = {"x": 1.0, "y": 1.0, "z": 1.0}
        b = {"x": 0.1, "y": 0.5, "z": 0.9}
        assert spearman_rho(a, b) == 0.0


class TestPearson:
    def test_linear_relation(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1])
        with pytest.raises(ValueError):
            pearson([1], [1])


class TestPairwiseFlips:
    def test_no_flips_when_identical_order(self):
        a = {"x": 1.0, "y": 2.0}
        assert pairwise_flips(a, a) == []

    def test_flip_detected_and_oriented(self):
        a = {"x": 2.0, "y": 1.0}  # a ranks x above y
        b = {"x": 1.0, "y": 2.0}  # b ranks y above x
        assert pairwise_flips(a, b) == [("x", "y")]

    def test_ties_do_not_count_as_flips(self):
        a = {"x": 1.0, "y": 1.0}
        b = {"x": 0.1, "y": 0.9}
        assert pairwise_flips(a, b) == []

    def test_flip_count_matches_kendall_discordance(self):
        a = {"r1": 4.0, "r2": 3.0, "r3": 2.0, "r4": 1.0}
        b = {"r1": 4.0, "r2": 1.0, "r3": 2.0, "r4": 3.0}
        flips = pairwise_flips(a, b)
        assert len(flips) == 3  # (r2,r3), (r2,r4), (r3,r4)
