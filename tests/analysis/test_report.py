"""Unit tests for repro.analysis.report and correlation."""

import pytest

from repro.analysis.correlation import evaluate_methods
from repro.analysis.report import comparison_report, region_report
from repro.netsim.population import region_preset
from repro.netsim.simulator import CampaignConfig


class TestRegionReport:
    def test_contains_headline_numbers(self, small_campaign, config):
        text = region_report(small_campaign, "rural-dsl", config)
        assert "IQB report: rural-dsl" in text
        assert "IQB score" in text
        assert "Grade" in text
        assert "/850" in text

    def test_lists_datasets(self, small_campaign, config):
        text = region_report(small_campaign, "metro-fiber", config)
        assert "ndt" in text and "cloudflare" in text and "ookla" in text

    def test_requirement_detail_table(self, small_campaign, config):
        text = region_report(small_campaign, "rural-dsl", config)
        assert "Requirement detail" in text
        assert "latency_ms" in text
        assert "packet_loss" in text

    def test_opportunities_for_imperfect_region(self, small_campaign, config):
        text = region_report(small_campaign, "rural-dsl", config)
        assert "improvement opportunities" in text

    def test_default_config_used_when_omitted(self, small_campaign):
        assert "IQB score" in region_report(small_campaign, "metro-fiber")


class TestComparisonReport:
    def test_all_regions_listed_sorted(self, small_campaign, config):
        text = comparison_report(small_campaign, config)
        lines = text.splitlines()
        fiber_line = next(i for i, l in enumerate(lines) if "metro-fiber" in l)
        dsl_line = next(i for i, l in enumerate(lines) if "rural-dsl" in l)
        assert fiber_line < dsl_line  # better region first

    def test_row_contents(self, small_campaign, config):
        text = comparison_report(small_campaign, config)
        assert "Grade" in text
        assert "Tests" in text


class TestEvaluateMethods:
    @pytest.fixture(scope="class")
    def result(self, config):
        profiles = {
            name: region_preset(name)
            for name in ("metro-fiber", "suburban-cable", "rural-dsl",
                         "satellite-remote")
        }
        campaign = CampaignConfig(subscribers=40, tests_per_client=120)
        return evaluate_methods(
            profiles, seed=13, config=config, campaign=campaign,
            subscribers_for_qoe=40,
        )

    def test_both_methods_evaluated(self, result):
        assert set(result.methods) == {"iqb", "speed_only"}

    def test_qoe_covers_regions(self, result):
        assert len(result.qoe) == 4

    def test_statistics_bounded(self, result):
        for method in result.methods.values():
            assert -1.0 <= method.spearman <= 1.0
            assert -1.0 <= method.kendall <= 1.0
            assert method.flips >= 0

    def test_iqb_tracks_qoe_strongly(self, result):
        assert result.methods["iqb"].spearman >= 0.7

    def test_winner_is_a_method(self, result):
        assert result.winner() in result.methods
