"""Unit tests for repro.measurements.calibration."""

import pytest

from repro.core.exceptions import DataError
from repro.core.metrics import Metric
from repro.measurements.calibration import (
    BiasModel,
    CalibratedSource,
    estimate_biases,
)
from repro.measurements.collection import MeasurementSet
from repro.measurements.record import Measurement


def records_with_bias(
    regions=("r1", "r2", "r3"),
    biases={"low": 0.5, "ref": 1.0, "high": 2.0},
    base_down=100.0,
    n=30,
):
    """Synthetic multi-region set with exact multiplicative biases."""
    out = []
    for i, region in enumerate(regions):
        truth = base_down * (1.0 + 0.3 * i)  # regions differ in truth
        for dataset, factor in biases.items():
            for k in range(n):
                out.append(
                    Measurement(
                        region=region,
                        source=dataset,
                        timestamp=float(k),
                        download_mbps=truth * factor,
                        upload_mbps=truth * factor / 2.0,
                    )
                )
    return MeasurementSet(out)


class TestEstimateBiases:
    def test_recovers_exact_factors(self):
        model = estimate_biases(records_with_bias())
        assert model.factor("low", Metric.DOWNLOAD) == pytest.approx(0.5)
        assert model.factor("ref", Metric.DOWNLOAD) == pytest.approx(1.0)
        assert model.factor("high", Metric.DOWNLOAD) == pytest.approx(2.0)
        assert model.factor("high", Metric.UPLOAD) == pytest.approx(2.0)

    def test_regions_recorded(self):
        model = estimate_biases(records_with_bias())
        assert model.regions_used == ("r1", "r2", "r3")

    def test_unknown_dataset_factor_is_one(self):
        model = estimate_biases(records_with_bias())
        assert model.factor("mystery", Metric.DOWNLOAD) == 1.0

    def test_uncalibrated_metric_factor_is_one(self):
        model = estimate_biases(records_with_bias())
        assert model.factor("low", Metric.LATENCY) == 1.0

    def test_min_samples_gate(self):
        # With a gate above n, nothing can be estimated.
        with pytest.raises(DataError, match="enough corroborated"):
            estimate_biases(records_with_bias(n=5), min_samples=20)

    def test_single_dataset_region_cannot_contribute(self):
        records = records_with_bias(biases={"only": 1.0})
        with pytest.raises(DataError):
            estimate_biases(records)

    def test_robust_to_one_weird_region(self):
        # One region where 'low' accidentally looks unbiased must not
        # move the median-of-ratios much.
        clean = records_with_bias()
        weird = records_with_bias(regions=("weird",), biases={"low": 1.0,
                                                              "ref": 1.0,
                                                              "high": 2.0})
        model = estimate_biases(clean + weird)
        assert model.factor("low", Metric.DOWNLOAD) == pytest.approx(0.5)


class TestCalibratedSource:
    def test_quantiles_rescaled(self):
        records = records_with_bias(regions=("r1",))
        model = estimate_biases(records_with_bias())
        sources = records.for_region("r1").group_by_source()
        calibrated = model.calibrate(sources)
        raw_low = sources["low"].quantile(Metric.DOWNLOAD, 50.0)
        cal_low = calibrated["low"].quantile(Metric.DOWNLOAD, 50.0)
        cal_high = calibrated["high"].quantile(Metric.DOWNLOAD, 50.0)
        assert cal_low == pytest.approx(raw_low / 0.5)
        # After calibration, the two datasets agree on the link.
        assert cal_low == pytest.approx(cal_high)

    def test_uncalibrated_metrics_untouched(self):
        source_records = MeasurementSet(
            [
                Measurement(
                    region="r",
                    source="low",
                    timestamp=0.0,
                    latency_ms=40.0,
                )
            ]
        )
        model = BiasModel(
            factors={("low", Metric.DOWNLOAD): 0.5}, regions_used=("x",)
        )
        wrapped = CalibratedSource(source_records, model, "low")
        assert wrapped.quantile(Metric.LATENCY, 50.0) == 40.0

    def test_missing_metrics_stay_missing(self):
        records = records_with_bias(regions=("r1",))
        model = estimate_biases(records_with_bias())
        calibrated = model.calibrate(
            records.for_region("r1").group_by_source()
        )
        assert calibrated["low"].quantile(Metric.PACKET_LOSS, 95.0) is None
        assert calibrated["low"].sample_count(Metric.DOWNLOAD) == 30


class TestCalibrationShrinksSpread:
    def test_single_dataset_scores_converge(self, config):
        """The headline claim the ext-calib bench quantifies."""
        from repro.baselines import all_single_dataset_scores
        from repro.netsim import REGION_PRESETS, region_preset, simulate_regions

        records = simulate_regions(
            [region_preset(name) for name in REGION_PRESETS], seed=9
        )
        model = estimate_biases(records)
        target = records.for_region("mixed-urban").group_by_source()
        raw_scores = all_single_dataset_scores(target, config)
        calibrated_scores = all_single_dataset_scores(
            model.calibrate(target), config
        )

        def spread(scores):
            values = [b.value for b in scores.values()]
            return max(values) - min(values)

        assert spread(calibrated_scores) < spread(raw_scores)
