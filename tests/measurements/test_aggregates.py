"""Unit tests for repro.measurements.aggregates (Ookla-style tables)."""

import pytest

from repro.core.exceptions import SchemaError
from repro.core.metrics import Metric
from repro.measurements.aggregates import (
    AggregateTable,
    MetricAggregate,
    aggregate_measurements,
)
from repro.measurements.collection import MeasurementSet
from repro.measurements.record import Measurement


def knots(*pairs):
    return tuple(pairs)


class TestMetricAggregate:
    def test_interpolation_between_knots(self):
        aggregate = MetricAggregate(
            knots=knots((25.0, 10.0), (75.0, 30.0)), count=100
        )
        assert aggregate.quantile(50.0) == pytest.approx(20.0)

    def test_exact_knot_lookup(self):
        aggregate = MetricAggregate(
            knots=knots((25.0, 10.0), (75.0, 30.0)), count=100
        )
        assert aggregate.quantile(25.0) == 10.0
        assert aggregate.quantile(75.0) == 30.0

    def test_clamping_beyond_published_range(self):
        aggregate = MetricAggregate(
            knots=knots((25.0, 10.0), (75.0, 30.0)), count=100
        )
        assert aggregate.quantile(5.0) == 10.0
        assert aggregate.quantile(99.0) == 30.0

    def test_single_knot(self):
        aggregate = MetricAggregate(knots=knots((95.0, 42.0)), count=10)
        assert aggregate.quantile(50.0) == 42.0
        assert aggregate.quantile(95.0) == 42.0

    def test_validation_rejects_unsorted_percentiles(self):
        with pytest.raises(SchemaError, match="sorted"):
            MetricAggregate(knots=knots((75.0, 30.0), (25.0, 10.0)), count=1)

    def test_validation_rejects_duplicates(self):
        with pytest.raises(SchemaError, match="duplicate"):
            MetricAggregate(knots=knots((25.0, 10.0), (25.0, 30.0)), count=1)

    def test_validation_rejects_decreasing_values(self):
        with pytest.raises(SchemaError, match="non-decreasing"):
            MetricAggregate(knots=knots((25.0, 30.0), (75.0, 10.0)), count=1)

    def test_validation_rejects_bad_counts_and_ranges(self):
        with pytest.raises(SchemaError, match="count"):
            MetricAggregate(knots=knots((50.0, 1.0)), count=0)
        with pytest.raises(SchemaError, match="percentile"):
            MetricAggregate(knots=knots((150.0, 1.0)), count=1)
        with pytest.raises(SchemaError, match="knot"):
            MetricAggregate(knots=(), count=1)


class TestAggregateTable:
    def make_table(self):
        return AggregateTable(
            region="r",
            source="ookla",
            metrics={
                Metric.DOWNLOAD: MetricAggregate(
                    knots=knots((5.0, 10.0), (50.0, 60.0), (95.0, 200.0)),
                    count=500,
                ),
                Metric.LATENCY: MetricAggregate(
                    knots=knots((50.0, 15.0), (95.0, 40.0)), count=500
                ),
            },
        )

    def test_quantile_source_protocol(self):
        table = self.make_table()
        assert table.quantile(Metric.DOWNLOAD, 50.0) == 60.0
        assert table.quantile(Metric.PACKET_LOSS, 95.0) is None
        assert table.sample_count(Metric.DOWNLOAD) == 500
        assert table.sample_count(Metric.PACKET_LOSS) == 0

    def test_metrics_listing_ordered(self):
        assert self.make_table().metrics() == (Metric.DOWNLOAD, Metric.LATENCY)

    def test_round_trip(self):
        table = self.make_table()
        rebuilt = AggregateTable.from_dict(table.to_dict())
        assert rebuilt.region == "r"
        for percentile in (5.0, 42.0, 95.0):
            assert rebuilt.quantile(
                Metric.DOWNLOAD, percentile
            ) == table.quantile(Metric.DOWNLOAD, percentile)

    def test_malformed_document_rejected(self):
        with pytest.raises(SchemaError, match="malformed"):
            AggregateTable.from_dict({"region": "r"})

    def test_empty_table_rejected(self):
        with pytest.raises(SchemaError, match="no metrics"):
            AggregateTable(region="r", source="s", metrics={})


class TestAggregateMeasurements:
    def make_records(self):
        return MeasurementSet(
            Measurement(
                region="r",
                source="ookla",
                timestamp=float(i),
                download_mbps=float(i + 1),
                latency_ms=10.0 + i,
            )
            for i in range(100)
        )

    def test_publisher_reduction(self):
        table = aggregate_measurements(self.make_records(), "r", "ookla")
        assert table.region == "r"
        assert Metric.DOWNLOAD in dict.fromkeys(table.metrics())
        assert table.sample_count(Metric.DOWNLOAD) == 100

    def test_published_knots_match_exact_percentiles(self):
        records = self.make_records()
        table = aggregate_measurements(records, "r", "ookla")
        for percentile in (5.0, 50.0, 95.0):
            assert table.quantile(Metric.DOWNLOAD, percentile) == pytest.approx(
                records.quantile(Metric.DOWNLOAD, percentile)
            )

    def test_metric_subset_selection(self):
        table = aggregate_measurements(
            self.make_records(), "r", "ookla", metrics=(Metric.DOWNLOAD,)
        )
        assert table.metrics() == (Metric.DOWNLOAD,)

    def test_no_matching_records_rejected(self):
        with pytest.raises(SchemaError, match="no records"):
            aggregate_measurements(self.make_records(), "elsewhere", "ookla")
