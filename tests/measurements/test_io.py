"""Unit tests for repro.measurements.io (JSONL and CSV round trips)."""

import pytest

from repro.core.exceptions import SchemaError
from repro.measurements.collection import MeasurementSet
from repro.measurements.io import (
    IngestStats,
    csv_row_to_measurement,
    iter_csv,
    iter_jsonl,
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
)
from repro.measurements.record import Measurement


@pytest.fixture()
def records():
    return MeasurementSet(
        [
            Measurement(
                region="r1",
                source="ndt",
                timestamp=1.5,
                download_mbps=50.25,
                upload_mbps=10.0,
                latency_ms=20.0,
                packet_loss=0.01,
                isp="ispA",
                access_tech="cable",
                meta={"streams": 1},
            ),
            Measurement(
                region="r2",
                source="ookla",
                timestamp=2.5,
                download_mbps=100.0,
                latency_ms=9.0,
            ),
        ]
    )


class TestJsonl:
    def test_round_trip(self, records, tmp_path):
        path = tmp_path / "data.jsonl"
        assert write_jsonl(records, path) == 2
        loaded = read_jsonl(path)
        assert list(loaded) == list(records)

    def test_iter_streams_lazily(self, records, tmp_path):
        path = tmp_path / "data.jsonl"
        write_jsonl(records, path)
        iterator = iter_jsonl(path)
        first = next(iterator)
        assert first.region == "r1"

    def test_blank_lines_skipped(self, records, tmp_path):
        path = tmp_path / "data.jsonl"
        write_jsonl(records, path)
        text = path.read_text()
        path.write_text("\n" + text + "\n\n")
        assert len(read_jsonl(path)) == 2

    def test_malformed_line_raises_with_location(self, records, tmp_path):
        path = tmp_path / "data.jsonl"
        write_jsonl(records, path)
        with open(path, "a") as handle:
            handle.write("{not json}\n")
        with pytest.raises(SchemaError, match=":3"):
            read_jsonl(path)

    def test_malformed_line_skippable(self, records, tmp_path):
        path = tmp_path / "data.jsonl"
        write_jsonl(records, path)
        with open(path, "a") as handle:
            handle.write("{not json}\n")
            handle.write('{"region": "r3"}\n')  # valid JSON, invalid record
        assert len(read_jsonl(path, on_error="skip")) == 2

    def test_on_error_validated(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="on_error"):
            read_jsonl(path, on_error="ignore")

    def test_empty_file_loads_empty_set(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text("")
        assert len(read_jsonl(path)) == 0


class TestCsv:
    def test_round_trip_drops_meta_only(self, records, tmp_path):
        path = tmp_path / "data.csv"
        assert write_csv(records, path) == 2
        loaded = read_csv(path)
        assert len(loaded) == 2
        first = loaded[0]
        assert first.region == "r1"
        assert first.download_mbps == 50.25
        assert first.timestamp == 1.5
        assert first.isp == "ispA"
        assert first.meta == {}  # meta is not representable in CSV

    def test_missing_metrics_stay_missing(self, records, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(records, path)
        loaded = read_csv(path)
        assert loaded[1].packet_loss is None
        assert loaded[1].upload_mbps is None

    def test_float_precision_preserved(self, tmp_path):
        precise = MeasurementSet(
            [
                Measurement(
                    region="r",
                    source="s",
                    timestamp=0.1 + 0.2,
                    download_mbps=1.0 / 3.0,
                )
            ]
        )
        path = tmp_path / "data.csv"
        write_csv(precise, path)
        loaded = read_csv(path)
        assert loaded[0].download_mbps == 1.0 / 3.0
        assert loaded[0].timestamp == 0.1 + 0.2

    def test_bad_row_raises_with_location(self, records, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(records, path)
        with open(path, "a") as handle:
            handle.write("r3,ndt,notanumber,1,,,,,\n")
        with pytest.raises(SchemaError, match=":4"):
            read_csv(path)

    def test_bad_row_skippable(self, records, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(records, path)
        with open(path, "a") as handle:
            handle.write("r3,ndt,notanumber,1,,,,,\n")
        assert len(read_csv(path, on_error="skip")) == 2

    def test_on_error_validated(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("region,source\n")
        with pytest.raises(ValueError, match="on_error"):
            read_csv(path, on_error="ignore")


class TestIterCsv:
    def test_streams_same_records_as_read_csv(self, records, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(records, path)
        assert list(iter_csv(path)) == list(read_csv(path))

    def test_streams_lazily(self, records, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(records, path)
        iterator = iter_csv(path)
        first = next(iterator)
        assert first.region == "r1"

    def test_stats_updated_in_place(self, records, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(records, path)
        with open(path, "a") as handle:
            handle.write("r3,ndt,notanumber,1,,,,,\n")
        stats = IngestStats()
        loaded = list(iter_csv(path, on_error="skip", stats=stats))
        assert len(loaded) == 2
        assert stats.read == 2
        assert stats.skipped == 1

    def test_bad_row_raises_with_location(self, records, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(records, path)
        with open(path, "a") as handle:
            handle.write("r3,ndt,notanumber,1,,,,,\n")
        with pytest.raises(SchemaError, match=":4"):
            list(iter_csv(path))

    def test_on_error_validated(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("region,source\n")
        with pytest.raises(ValueError, match="on_error"):
            list(iter_csv(path, on_error="ignore"))


class TestCsvRowToMeasurement:
    def test_decodes_row_dropping_empty_cells(self):
        record = csv_row_to_measurement(
            {
                "region": "r1",
                "source": "ndt",
                "timestamp": "1.5",
                "download_mbps": "42.0",
                "upload_mbps": "",
                "latency_ms": None,
            }
        )
        assert record.region == "r1"
        assert record.download_mbps == 42.0
        assert record.upload_mbps is None

    def test_invalid_row_raises_schema_error(self):
        with pytest.raises(SchemaError):
            csv_row_to_measurement(
                {"region": "r1", "source": "ndt", "timestamp": "nope"}
            )
