"""Unit tests for repro.measurements.collection."""

import pytest

from repro.core.metrics import Metric
from repro.measurements.collection import MeasurementSet
from repro.measurements.record import Measurement


def rec(region="r1", source="ndt", ts=0.0, isp="ispA", **metrics):
    metrics.setdefault("download_mbps", 50.0)
    return Measurement(
        region=region, source=source, timestamp=ts, isp=isp, **metrics
    )


@pytest.fixture()
def records():
    return MeasurementSet(
        [
            rec(region="r1", source="ndt", ts=10.0, download_mbps=10.0),
            rec(region="r1", source="ookla", ts=20.0, download_mbps=20.0),
            rec(region="r2", source="ndt", ts=30.0, download_mbps=30.0,
                isp="ispB"),
            rec(region="r2", source="cloudflare", ts=40.0, download_mbps=40.0,
                latency_ms=25.0),
        ]
    )


class TestContainer:
    def test_len_iter_getitem(self, records):
        assert len(records) == 4
        assert [r.timestamp for r in records] == [10.0, 20.0, 30.0, 40.0]
        assert records[0].download_mbps == 10.0

    def test_addition_concatenates(self, records):
        combined = records + records
        assert len(combined) == 8

    def test_empty_set(self):
        empty = MeasurementSet()
        assert len(empty) == 0
        assert empty.regions() == ()
        assert empty.quantile(Metric.DOWNLOAD, 95.0) is None

    def test_repr(self, records):
        assert "4 records" in repr(records)


class TestFiltering:
    def test_for_region(self, records):
        assert len(records.for_region("r1")) == 2
        assert len(records.for_region("missing")) == 0

    def test_for_source(self, records):
        assert len(records.for_source("ndt")) == 2

    def test_for_isp(self, records):
        assert len(records.for_isp("ispB")) == 1

    def test_between_is_half_open(self, records):
        window = records.between(10.0, 30.0)
        assert [r.timestamp for r in window] == [10.0, 20.0]

    def test_filter_predicate(self, records):
        fast = records.filter(lambda r: (r.download_mbps or 0) > 25.0)
        assert len(fast) == 2

    def test_filters_do_not_mutate_original(self, records):
        records.for_region("r1")
        assert len(records) == 4


class TestGrouping:
    def test_distinct_listings(self, records):
        assert records.regions() == ("r1", "r2")
        assert records.sources() == ("cloudflare", "ndt", "ookla")
        assert records.isps() == ("ispA", "ispB")

    def test_group_by_region(self, records):
        groups = records.group_by_region()
        assert set(groups) == {"r1", "r2"}
        assert len(groups["r1"]) == 2

    def test_group_by_source(self, records):
        groups = records.group_by_source()
        assert set(groups) == {"ndt", "ookla", "cloudflare"}
        assert len(groups["ndt"]) == 2


class TestQuantileSource:
    def test_values_skip_missing(self, records):
        assert records.values(Metric.LATENCY) == [25.0]

    def test_quantile(self, records):
        assert records.quantile(Metric.DOWNLOAD, 50.0) == 25.0

    def test_quantile_none_when_unobserved(self, records):
        assert records.quantile(Metric.PACKET_LOSS, 95.0) is None

    def test_sample_count(self, records):
        assert records.sample_count(Metric.DOWNLOAD) == 4
        assert records.sample_count(Metric.LATENCY) == 1


class TestSummaries:
    def test_mean_median(self, records):
        assert records.mean(Metric.DOWNLOAD) == 25.0
        assert records.median(Metric.DOWNLOAD) == 25.0
        assert records.mean(Metric.PACKET_LOSS) is None

    def test_summary_digest(self, records):
        digest = records.summary()
        assert digest["download_mbps"]["count"] == 4.0
        assert "packet_loss" not in digest
        assert digest["latency_ms"]["p95"] == 25.0


class TestMutationInvalidation:
    """add/extend/__add__ must never serve stale cached answers."""

    def test_add_refreshes_quantile(self, records):
        assert records.quantile(Metric.DOWNLOAD, 100.0) == 40.0
        records.add(rec(region="r1", source="ndt", ts=99.0,
                        download_mbps=400.0))
        assert records.quantile(Metric.DOWNLOAD, 100.0) == 400.0
        assert records.sample_count(Metric.DOWNLOAD) == 5

    def test_extend_refreshes_groups_and_values(self, records):
        assert records.regions() == ("r1", "r2")
        records.extend(
            [rec(region="r3", source="ndt", ts=99.0, download_mbps=5.0)]
        )
        assert records.regions() == ("r1", "r2", "r3")
        assert 5.0 in records.values(Metric.DOWNLOAD)

    def test_dunder_add_result_sees_both_sides(self, records):
        other = MeasurementSet(
            [rec(region="r9", source="ndt", ts=1.0, download_mbps=90.0)]
        )
        records.quantile(Metric.DOWNLOAD, 50.0)  # warm the cache
        combined = records + other
        assert combined.quantile(Metric.DOWNLOAD, 100.0) == 90.0
        assert combined.regions() == ("r1", "r2", "r9")

    def test_mutating_a_group_subset_leaves_parent_intact(self, records):
        subset = records.for_region("r1")
        subset.add(rec(region="r1", source="ndt", ts=98.0))
        assert len(subset) == 3
        assert len(records.for_region("r1")) == 2
        assert len(records) == 4


class TestSharedFastPaths:
    def test_add_empty_right_shares_records(self, records):
        combined = records + MeasurementSet()
        assert combined._records is records._records
        assert len(combined) == 4

    def test_add_empty_left_shares_records(self, records):
        combined = MeasurementSet() + records
        assert combined._records is records._records

    def test_shared_result_copies_on_write(self, records):
        combined = records + MeasurementSet()
        combined.add(rec(region="r5", source="ndt", ts=77.0))
        assert len(combined) == 5
        assert len(records) == 4

    def test_filter_on_empty_returns_self(self):
        empty = MeasurementSet()
        assert empty.filter(lambda r: True) is empty

    def test_filter_matching_everything_shares_records(self, records):
        everything = records.filter(lambda r: True)
        assert everything._records is records._records

    def test_group_subsets_are_cached(self, records):
        assert records.for_region("r1") is records.for_region("r1")
        assert records.for_source("ndt") is records.for_source("ndt")
        assert records.for_isp("ispA") is records.for_isp("ispA")
