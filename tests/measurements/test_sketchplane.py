"""Unit tests for the streaming sketch plane (see test_sketch_parity
for the exact-vs-sketch accuracy contract)."""

import json

import pytest

from repro.core.metrics import Metric
from repro.measurements.columnar import ColumnarStore
from repro.measurements.record import Measurement
from repro.measurements.sketchplane import (
    SketchPlane,
    SketchView,
    sketch_records,
)
from repro.obs import REGISTRY


def _record(i, region="alpha", source="ndt", **overrides):
    values = {
        "download_mbps": 100.0 + i,
        "upload_mbps": 20.0 + i,
        "latency_ms": 30.0 + i,
        "packet_loss": 0.001,
    }
    values.update(overrides)
    return Measurement(
        region=region, source=source, timestamp=float(i), **values
    )


class TestSketchView:
    def test_observe_tracks_counts_per_metric(self):
        view = SketchView()
        view.observe(_record(0))
        view.observe(_record(1, upload_mbps=None))
        assert len(view) == 2
        assert view.sample_count(Metric.DOWNLOAD) == 2
        assert view.sample_count(Metric.UPLOAD) == 1

    def test_unobserved_metric_quantile_is_none(self):
        view = SketchView()
        view.observe(_record(0, packet_loss=None))
        assert view.quantile(Metric.PACKET_LOSS, 95.0) is None
        assert view.sample_count(Metric.PACKET_LOSS) == 0

    def test_state_roundtrip(self):
        view = SketchView()
        for i in range(25):
            view.observe(_record(i))
        rebuilt = SketchView.from_state(
            json.loads(json.dumps(view.to_state()))
        )
        assert len(rebuilt) == len(view)
        for metric in Metric.ordered():
            assert rebuilt.sample_count(metric) == view.sample_count(metric)
            assert rebuilt.quantile(metric, 95.0) == pytest.approx(
                view.quantile(metric, 95.0)
            )

    def test_merge_leaves_inputs_unchanged(self):
        a, b = SketchView(), SketchView()
        for i in range(10):
            a.observe(_record(i))
        for i in range(5):
            b.observe(_record(i, latency_ms=None))
        merged = a.merge(b)
        assert len(merged) == 15
        assert merged.sample_count(Metric.LATENCY) == 10
        assert len(a) == 10 and len(b) == 5


class TestSketchPlane:
    def test_add_routes_records_to_cells(self):
        plane = SketchPlane()
        plane.add(_record(0))
        plane.add(_record(1, region="beta"))
        plane.add(_record(2, source="ookla"))
        assert len(plane) == 3
        assert plane.regions() == ("alpha", "beta")
        assert plane.sources() == ("ndt", "ookla")
        assert len(plane.view("alpha", "ndt")) == 1
        # An unobserved cell reads as empty, not a KeyError.
        assert len(plane.view("beta", "ookla")) == 0

    def test_sources_by_region_shape(self):
        plane = sketch_records(
            [_record(0), _record(1, source="ookla"), _record(2, region="b")]
        )
        grouped = plane.sources_by_region()
        assert sorted(grouped) == ["alpha", "b"]
        assert sorted(grouped["alpha"]) == ["ndt", "ookla"]

    def test_aggregate_cube_rejects_percentile_mismatch(self):
        plane = sketch_records([_record(0)])
        with pytest.raises(ValueError, match="one percentile per metric"):
            plane.aggregate_cube(("ndt",), (95.0, 95.0))

    def test_plane_state_roundtrip(self):
        plane = sketch_records([_record(i) for i in range(40)])
        rebuilt = SketchPlane.from_state(
            json.loads(json.dumps(plane.to_state()))
        )
        assert len(rebuilt) == 40
        assert rebuilt.delta == plane.delta
        assert rebuilt.regions() == plane.regions()
        view, original = rebuilt.view("alpha", "ndt"), plane.view("alpha", "ndt")
        assert view.quantile(Metric.DOWNLOAD, 95.0) == pytest.approx(
            original.quantile(Metric.DOWNLOAD, 95.0)
        )

    def test_update_counter_increments_per_metric_value(self):
        before = REGISTRY.counter("sketch.updates").value
        sketch_records([_record(0), _record(1, upload_mbps=None)])
        # 4 metric values + 3 metric values.
        assert REGISTRY.counter("sketch.updates").value - before == 7

    def test_rescore_counter_increments_per_cube_read(self):
        plane = sketch_records([_record(i) for i in range(5)])
        before = REGISTRY.counter("sketch.rescore.hits").value
        plane.aggregate_cube(("ndt",), (95.0, 95.0, 95.0, 95.0))
        plane.aggregate_cube(("ndt",), (95.0, 95.0, 95.0, 95.0))
        assert REGISTRY.counter("sketch.rescore.hits").value - before == 2


class TestColumnarAppend:
    def test_append_feeds_attached_sketch(self):
        store = ColumnarStore([_record(i) for i in range(10)])
        plane = store.sketch_plane()
        assert len(plane) == 10
        store.append([_record(10), _record(11)])
        # The live plane absorbed the new records incrementally.
        assert store.sketch_plane() is plane
        assert len(plane) == 12

    def test_append_invalidates_exact_caches(self):
        store = ColumnarStore([_record(i) for i in range(4)])
        cube_before = store.aggregate_cube(
            ("ndt",), (95.0, 95.0, 5.0, 5.0)
        )
        assert cube_before.counts.max() == 4
        store.append([_record(4)])
        cube_after = store.aggregate_cube(
            ("ndt",), (95.0, 95.0, 5.0, 5.0)
        )
        assert cube_after.counts.max() == 5

    def test_append_does_not_mutate_adopted_list(self):
        adopted = [_record(0), _record(1)]
        store = ColumnarStore(adopted)
        store.append([_record(2)])
        assert len(adopted) == 2
        assert len(store.records()) == 3

    def test_sketch_plane_delta_is_sticky(self):
        store = ColumnarStore([_record(0)])
        store.sketch_plane(delta=50)
        assert store.sketch_plane(delta=50).delta == 50
        assert store.sketch_plane().delta == 50  # default = existing
        with pytest.raises(ValueError, match="delta"):
            store.sketch_plane(delta=200)

    def test_quantile_source_markers(self):
        assert ColumnarStore.QUANTILE_SOURCE == "exact"
        assert SketchPlane.QUANTILE_SOURCE == "sketch"


class TestOnDiskRoundTrip:
    def test_state_survives_a_cache_artifact_bit_identically(
        self, tmp_path
    ):
        """The dataset-cache contract: serialize → content-address →
        reload must reproduce the plane exactly, not approximately —
        ``score --from-cache`` promises the same numbers as scoring
        the plane that built the tile."""
        import hashlib

        import numpy as np

        plane = sketch_records(
            [_record(i, region=r) for i in range(200) for r in ("a", "b")]
        )
        payload = (
            json.dumps(
                plane.to_state(), sort_keys=True, separators=(",", ":")
            )
            + "\n"
        ).encode("utf-8")
        artifact = tmp_path / (
            hashlib.sha256(payload).hexdigest() + ".json"
        )
        artifact.write_bytes(payload)

        raw = artifact.read_bytes()
        assert hashlib.sha256(raw).hexdigest() == artifact.stem
        rebuilt = SketchPlane.from_state(json.loads(raw.decode("utf-8")))

        assert len(rebuilt) == len(plane)
        assert rebuilt.regions() == plane.regions()
        percentiles = (95.0, 95.0, 95.0, 95.0)
        original = plane.aggregate_cube(("ndt",), percentiles)
        recovered = rebuilt.aggregate_cube(("ndt",), percentiles)
        np.testing.assert_array_equal(
            recovered.aggregates, original.aggregates
        )
        np.testing.assert_array_equal(recovered.counts, original.counts)
        assert recovered.cells == original.cells

    def test_reserialized_state_is_byte_stable(self):
        """Same plane, serialized twice, gives identical bytes — the
        property that makes cache tiles content-addressable."""
        records = [_record(i) for i in range(60)]
        one = sketch_records(records).to_state()
        two = sketch_records(list(records)).to_state()
        dump = lambda s: json.dumps(s, sort_keys=True, separators=(",", ":"))  # noqa: E731
        assert dump(one) == dump(two)
