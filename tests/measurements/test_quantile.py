"""Unit tests for repro.measurements.quantile (exact + P²)."""

import numpy as np
import pytest

from repro.core.exceptions import AggregationError
from repro.measurements.quantile import ExactQuantiles, P2Quantile


class TestExactQuantiles:
    def test_add_and_query(self):
        estimator = ExactQuantiles()
        estimator.extend([1.0, 2.0, 3.0, 4.0])
        estimator.add(5.0)
        assert len(estimator) == 5
        assert estimator.quantile(50.0) == 3.0

    def test_matches_numpy(self):
        values = list(np.random.default_rng(0).normal(size=200))
        estimator = ExactQuantiles(values)
        for percentile in (5.0, 50.0, 95.0):
            assert estimator.quantile(percentile) == pytest.approx(
                float(np.percentile(values, percentile))
            )

    def test_empty_raises(self):
        with pytest.raises(AggregationError):
            ExactQuantiles().quantile(50.0)


class TestP2Quantile:
    def test_exact_below_five_observations(self):
        estimator = P2Quantile(0.5)
        for value in (5.0, 1.0, 3.0):
            estimator.add(value)
        assert estimator.value() == pytest.approx(3.0)

    def test_empty_raises(self):
        with pytest.raises(AggregationError):
            P2Quantile(0.5).value()

    def test_value_or_none(self):
        estimator = P2Quantile(0.5)
        assert estimator.value_or_none() is None
        estimator.add(1.0)
        assert estimator.value_or_none() == 1.0

    def test_fraction_validation(self):
        with pytest.raises(AggregationError):
            P2Quantile(0.0)
        with pytest.raises(AggregationError):
            P2Quantile(1.0)

    def test_count_tracked(self):
        estimator = P2Quantile(0.9)
        for i in range(100):
            estimator.add(float(i))
        assert len(estimator) == 100

    @pytest.mark.parametrize("q", [0.05, 0.5, 0.95])
    def test_converges_on_uniform_stream(self, q):
        rng = np.random.default_rng(42)
        values = rng.uniform(0.0, 100.0, size=5000)
        estimator = P2Quantile(q)
        for value in values:
            estimator.add(float(value))
        exact = float(np.percentile(values, q * 100.0))
        assert estimator.value() == pytest.approx(exact, abs=2.5)

    @pytest.mark.parametrize("q", [0.5, 0.95])
    def test_converges_on_lognormal_stream(self, q):
        # Heavy-tailed streams are the realistic case (throughputs).
        rng = np.random.default_rng(7)
        values = rng.lognormal(mean=3.0, sigma=0.6, size=8000)
        estimator = P2Quantile(q)
        for value in values:
            estimator.add(float(value))
        exact = float(np.percentile(values, q * 100.0))
        assert estimator.value() == pytest.approx(exact, rel=0.08)

    def test_monotone_markers_on_sorted_input(self):
        estimator = P2Quantile(0.95)
        for i in range(1000):
            estimator.add(float(i))
        assert 900.0 <= estimator.value() <= 1000.0

    def test_constant_stream(self):
        estimator = P2Quantile(0.95)
        for _ in range(50):
            estimator.add(7.0)
        assert estimator.value() == pytest.approx(7.0)


class TestExactQuantilesCache:
    """The memoized plane must invalidate on every mutation."""

    def test_add_after_cached_query_refreshes(self):
        estimator = ExactQuantiles([1.0, 2.0, 3.0])
        assert estimator.quantile(100.0) == 3.0
        estimator.add(10.0)
        assert estimator.quantile(100.0) == 10.0

    def test_extend_after_cached_query_refreshes(self):
        estimator = ExactQuantiles([1.0, 2.0, 3.0])
        assert estimator.quantile(50.0) == 2.0
        estimator.extend([100.0, 200.0])
        assert estimator.quantile(100.0) == 200.0
        assert estimator.quantile(50.0) == 3.0

    def test_extend_accepts_numpy_array_wholesale(self):
        estimator = ExactQuantiles()
        estimator.extend(np.array([3.0, 1.0, 2.0]))
        assert len(estimator) == 3
        assert estimator.quantile(50.0) == 2.0

    def test_extend_accepts_generator(self):
        estimator = ExactQuantiles()
        estimator.extend(float(i) for i in range(5))
        assert len(estimator) == 5
        assert estimator.quantile(100.0) == 4.0

    def test_extend_with_2d_array_flattens(self):
        estimator = ExactQuantiles()
        estimator.extend(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert len(estimator) == 4
        assert estimator.quantile(100.0) == 4.0

    def test_extend_empty_is_noop(self):
        estimator = ExactQuantiles([5.0])
        assert estimator.quantile(50.0) == 5.0
        estimator.extend([])
        assert len(estimator) == 1
        assert estimator.quantile(50.0) == 5.0

    def test_repeated_queries_hit_memo(self):
        estimator = ExactQuantiles([1.0, 2.0, 3.0, 4.0])
        first = estimator.quantile(95.0)
        assert estimator.quantile(95.0) == first
        assert 95.0 in estimator._memo
