"""Unit and property tests for the merging t-digest."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exceptions import AggregationError
from repro.measurements.tdigest import TDigest


class TestBasics:
    def test_empty_raises(self):
        with pytest.raises(AggregationError, match="no values"):
            TDigest().quantile(50.0)

    def test_quantile_or_none(self):
        digest = TDigest()
        assert digest.quantile_or_none(50.0) is None
        digest.add(5.0)
        assert digest.quantile_or_none(50.0) == 5.0

    def test_single_value(self):
        digest = TDigest()
        digest.add(42.0)
        for percentile in (0.0, 50.0, 100.0):
            assert digest.quantile(percentile) == 42.0

    def test_extremes_are_exact(self):
        digest = TDigest()
        digest.extend(float(i) for i in range(1000))
        assert digest.quantile(0.0) == 0.0
        assert digest.quantile(100.0) == 999.0

    def test_count_tracked(self):
        digest = TDigest()
        digest.extend([1.0] * 250)
        assert len(digest) == 250

    def test_validation(self):
        with pytest.raises(AggregationError):
            TDigest(delta=5)
        digest = TDigest()
        digest.add(1.0)
        with pytest.raises(AggregationError):
            digest.quantile(101.0)
        with pytest.raises(AggregationError):
            digest.add(1.0, weight=0.0)

    def test_memory_bounded(self):
        digest = TDigest(delta=100)
        rng = np.random.default_rng(1)
        for value in rng.normal(size=50_000):
            digest.add(float(value))
        digest.quantile(50.0)  # forces a final compress
        assert digest.centroid_count < 600


class TestAccuracy:
    @pytest.mark.parametrize("percentile", [5.0, 50.0, 95.0, 99.0])
    def test_uniform_stream(self, percentile):
        rng = np.random.default_rng(3)
        values = rng.uniform(0.0, 100.0, size=20_000)
        digest = TDigest()
        digest.extend(map(float, values))
        exact = float(np.percentile(values, percentile))
        assert digest.quantile(percentile) == pytest.approx(exact, abs=1.5)

    @pytest.mark.parametrize("percentile", [50.0, 95.0])
    def test_lognormal_stream(self, percentile):
        rng = np.random.default_rng(4)
        values = rng.lognormal(3.0, 0.7, size=20_000)
        digest = TDigest()
        digest.extend(map(float, values))
        exact = float(np.percentile(values, percentile))
        assert digest.quantile(percentile) == pytest.approx(exact, rel=0.05)

    def test_tail_accuracy_beats_midrange_resolution(self):
        # The q(1-q) bound keeps tail centroids tiny: p99 error (rel to
        # the distribution's scale) stays small even for heavy tails.
        rng = np.random.default_rng(5)
        values = rng.pareto(3.0, size=30_000)
        digest = TDigest()
        digest.extend(map(float, values))
        exact = float(np.percentile(values, 99.0))
        assert digest.quantile(99.0) == pytest.approx(exact, rel=0.1)


class TestMerge:
    def test_merge_matches_single_digest(self):
        rng = np.random.default_rng(6)
        values = rng.normal(50.0, 10.0, size=20_000)
        whole = TDigest()
        whole.extend(map(float, values))
        shards = [TDigest() for _ in range(4)]
        for i, value in enumerate(values):
            shards[i % 4].add(float(value))
        merged = shards[0]
        for shard in shards[1:]:
            merged = merged.merge(shard)
        assert len(merged) == len(whole)
        for percentile in (5.0, 50.0, 95.0):
            assert merged.quantile(percentile) == pytest.approx(
                whole.quantile(percentile), abs=1.0
            )

    def test_merge_does_not_mutate_inputs(self):
        a, b = TDigest(), TDigest()
        a.extend([1.0, 2.0, 3.0])
        b.extend([10.0, 20.0])
        a.merge(b)
        assert len(a) == 3
        assert len(b) == 2

    def test_merge_preserves_extremes(self):
        a, b = TDigest(), TDigest()
        a.extend(range(100))
        b.extend(range(1000, 1100))
        merged = a.merge(b)
        assert merged.quantile(0.0) == 0.0
        assert merged.quantile(100.0) == 1099.0

    def test_merge_weighted_count_is_exact(self):
        # Regression: rebuilding through add() re-accumulated weights
        # in a different float order, so int(_count) could truncate to
        # one more (or fewer) than the sum of the inputs' lengths.
        a, b = TDigest(), TDigest()
        rng = np.random.default_rng(11)
        for value, weight in zip(rng.normal(size=80), rng.uniform(0.1, 2.0, 80)):
            a.add(float(value), float(weight))
        for value, weight in zip(rng.normal(size=60), rng.uniform(0.1, 2.0, 60)):
            b.add(float(value), float(weight))
        merged = a.merge(b)
        assert merged.to_state()["count"] == (
            a.to_state()["count"] + b.to_state()["count"]
        )


class TestConcurrency:
    def test_interleaved_add_and_quantile(self):
        # Regression: quantile() used to compress without a lock, so a
        # reader racing a writer could corrupt the centroid list (lost
        # buffered values, duplicated centroids). Hammer one digest
        # from a writer and a reader thread and check the final count
        # and every interleaved estimate stay sane.
        digest = TDigest(delta=20)  # small delta: compress constantly
        n_values = 20_000
        errors = []
        done = threading.Event()

        def writer():
            try:
                for i in range(n_values):
                    digest.add(float(i % 1000))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                done.set()

        def reader():
            try:
                while not done.is_set():
                    estimate = digest.quantile_or_none(95.0)
                    if estimate is not None and not 0.0 <= estimate <= 999.0:
                        errors.append(
                            AssertionError(f"estimate out of range: {estimate}")
                        )
                        return
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer), threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors[0]
        assert len(digest) == n_values
        assert digest.quantile(0.0) == 0.0
        assert digest.quantile(100.0) == 999.0


@settings(max_examples=50, deadline=None)
@given(
    left=st.lists(st.floats(-1e6, 1e6, allow_nan=False), max_size=300),
    right=st.lists(st.floats(-1e6, 1e6, allow_nan=False), max_size=300),
    left_delta=st.sampled_from([10, 25, 100, 400]),
    right_delta=st.sampled_from([10, 25, 100, 400]),
)
def test_property_merge_count_and_extremes(left, right, left_delta, right_delta):
    """merged len == sum of inputs; quantile(0)/quantile(100) are the
    true observed extremes — across delta mixes and empty-side merges."""
    a = TDigest(delta=left_delta)
    a.extend(left)
    b = TDigest(delta=right_delta)
    b.extend(right)
    merged = a.merge(b)
    assert len(merged) == len(left) + len(right)
    combined = left + right
    if combined:
        assert merged.quantile(0.0) == min(combined)
        assert merged.quantile(100.0) == max(combined)
    else:
        with pytest.raises(AggregationError, match="no values"):
            merged.quantile(50.0)


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(st.floats(-1e6, 1e6, allow_nan=False), max_size=600),
    delta=st.sampled_from([10, 50, 100]),
)
def test_property_state_roundtrip_count_and_extremes(values, delta):
    digest = TDigest(delta=delta)
    digest.extend(values)
    restored = TDigest.from_state(digest.to_state())
    assert len(restored) == len(values)
    assert restored.delta == delta
    if values:
        assert restored.quantile(0.0) == min(values)
        assert restored.quantile(100.0) == max(values)


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(
        st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=500
    ),
    percentile=st.floats(0.0, 100.0),
)
def test_property_estimate_within_range(values, percentile):
    digest = TDigest()
    digest.extend(values)
    estimate = digest.quantile(percentile)
    assert min(values) <= estimate <= max(values)


@settings(max_examples=30, deadline=None)
@given(values=st.lists(st.floats(0.0, 1000.0), min_size=50, max_size=500))
def test_property_median_reasonable(values):
    digest = TDigest()
    digest.extend(values)
    spread = max(values) - min(values)
    exact = float(np.percentile(values, 50.0))
    assert abs(digest.quantile(50.0) - exact) <= max(0.2 * spread, 1e-9)
