"""Unit tests for repro.measurements.columnar (the scoring fast path)."""

import numpy as np
import pytest

from repro.core.metrics import Metric
from repro.measurements.collection import MeasurementSet
from repro.measurements.columnar import ColumnarStore
from repro.measurements.record import Measurement


def rec(region="r1", source="ndt", ts=0.0, isp="ispA", **metrics):
    metrics.setdefault("download_mbps", 50.0)
    return Measurement(
        region=region, source=source, timestamp=ts, isp=isp, **metrics
    )


@pytest.fixture()
def records():
    return [
        rec(region="r1", source="ndt", ts=10.0, download_mbps=10.0,
            latency_ms=30.0),
        rec(region="r1", source="ookla", ts=20.0, download_mbps=20.0),
        rec(region="r2", source="ndt", ts=30.0, download_mbps=30.0,
            isp="ispB"),
        rec(region="r2", source="cloudflare", ts=40.0, download_mbps=40.0,
            latency_ms=25.0),
        rec(region="r1", source="ndt", ts=50.0, download_mbps=15.0,
            upload_mbps=5.0),
    ]


@pytest.fixture()
def store(records):
    return ColumnarStore(records)


class TestConstruction:
    def test_len_and_repr(self, store):
        assert len(store) == 5
        assert "5 records" in repr(store)

    def test_from_measurements_accepts_a_set(self, records):
        store = ColumnarStore.from_measurements(MeasurementSet(records))
        assert len(store) == 5

    def test_records_round_trip(self, store, records):
        assert store.records() == tuple(records)

    def test_empty_store(self):
        store = ColumnarStore()
        assert len(store) == 0
        assert store.regions() == ()
        assert store.quantile(Metric.DOWNLOAD, 95.0) is None
        assert store.sample_count(Metric.DOWNLOAD) == 0


class TestColumns:
    def test_column_has_nan_for_missing(self, store):
        latency = store.column(Metric.LATENCY)
        assert latency.shape == (5,)
        assert np.isnan(latency[1])
        assert latency[0] == 30.0

    def test_column_is_cached(self, store):
        assert store.column(Metric.DOWNLOAD) is store.column(Metric.DOWNLOAD)


class TestIndexes:
    def test_axis_listings(self, store):
        assert store.regions() == ("r1", "r2")
        assert store.sources() == ("cloudflare", "ndt", "ookla")
        assert store.isps() == ("ispA", "ispB")

    def test_region_index_rows(self, store):
        index = store.index("region")
        assert index["r1"].tolist() == [0, 1, 4]
        assert index["r2"].tolist() == [2, 3]

    def test_unknown_axis_rejected(self, store):
        with pytest.raises(KeyError):
            store.index("city")


class TestViews:
    def test_whole_store_view(self, store):
        view = store.view()
        assert len(view) == 5
        assert view.sample_count(Metric.DOWNLOAD) == 5

    def test_single_axis_view_is_cached(self, store):
        assert store.view(region="r1") is store.view(region="r1")

    def test_view_values_in_record_order(self, store):
        view = store.view(region="r1")
        values = view.values(Metric.DOWNLOAD)
        assert isinstance(values, np.ndarray)
        assert values.tolist() == [10.0, 20.0, 15.0]
        assert view.value_list(Metric.DOWNLOAD) == [10.0, 20.0, 15.0]

    def test_intersection_view(self, store):
        view = store.view(region="r1", source="ndt")
        assert len(view) == 2
        assert view.value_list(Metric.DOWNLOAD) == [10.0, 15.0]

    def test_missing_group_is_empty(self, store):
        view = store.view(region="nowhere")
        assert len(view) == 0
        assert view.quantile(Metric.DOWNLOAD, 95.0) is None

    def test_quantile_none_when_metric_unobserved(self, store):
        assert store.view(region="r2").quantile(Metric.PACKET_LOSS, 95.0) is None

    def test_quantile_memoized(self, store):
        view = store.view(region="r1")
        first = view.quantile(Metric.DOWNLOAD, 95.0)
        assert view.quantile(Metric.DOWNLOAD, 95.0) == first
        assert (Metric.DOWNLOAD, 95.0) in view._quantiles


class TestEqualityWithRowPlane:
    """Columnar answers must be bit-identical to MeasurementSet's."""

    @pytest.mark.parametrize("percentile", [0.0, 5.0, 50.0, 95.0, 100.0])
    def test_group_quantiles_match(self, records, percentile):
        row_set = MeasurementSet(records)
        store = ColumnarStore(records)
        for region in row_set.regions():
            row_sources = row_set.for_region(region).group_by_source()
            col_sources = store.sources_by_region()[region]
            assert set(row_sources) == set(col_sources)
            for source in row_sources:
                for metric in Metric:
                    expected = row_sources[source].quantile(
                        metric, percentile
                    )
                    actual = col_sources[source].quantile(metric, percentile)
                    assert actual == expected
                    assert col_sources[source].sample_count(metric) == (
                        row_sources[source].sample_count(metric)
                    )

    def test_whole_store_matches_set(self, records):
        row_set = MeasurementSet(records)
        store = ColumnarStore(records)
        for metric in Metric:
            assert store.quantile(metric, 95.0) == row_set.quantile(
                metric, 95.0
            )


class TestSourcesByRegion:
    def test_shape(self, store):
        grouped = store.sources_by_region()
        assert set(grouped) == {"r1", "r2"}
        assert set(grouped["r1"]) == {"ndt", "ookla"}
        assert set(grouped["r2"]) == {"ndt", "cloudflare"}

    def test_views_are_shared_across_calls(self, store):
        first = store.sources_by_region()["r1"]["ndt"]
        second = store.sources_by_region()["r1"]["ndt"]
        assert first is second

    def test_returned_mapping_is_a_copy(self, store):
        grouped = store.sources_by_region()
        grouped["r1"].clear()
        assert store.sources_by_region()["r1"]
