"""Unit tests for repro.measurements.windows."""

import pytest

from repro.measurements.collection import MeasurementSet
from repro.measurements.record import Measurement
from repro.measurements.windows import (
    by_hour_of_day,
    peak_split,
    time_buckets,
)

HOUR = 3600.0
DAY = 86400.0


def rec(ts):
    return Measurement(region="r", source="s", timestamp=ts, download_mbps=1.0)


@pytest.fixture()
def two_days():
    # One record every 6 hours across two days: 0h, 6h, 12h, 18h, ...
    return MeasurementSet(rec(i * 6 * HOUR) for i in range(8))


class TestTimeBuckets:
    def test_daily_buckets(self, two_days):
        buckets = time_buckets(two_days, DAY)
        assert len(buckets) == 2
        assert len(buckets[0].records) == 4
        assert len(buckets[1].records) == 4

    def test_boundary_record_lands_in_exactly_one_bucket(self):
        # A record exactly on an interior boundary belongs to the
        # window it *starts* (half-open interiors) ...
        records = MeasurementSet([rec(0.0), rec(DAY), rec(2 * DAY - 1.0)])
        buckets = time_buckets(records, DAY)
        assert [len(b.records) for b in buckets] == [1, 2]
        assert sum(len(b.records) for b in buckets) == len(records)

    def test_last_timestamp_on_boundary_has_no_trailing_bucket(self):
        # ... and a last timestamp exactly on a boundary closes the
        # final window instead of spawning a spurious trailing bucket
        # [last, last+width) holding only the edge record.
        records = MeasurementSet([rec(0.0), rec(DAY)])
        buckets = time_buckets(records, DAY)
        assert [len(b.records) for b in buckets] == [2]
        assert buckets[-1].start < DAY <= buckets[-1].end
        assert sum(len(b.records) for b in buckets) == len(records)

    def test_empty_interior_windows_preserved(self):
        records = MeasurementSet([rec(0.0), rec(3 * DAY)])
        buckets = time_buckets(records, DAY)
        assert [len(b.records) for b in buckets] == [1, 0, 1]

    def test_every_record_in_exactly_one_bucket(self):
        # Records on and off boundaries, including the span's edges.
        stamps = [0.0, 0.5 * DAY, DAY, 1.25 * DAY, 2 * DAY]
        records = MeasurementSet(rec(ts) for ts in stamps)
        buckets = time_buckets(records, DAY)
        assert [len(b.records) for b in buckets] == [2, 3]
        assert sum(len(b.records) for b in buckets) == len(records)
        for ts in stamps:
            holders = [
                b
                for b in buckets
                if any(r.timestamp == ts for r in b.records)
            ]
            assert len(holders) == 1, ts

    def test_explicit_start(self, two_days):
        buckets = time_buckets(two_days, DAY, start=-DAY)
        assert len(buckets[0].records) == 0

    def test_midpoint(self):
        bucket = time_buckets(MeasurementSet([rec(0.0)]), DAY)[0]
        assert bucket.midpoint == DAY / 2.0

    def test_validation(self, two_days):
        with pytest.raises(ValueError):
            time_buckets(two_days, 0.0)
        with pytest.raises(ValueError):
            time_buckets(MeasurementSet(), DAY)


class TestByHourOfDay:
    def test_all_bins_present(self, two_days):
        bins = by_hour_of_day(two_days)
        assert len(bins) == 24
        assert set(bins) == {float(h) for h in range(24)}

    def test_records_fold_across_days(self, two_days):
        bins = by_hour_of_day(two_days)
        assert len(bins[0.0]) == 2  # midnight of both days
        assert len(bins[6.0]) == 2
        assert len(bins[1.0]) == 0

    def test_coarser_bins(self, two_days):
        bins = by_hour_of_day(two_days, bin_hours=6.0)
        assert set(bins) == {0.0, 6.0, 12.0, 18.0}
        assert all(len(records) == 2 for records in bins.values())

    def test_bin_width_must_divide_day(self, two_days):
        with pytest.raises(ValueError):
            by_hour_of_day(two_days, bin_hours=5.0)


class TestPeakSplit:
    def test_default_window(self):
        records = MeasurementSet(
            [rec(17.9 * HOUR), rec(18.0 * HOUR), rec(20.0 * HOUR),
             rec(22.9 * HOUR), rec(23.0 * HOUR)]
        )
        peak, off_peak = peak_split(records)
        assert len(peak) == 3
        assert len(off_peak) == 2

    def test_partition_is_complete(self, two_days):
        peak, off_peak = peak_split(two_days)
        assert len(peak) + len(off_peak) == len(two_days)

    def test_custom_window(self):
        records = MeasurementSet([rec(9.0 * HOUR), rec(14.0 * HOUR)])
        peak, off_peak = peak_split(records, peak_start=8.0, peak_end=12.0)
        assert len(peak) == 1

    def test_validation(self, two_days):
        with pytest.raises(ValueError):
            peak_split(two_days, peak_start=23.0, peak_end=2.0)
