"""Unit tests for repro.measurements.adapters (real dataset shapes)."""

import pytest

from repro.core.exceptions import SchemaError
from repro.core.metrics import Metric
from repro.measurements.adapters import (
    cloudflare_row_to_measurement,
    flatten_nested,
    ingest_cloudflare,
    ingest_ndt,
    ndt_row_to_measurement,
    ookla_tiles_to_aggregate,
)


def ndt_row(**overrides):
    row = {
        "direction": "download",
        "a.MeanThroughputMbps": 87.3,
        "a.MinRTT": 12.4,
        "a.LossRate": 0.004,
        "client.Geo.Region": "metroland",
        "client.Network.ASName": "ExampleNet",
        "test_time": 1700000000.0,
        "id": "ndt-xyz",
    }
    row.update(overrides)
    return row


def cloudflare_row(**overrides):
    row = {
        "region": "metroland",
        "timestamp": 1700000100.0,
        "download_mbps": 212.0,
        "upload_mbps": 24.0,
        "latency_ms": 18.0,
        "packet_loss_pct": 0.4,
        "asn_name": "ExampleNet",
    }
    row.update(overrides)
    return row


class TestNdtAdapter:
    def test_download_row(self):
        record = ndt_row_to_measurement(ndt_row())
        assert record.source == "ndt"
        assert record.region == "metroland"
        assert record.download_mbps == 87.3
        assert record.upload_mbps is None
        assert record.latency_ms == 12.4
        assert record.packet_loss == 0.004
        assert record.isp == "ExampleNet"
        assert record.meta == {"uuid": "ndt-xyz"}

    def test_upload_row(self):
        record = ndt_row_to_measurement(ndt_row(direction="upload"))
        assert record.upload_mbps == 87.3
        assert record.download_mbps is None

    def test_unknown_direction(self):
        with pytest.raises(SchemaError, match="direction"):
            ndt_row_to_measurement(ndt_row(direction="sideways"))

    def test_missing_field_named(self):
        row = ndt_row()
        del row["a.MinRTT"]
        with pytest.raises(SchemaError, match="a.MinRTT"):
            ndt_row_to_measurement(row)

    def test_loss_rate_clamped(self):
        record = ndt_row_to_measurement(ndt_row(**{"a.LossRate": 1.7}))
        assert record.packet_loss == 1.0

    def test_non_numeric_field(self):
        with pytest.raises(SchemaError, match="not numeric"):
            ndt_row_to_measurement(ndt_row(**{"a.MinRTT": "fast"}))

    def test_bulk_ingest(self):
        records = ingest_ndt([ndt_row(), ndt_row(direction="upload")])
        assert len(records) == 2
        assert records.sources() == ("ndt",)


class TestCloudflareAdapter:
    def test_row_conversion(self):
        record = cloudflare_row_to_measurement(cloudflare_row())
        assert record.source == "cloudflare"
        assert record.packet_loss == pytest.approx(0.004)
        assert record.download_mbps == 212.0

    def test_percent_bounds_checked(self):
        with pytest.raises(SchemaError, match="out of range"):
            cloudflare_row_to_measurement(
                cloudflare_row(packet_loss_pct=250.0)
            )

    def test_bulk_ingest(self):
        records = ingest_cloudflare([cloudflare_row(), cloudflare_row()])
        assert len(records) == 2


class TestOoklaTiles:
    def tiles(self):
        return [
            {"avg_d_kbps": 100_000, "avg_u_kbps": 10_000, "avg_lat_ms": 15,
             "tests": 10},
            {"avg_d_kbps": 300_000, "avg_u_kbps": 30_000, "avg_lat_ms": 10,
             "tests": 30},
            {"avg_d_kbps": 20_000, "avg_u_kbps": 2_000, "avg_lat_ms": 40,
             "tests": 5},
        ]

    def test_units_converted_to_mbps(self):
        table = ookla_tiles_to_aggregate(self.tiles(), region="metroland")
        assert table.quantile(Metric.DOWNLOAD, 50.0) == pytest.approx(300.0)
        assert table.quantile(Metric.UPLOAD, 95.0) <= 30.0

    def test_test_count_weighting(self):
        # 30 of 45 tests sit on the 300 Mb/s tile: the median is there.
        table = ookla_tiles_to_aggregate(self.tiles(), region="metroland")
        assert table.sample_count(Metric.DOWNLOAD) == 45
        assert table.quantile(Metric.DOWNLOAD, 50.0) == pytest.approx(300.0)

    def test_no_loss_published(self):
        table = ookla_tiles_to_aggregate(self.tiles(), region="metroland")
        assert table.quantile(Metric.PACKET_LOSS, 95.0) is None

    def test_scoreable_alongside_raw_sources(self, config):
        from repro.core import score_region
        from repro.core.aggregation import SequenceSource

        table = ookla_tiles_to_aggregate(self.tiles(), region="metroland")
        raw = SequenceSource(
            download_mbps=[200.0] * 10,
            upload_mbps=[50.0] * 10,
            latency_ms=[12.0] * 10,
            packet_loss=[0.001] * 10,
        )
        breakdown = score_region(
            {"ookla": table, "ndt": raw, "cloudflare": raw}, config
        )
        assert 0.0 <= breakdown.value <= 1.0

    def test_validation(self):
        with pytest.raises(SchemaError, match="no tile rows"):
            ookla_tiles_to_aggregate([], region="x")
        with pytest.raises(SchemaError, match="non-positive tests"):
            ookla_tiles_to_aggregate(
                [{"avg_d_kbps": 1, "avg_u_kbps": 1, "avg_lat_ms": 1,
                  "tests": 0}],
                region="x",
            )


class TestFlatten:
    def test_nested_to_dotted(self):
        nested = {
            "a": {"MinRTT": 12, "LossRate": 0.01},
            "client": {"Geo": {"Region": "r"}},
            "id": "x",
        }
        flat = flatten_nested(nested)
        assert flat == {
            "a.MinRTT": 12,
            "a.LossRate": 0.01,
            "client.Geo.Region": "r",
            "id": "x",
        }

    def test_round_trip_into_adapter(self):
        nested = {
            "direction": "download",
            "a": {"MeanThroughputMbps": 50.0, "MinRTT": 9.0, "LossRate": 0.0},
            "client": {"Geo": {"Region": "r"}, "Network": {"ASName": "A"}},
            "test_time": 1.0,
        }
        record = ndt_row_to_measurement(flatten_nested(nested))
        assert record.region == "r"
        assert record.download_mbps == 50.0
