"""Unit tests for repro.measurements.record."""

import pytest

from repro.core.exceptions import SchemaError
from repro.core.metrics import Metric
from repro.measurements.record import Measurement


def make(**overrides):
    base = dict(
        region="r",
        source="ndt",
        timestamp=100.0,
        download_mbps=50.0,
        upload_mbps=10.0,
        latency_ms=20.0,
        packet_loss=0.01,
    )
    base.update(overrides)
    return Measurement(**base)


class TestValidation:
    def test_valid_record(self):
        record = make()
        assert record.region == "r"
        assert record.value(Metric.DOWNLOAD) == 50.0

    def test_region_required(self):
        with pytest.raises(SchemaError, match="region"):
            make(region="")

    def test_source_required(self):
        with pytest.raises(SchemaError, match="source"):
            make(source="")

    def test_at_least_one_metric_required(self):
        with pytest.raises(SchemaError, match="no metric"):
            make(
                download_mbps=None,
                upload_mbps=None,
                latency_ms=None,
                packet_loss=None,
            )

    def test_single_metric_is_enough(self):
        record = make(
            download_mbps=None,
            upload_mbps=None,
            latency_ms=30.0,
            packet_loss=None,
        )
        assert record.value(Metric.LATENCY) == 30.0
        assert record.value(Metric.DOWNLOAD) is None

    def test_negative_throughput_rejected(self):
        with pytest.raises(SchemaError, match="negative"):
            make(download_mbps=-1.0)
        with pytest.raises(SchemaError, match="negative"):
            make(upload_mbps=-0.5)

    def test_zero_throughput_allowed(self):
        assert make(download_mbps=0.0).download_mbps == 0.0

    def test_non_positive_latency_rejected(self):
        with pytest.raises(SchemaError, match="latency"):
            make(latency_ms=0.0)

    def test_loss_bounds(self):
        with pytest.raises(SchemaError, match="packet_loss"):
            make(packet_loss=1.5)
        with pytest.raises(SchemaError, match="packet_loss"):
            make(packet_loss=-0.01)
        assert make(packet_loss=0.0).packet_loss == 0.0
        assert make(packet_loss=1.0).packet_loss == 1.0


class TestSerialization:
    def test_round_trip(self):
        record = make(isp="CoaxCo", access_tech="cable", meta={"streams": 4})
        rebuilt = Measurement.from_dict(record.to_dict())
        assert rebuilt == record

    def test_none_metrics_omitted_from_dict(self):
        record = make(packet_loss=None)
        assert "packet_loss" not in record.to_dict()

    def test_empty_optional_fields_omitted(self):
        doc = make().to_dict()
        assert "isp" not in doc
        assert "meta" not in doc

    def test_from_dict_missing_required_field(self):
        doc = make().to_dict()
        del doc["region"]
        with pytest.raises(SchemaError, match="malformed"):
            Measurement.from_dict(doc)

    def test_from_dict_bad_types(self):
        doc = make().to_dict()
        doc["timestamp"] = "not-a-number"
        with pytest.raises(SchemaError):
            Measurement.from_dict(doc)

    def test_from_dict_validates_content(self):
        doc = make().to_dict()
        doc["packet_loss"] = 7.0
        with pytest.raises(SchemaError):
            Measurement.from_dict(doc)

    def test_from_dict_coerces_numeric_strings(self):
        doc = make().to_dict()
        doc["download_mbps"] = "55.5"
        assert Measurement.from_dict(doc).download_mbps == 55.5


class TestValueAccess:
    @pytest.mark.parametrize(
        "metric,expected",
        [
            (Metric.DOWNLOAD, 50.0),
            (Metric.UPLOAD, 10.0),
            (Metric.LATENCY, 20.0),
            (Metric.PACKET_LOSS, 0.01),
        ],
    )
    def test_value_maps_metrics_to_fields(self, metric, expected):
        assert make().value(metric) == expected

    def test_records_are_frozen(self):
        with pytest.raises(AttributeError):
            make().region = "other"

    def test_records_are_hashable_equatable(self):
        assert make() == make()
        assert make() != make(download_mbps=51.0)
