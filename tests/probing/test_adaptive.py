"""Unit tests for repro.probing.adaptive."""

import pytest

from repro.netsim.population import region_preset
from repro.probing.adaptive import AdaptiveAllocator, uniform_campaign
from repro.probing.backends import SimulatedBackend

REGIONS = ("metro-fiber", "suburban-cable", "rural-dsl")


@pytest.fixture()
def backend():
    return SimulatedBackend(
        profiles=[region_preset(name) for name in REGIONS],
        seed=5,
        subscribers=25,
    )


def make_allocator(backend, config, **kwargs):
    defaults = dict(
        seed=5, pilot_per_region=45, bootstrap_replicates=30, window_days=7.0
    )
    defaults.update(kwargs)
    return AdaptiveAllocator(backend, config, **defaults)


class TestProportionalAllocation:
    def test_budget_exactly_spent(self):
        allocation = AdaptiveAllocator._proportional(
            {"a": 0.3, "b": 0.1, "c": 0.0}, budget=100, minimum=5
        )
        assert sum(allocation.values()) == 100

    def test_wider_ci_gets_more(self):
        allocation = AdaptiveAllocator._proportional(
            {"a": 0.4, "b": 0.1}, budget=100, minimum=5
        )
        assert allocation["a"] > allocation["b"]

    def test_floor_respected(self):
        allocation = AdaptiveAllocator._proportional(
            {"a": 1.0, "b": 0.0}, budget=50, minimum=8
        )
        assert allocation["b"] >= 8

    def test_zero_widths_fall_back_to_floor_sharing(self):
        allocation = AdaptiveAllocator._proportional(
            {"a": 0.0, "b": 0.0}, budget=20, minimum=3
        )
        assert allocation == {"a": 3, "b": 3}

    def test_budget_below_floor_never_overspends(self):
        allocation = AdaptiveAllocator._proportional(
            {"a": 0.5, "b": 0.1, "c": 0.3}, budget=7, minimum=5
        )
        assert sum(allocation.values()) == 7
        assert all(count >= 0 for count in allocation.values())


class TestAdaptiveRun:
    def test_budget_and_rounds_accounting(self, backend, config):
        allocator = make_allocator(backend, config)
        result = allocator.run(total_budget=240, rounds=3)
        assert len(result.records) == 240
        assert len(result.rounds) == 3
        assert result.rounds[0].allocation == {r: 45 for r in REGIONS}

    def test_all_regions_keep_receiving_probes(self, backend, config):
        result = make_allocator(backend, config).run(
            total_budget=300, rounds=3, min_per_region_per_round=6
        )
        counts = result.tests_per_region()
        assert set(counts) == set(REGIONS)
        assert all(count >= 45 + 2 * 6 for count in counts.values())

    def test_deterministic(self, config):
        def run():
            backend = SimulatedBackend(
                profiles=[region_preset(name) for name in REGIONS],
                seed=5,
                subscribers=25,
            )
            return make_allocator(backend, config).run(
                total_budget=200, rounds=2
            )

        a, b = run(), run()
        assert list(a.records) == list(b.records)
        assert a.final_ci_widths == b.final_ci_widths

    def test_final_widths_cover_all_regions(self, backend, config):
        result = make_allocator(backend, config).run(total_budget=200, rounds=2)
        assert set(result.final_ci_widths) == set(REGIONS)
        assert result.worst_ci_width == max(result.final_ci_widths.values())

    def test_budget_validation(self, backend, config):
        allocator = make_allocator(backend, config)
        with pytest.raises(ValueError, match="pilot requirement"):
            allocator.run(total_budget=10, rounds=2)
        with pytest.raises(ValueError, match="rounds"):
            allocator.run(total_budget=500, rounds=0)

    def test_pilot_must_cover_clients(self, backend, config):
        with pytest.raises(ValueError, match="every client"):
            make_allocator(backend, config, pilot_per_region=2)

    def test_single_round_is_pure_pilot(self, backend, config):
        result = make_allocator(backend, config).run(
            total_budget=200, rounds=1
        )
        assert len(result.rounds) == 1
        assert len(result.records) == 45 * len(REGIONS)


class TestUniformComparator:
    def test_even_split(self, backend, config):
        result = uniform_campaign(
            backend, config, total_budget=150, seed=5,
            bootstrap_replicates=30,
        )
        counts = result.tests_per_region()
        assert all(count == 50 for count in counts.values())


class TestSketchRounds:
    def test_sketch_mode_records_incremental_round_scores(
        self, backend, config
    ):
        result = make_allocator(
            backend, config, quantiles="sketch"
        ).run(total_budget=250, rounds=2)
        assert len(result.rounds) >= 1
        for audit in result.rounds:
            # Every region pilot-probed in round 0 is scoreable by then.
            assert set(audit.scores) == set(REGIONS)
            for score in audit.scores.values():
                assert 0.0 <= score <= 1.0
        # Later rounds see strictly more data folded into the plane;
        # the final round's scores come from every probe so far.
        final = result.rounds[-1].scores
        assert all(isinstance(v, float) for v in final.values())

    def test_exact_mode_skips_round_scores(self, backend, config):
        result = make_allocator(backend, config).run(
            total_budget=250, rounds=2
        )
        assert all(audit.scores == {} for audit in result.rounds)

    def test_sketch_mode_probe_records_match_exact_mode(self, config):
        def run(quantiles):
            backend = SimulatedBackend(
                profiles=[region_preset(name) for name in REGIONS],
                seed=5,
                subscribers=25,
            )
            return make_allocator(
                backend, config, quantiles=quantiles
            ).run(total_budget=250, rounds=2)

        exact, sketch = run("exact"), run("sketch")
        # The tee only observes; allocation and CI widths are untouched.
        assert sketch.tests_per_region() == exact.tests_per_region()
        assert sketch.final_ci_widths == exact.final_ci_widths

    def test_unknown_quantiles_rejected(self, backend, config):
        with pytest.raises(ValueError, match="unknown quantile source"):
            make_allocator(backend, config, quantiles="p2")
