"""Unit tests for repro.probing.backends."""

import pytest

from repro.core.exceptions import BackendError
from repro.netsim.clients import NDTClient
from repro.netsim.population import region_preset
from repro.probing.backends import ProbeRequest, SimulatedBackend


@pytest.fixture()
def backend():
    return SimulatedBackend(
        profiles=[region_preset("metro-fiber"), region_preset("rural-dsl")],
        seed=1,
        subscribers=20,
    )


class TestConstruction:
    def test_regions_and_clients(self, backend):
        assert backend.regions() == ("metro-fiber", "rural-dsl")
        assert backend.clients() == ("cloudflare", "ndt", "ookla")

    def test_needs_regions(self):
        with pytest.raises(ValueError, match="at least one region"):
            SimulatedBackend(profiles=[], seed=1)

    def test_failure_rate_validated(self):
        with pytest.raises(ValueError, match="failure_rate"):
            SimulatedBackend(
                profiles=[region_preset("metro-fiber")], seed=1, failure_rate=1.0
            )

    def test_custom_client_subset(self):
        backend = SimulatedBackend(
            profiles=[region_preset("metro-fiber")],
            seed=1,
            clients=[NDTClient()],
        )
        assert backend.clients() == ("ndt",)


class TestRun:
    def test_successful_probe(self, backend):
        record = backend.run(
            ProbeRequest(client="ndt", region="metro-fiber", timestamp=1000.0)
        )
        assert record.source == "ndt"
        assert record.region == "metro-fiber"
        assert backend.probes_run == 1

    def test_unknown_region(self, backend):
        with pytest.raises(BackendError, match="unknown region"):
            backend.run(ProbeRequest(client="ndt", region="oz", timestamp=0.0))

    def test_unknown_client(self, backend):
        with pytest.raises(BackendError, match="unknown client"):
            backend.run(
                ProbeRequest(client="mystery", region="metro-fiber", timestamp=0.0)
            )

    def test_deterministic_across_instances(self):
        def collect():
            backend = SimulatedBackend(
                profiles=[region_preset("metro-fiber")], seed=5, subscribers=10
            )
            request = ProbeRequest(
                client="ookla", region="metro-fiber", timestamp=100.0
            )
            return [backend.run(request) for _ in range(5)]

        assert collect() == collect()

    def test_failure_injection_rate(self):
        backend = SimulatedBackend(
            profiles=[region_preset("metro-fiber")],
            seed=2,
            subscribers=10,
            failure_rate=0.3,
        )
        request = ProbeRequest(client="ndt", region="metro-fiber", timestamp=0.0)
        failures = 0
        for _ in range(300):
            try:
                backend.run(request)
            except BackendError:
                failures += 1
        assert failures == pytest.approx(90, abs=30)
        assert backend.probes_failed == failures
        assert backend.probes_run == 300
