"""Unit tests for repro.probing.scheduler."""

import pytest

from repro.netsim.congestion import hour_of_day
from repro.probing.scheduler import (
    DiurnalSchedule,
    PoissonSchedule,
    UniformSchedule,
)

REGIONS = ("r1", "r2")
CLIENTS = ("ndt", "ookla")


class TestUniformSchedule:
    def make(self, **kwargs):
        defaults = dict(
            regions=REGIONS, clients=CLIENTS, tests_per_pair=50, days=2.0, seed=1
        )
        defaults.update(kwargs)
        return UniformSchedule(**defaults)

    def test_count(self):
        assert len(list(self.make())) == 200  # 2 regions x 2 clients x 50

    def test_all_pairs_covered(self):
        requests = list(self.make())
        pairs = {(r.region, r.client) for r in requests}
        assert pairs == {(r, c) for r in REGIONS for c in CLIENTS}

    def test_window_respected(self):
        for request in self.make(days=2.0):
            assert 0.0 <= request.timestamp < 2.0 * 86400.0

    def test_stratification_spreads_evenly(self):
        requests = [r for r in self.make(tests_per_pair=96) if r.region == "r1"
                    and r.client == "ndt"]
        first_day = sum(1 for r in requests if r.timestamp < 86400.0)
        assert first_day == 48  # exactly half in each day

    def test_deterministic(self):
        assert list(self.make()) == list(self.make())

    def test_validation(self):
        with pytest.raises(ValueError):
            list(self.make(days=0.0))
        with pytest.raises(ValueError, match="region"):
            list(UniformSchedule(regions=(), clients=CLIENTS))
        with pytest.raises(ValueError, match="client"):
            list(UniformSchedule(regions=REGIONS, clients=()))


class TestDiurnalSchedule:
    def make(self, **kwargs):
        defaults = dict(
            regions=REGIONS,
            clients=CLIENTS,
            tests_per_pair=200,
            days=7.0,
            evening_bias=0.8,
            seed=3,
        )
        defaults.update(kwargs)
        return DiurnalSchedule(**defaults)

    def test_count(self):
        assert len(list(self.make())) == 800

    def test_evening_bias(self):
        requests = list(self.make(evening_bias=0.9))
        evening = sum(
            1 for r in requests if 18.0 <= hour_of_day(r.timestamp) <= 23.0
        )
        assert evening / len(requests) > 0.85

    def test_no_bias_is_roughly_uniform(self):
        requests = list(self.make(evening_bias=0.0))
        evening = sum(
            1 for r in requests if 18.0 <= hour_of_day(r.timestamp) <= 23.0
        )
        assert evening / len(requests) == pytest.approx(5.0 / 24.0, abs=0.06)

    def test_bias_validation(self):
        with pytest.raises(ValueError, match="evening_bias"):
            list(self.make(evening_bias=1.5))

    def test_deterministic(self):
        assert list(self.make()) == list(self.make())


class TestPoissonSchedule:
    def make(self, **kwargs):
        defaults = dict(
            regions=("r1",), clients=("ndt",), rate_per_day=40.0, days=10.0, seed=5
        )
        defaults.update(kwargs)
        return PoissonSchedule(**defaults)

    def test_rate_approximately_met(self):
        requests = list(self.make())
        assert len(requests) == pytest.approx(400, abs=80)

    def test_timestamps_sorted_per_pair(self):
        timestamps = [r.timestamp for r in self.make()]
        assert timestamps == sorted(timestamps)

    def test_window_respected(self):
        for request in self.make():
            assert 0.0 <= request.timestamp < 10.0 * 86400.0

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="rate_per_day"):
            list(self.make(rate_per_day=0.0))

    def test_deterministic(self):
        assert list(self.make()) == list(self.make())
