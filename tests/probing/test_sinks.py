"""Unit tests for repro.probing.sinks."""

import pytest

from repro.core.metrics import Metric
from repro.measurements.io import read_jsonl
from repro.measurements.record import Measurement
from repro.probing.sinks import (
    FanOutSink,
    JsonlSink,
    MemorySink,
    StreamingQuantileSink,
)


def record(i, region="r", source="ndt"):
    return Measurement(
        region=region,
        source=source,
        timestamp=float(i),
        download_mbps=float(i + 1),
        latency_ms=10.0 + i,
    )


class TestMemorySink:
    def test_accumulates(self):
        sink = MemorySink()
        for i in range(5):
            sink.accept(record(i))
        assert len(sink) == 5
        assert len(sink.as_set()) == 5

    def test_as_set_snapshot(self):
        sink = MemorySink()
        sink.accept(record(0))
        snapshot = sink.as_set()
        sink.accept(record(1))
        assert len(snapshot) == 1


class TestJsonlSink:
    def test_streams_to_file(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with JsonlSink(path) as sink:
            for i in range(4):
                sink.accept(record(i))
            assert sink.written == 4
        loaded = read_jsonl(path)
        assert len(loaded) == 4
        assert loaded[2].download_mbps == 3.0

    def test_appends_across_openings(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with JsonlSink(path) as sink:
            sink.accept(record(0))
        with JsonlSink(path) as sink:
            sink.accept(record(1))
        assert len(read_jsonl(path)) == 2

    def test_close_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "out.jsonl")
        sink.accept(record(0))
        sink.close()
        sink.close()


class TestStreamingQuantileSink:
    def test_tracks_quantiles_per_region_source(self):
        sink = StreamingQuantileSink()
        for i in range(200):
            sink.accept(record(i, region="a", source="ndt"))
            sink.accept(record(i + 1000, region="b", source="ookla"))
        assert sink.accepted == 400
        assert sink.regions() == ("a", "b")
        sources = sink.sources_for("a")
        assert set(sources) == {"ndt"}
        view = sources["ndt"]
        # download values in region a are 1..200: p95 ≈ 190.
        assert view.quantile(Metric.DOWNLOAD, 95.0) == pytest.approx(190.0, abs=8.0)
        assert view.sample_count(Metric.DOWNLOAD) == 200

    def test_untracked_percentile_returns_none(self):
        sink = StreamingQuantileSink(percentiles=(95.0,))
        for i in range(50):
            sink.accept(record(i))
        view = sink.sources_for("r")["ndt"]
        assert view.quantile(Metric.DOWNLOAD, 42.0) is None

    def test_unobserved_metric_returns_none(self):
        sink = StreamingQuantileSink()
        sink.accept(record(0))
        view = sink.sources_for("r")["ndt"]
        assert view.quantile(Metric.PACKET_LOSS, 95.0) is None
        assert view.sample_count(Metric.PACKET_LOSS) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingQuantileSink(percentiles=())
        with pytest.raises(ValueError):
            StreamingQuantileSink(percentiles=(0.0,))


class TestFanOutSink:
    def test_forwards_to_all_children(self, tmp_path):
        memory_a, memory_b = MemorySink(), MemorySink()
        fan = FanOutSink(memory_a, memory_b)
        fan.accept(record(0))
        assert len(memory_a) == 1
        assert len(memory_b) == 1

    def test_needs_children(self):
        with pytest.raises(ValueError):
            FanOutSink()


class TestMemorySinkColumnar:
    def test_as_columnar_caches_until_next_accept(self):
        sink = MemorySink()
        for i in range(4):
            sink.accept(record(i))
        store = sink.as_columnar()
        assert store is sink.as_columnar()
        assert len(store) == 4
        sink.accept(record(4))
        fresh = sink.as_columnar()
        assert fresh is not store
        assert len(fresh) == 5
        assert len(store) == 4  # old snapshot untouched

    def test_sources_by_region_shape(self):
        sink = MemorySink()
        sink.accept(record(0, region="a", source="ndt"))
        sink.accept(record(1, region="a", source="ookla"))
        sink.accept(record(2, region="b", source="ndt"))
        grouped = sink.sources_by_region()
        assert set(grouped) == {"a", "b"}
        assert set(grouped["a"]) == {"ndt", "ookla"}
        assert grouped["b"]["ndt"].sample_count(Metric.DOWNLOAD) == 1

    def test_score_all_matches_per_region_scoring(self):
        from repro.core import paper_config
        from repro.core.scoring import score_region

        config = paper_config()
        sink = MemorySink()
        for i in range(60):
            for source in ("ndt", "cloudflare"):
                sink.accept(
                    Measurement(
                        region="a" if i % 2 else "b",
                        source=source,
                        timestamp=float(i),
                        download_mbps=100.0 + i,
                        upload_mbps=20.0 + i,
                        latency_ms=20.0,
                        packet_loss=0.001,
                    )
                )
        breakdowns = sink.score_all(config)
        records = sink.as_set()
        for region in ("a", "b"):
            expected = score_region(
                records.for_region(region).group_by_source(), config
            )
            assert breakdowns[region] == expected


class TestSketchSink:
    def _measure(self, i, region="a", source="ndt"):
        return Measurement(
            region=region,
            source=source,
            timestamp=float(i),
            download_mbps=100.0 + i,
            upload_mbps=20.0 + i,
            latency_ms=25.0,
            packet_loss=0.001,
        )

    def test_accept_feeds_live_plane(self):
        from repro.probing.sinks import SketchSink

        sink = SketchSink()
        for i in range(30):
            sink.accept(self._measure(i, region="a" if i % 2 else "b"))
        assert len(sink) == 30
        assert sink.plane.regions() == ("a", "b")

    def test_score_all_matches_sketch_scoring_of_records(self):
        from repro.core import paper_config
        from repro.core.scoring import score_regions
        from repro.probing.sinks import SketchSink

        config = paper_config()
        sink = SketchSink()
        records = [self._measure(i) for i in range(50)] + [
            self._measure(i, source="cloudflare") for i in range(50)
        ]
        for record in records:
            sink.accept(record)
        assert sink.score_all(config) == score_regions(
            records, config, quantiles="sketch"
        )

    def test_state_roundtrip(self):
        import json

        from repro.probing.sinks import SketchSink

        sink = SketchSink()
        for i in range(20):
            sink.accept(self._measure(i))
        restored = SketchSink()
        restored.restore_state(json.loads(json.dumps(sink.state_dict())))
        assert len(restored) == 20
        assert restored.plane.regions() == ("a",)

    def test_fan_out_with_memory_sink(self):
        from repro.probing.sinks import FanOutSink, MemorySink, SketchSink

        memory, sketch = MemorySink(), SketchSink()
        tee = FanOutSink(memory, sketch)
        for i in range(5):
            tee.accept(self._measure(i))
        assert len(memory) == 5
        assert len(sketch) == 5

    def test_memory_sink_score_all_quantiles_passthrough(self):
        from repro.core import paper_config
        from repro.probing.sinks import MemorySink

        config = paper_config()
        sink = MemorySink()
        for i in range(40):
            sink.accept(self._measure(i))
        sketch = sink.score_all(config, quantiles="sketch")
        assert sketch["a"].quantile_source == "sketch"
        assert sink.score_all(config, quantiles="exact") == sink.score_all(
            config
        )
