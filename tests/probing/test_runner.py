"""Unit tests for repro.probing.runner (retries, failure accounting)."""

import pytest

from repro.core.exceptions import BackendError
from repro.measurements.record import Measurement
from repro.probing.backends import ProbeRequest
from repro.probing.runner import ProbeRunner
from repro.probing.sinks import MemorySink


def request(i=0):
    return ProbeRequest(client="ndt", region="r", timestamp=float(i))


def record(ts):
    return Measurement(
        region="r", source="ndt", timestamp=ts, download_mbps=10.0
    )


class ScriptedBackend:
    """Fails the first ``failures_per_probe`` attempts of each probe."""

    def __init__(self, failures_per_probe=0):
        self.failures_per_probe = failures_per_probe
        self.attempts = {}

    def run(self, probe):
        key = probe.timestamp
        seen = self.attempts.get(key, 0)
        self.attempts[key] = seen + 1
        if seen < self.failures_per_probe:
            raise BackendError(f"scripted failure #{seen + 1}")
        return record(probe.timestamp)

    def regions(self):
        return ("r",)

    def clients(self):
        return ("ndt",)


class ExplodingBackend(ScriptedBackend):
    def run(self, probe):
        raise RuntimeError("a genuine bug, not a transient failure")


class TestRunner:
    def test_clean_run(self):
        sink = MemorySink()
        report = ProbeRunner(ScriptedBackend(), sink).run(
            [request(i) for i in range(10)]
        )
        assert report.scheduled == 10
        assert report.succeeded == 10
        assert report.retried == 0
        assert report.abandoned == ()
        assert report.success_rate == 1.0
        assert len(sink) == 10

    def test_retry_recovers_transients(self):
        sink = MemorySink()
        runner = ProbeRunner(ScriptedBackend(failures_per_probe=2), sink,
                             max_attempts=3)
        report = runner.run([request(i) for i in range(5)])
        assert report.succeeded == 5
        assert report.retried == 10  # 2 retries per probe
        assert report.abandoned == ()

    def test_abandon_after_max_attempts(self):
        sink = MemorySink()
        runner = ProbeRunner(ScriptedBackend(failures_per_probe=5), sink,
                             max_attempts=3)
        report = runner.run([request(i) for i in range(4)])
        assert report.succeeded == 0
        assert len(report.abandoned) == 4
        failed = report.abandoned[0]
        assert failed.attempts == 3
        assert "scripted failure" in failed.last_error
        assert report.success_rate == 0.0
        assert len(sink) == 0

    def test_no_retries_when_max_attempts_one(self):
        sink = MemorySink()
        runner = ProbeRunner(ScriptedBackend(failures_per_probe=1), sink,
                             max_attempts=1)
        report = runner.run([request(0)])
        assert report.retried == 0
        assert len(report.abandoned) == 1

    def test_non_backend_errors_propagate(self):
        runner = ProbeRunner(ExplodingBackend(), MemorySink())
        with pytest.raises(RuntimeError, match="genuine bug"):
            runner.run([request(0)])

    def test_empty_schedule_has_no_success_rate(self):
        report = ProbeRunner(ScriptedBackend(), MemorySink()).run([])
        assert report.scheduled == 0
        # "Nothing ran" must be distinguishable from "everything
        # succeeded" — a monitor that scheduled zero probes is not
        # healthy, it is blind.
        assert report.success_rate is None

    def test_max_attempts_validated(self):
        with pytest.raises(ValueError):
            ProbeRunner(ScriptedBackend(), MemorySink(), max_attempts=0)


class TestRunTiming:
    def test_report_carries_wall_clock_bounds(self):
        import time

        before = time.time()
        report = ProbeRunner(ScriptedBackend(), MemorySink()).run(
            [request(i) for i in range(3)]
        )
        after = time.time()
        assert before <= report.started_unix <= report.finished_unix
        assert report.finished_unix <= after
        assert report.duration_s == pytest.approx(
            report.finished_unix - report.started_unix
        )
        assert report.duration_s >= 0.0

    def test_hand_built_report_defaults_to_zero_times(self):
        from repro.probing.runner import RunReport

        report = RunReport(
            scheduled=1, succeeded=1, retried=0, abandoned=()
        )
        assert report.started_unix == 0.0
        assert report.duration_s == 0.0

    def test_liveness_gauges_set_without_telemetry_server(self):
        # Batch runs report liveness through the same gauges a live
        # /healthz scrape reads — no server attachment required.
        from repro.obs import REGISTRY

        uptime = REGISTRY.gauge("probe.runner.uptime_s")
        last_run = REGISTRY.gauge("probe.runner.last_run_unix")
        uptime.set(-1.0)
        last_run.set(-1.0)
        report = ProbeRunner(ScriptedBackend(), MemorySink()).run(
            [request(0)]
        )
        assert uptime.value >= 0.0
        assert last_run.value == report.finished_unix
