"""Unit tests for repro.probing.monitor (BarometerMonitor)."""

import pytest

from repro.measurements.collection import MeasurementSet
from repro.measurements.record import Measurement
from repro.probing.monitor import BarometerMonitor

DAY = 86400.0


def window_records(day, region="r", latency=20.0, n=40):
    """One day of healthy-or-not records for a region.

    All four metrics present so every requirement is scoreable; the
    latency knob alone flips the score between good and bad.
    """
    return MeasurementSet(
        Measurement(
            region=region,
            source="ndt" if i % 2 == 0 else "cloudflare",
            timestamp=day * DAY + i * 1000.0,
            download_mbps=500.0,
            upload_mbps=200.0,
            latency_ms=latency,
            packet_loss=0.0005,
        )
        for i in range(n)
    )


def feed(monitor, day, records):
    return monitor.ingest(records, day * DAY, (day + 1) * DAY)


class TestIngest:
    def test_healthy_stream_never_alerts(self, config):
        monitor = BarometerMonitor(config)
        for day in range(6):
            assert feed(monitor, day, window_records(day)) == []
        assert monitor.regions() == ("r",)
        assert len(monitor.history("r")) == 6

    def test_collapse_alerts_once_baseline_exists(self, config):
        monitor = BarometerMonitor(config, min_drop=0.1, trailing=3)
        for day in range(4):
            feed(monitor, day, window_records(day))
        alerts = feed(monitor, 4, window_records(4, latency=500.0))
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert.region == "r"
        assert alert.drop > 0.1
        assert "ALERT r" in str(alert)

    def test_no_alert_without_baseline(self, config):
        monitor = BarometerMonitor(config, trailing=3)
        assert feed(monitor, 0, window_records(0, latency=500.0)) == []

    def test_sparse_window_never_alerts(self, config):
        monitor = BarometerMonitor(config, min_samples=50)
        for day in range(4):
            feed(monitor, day, window_records(day))
        alerts = feed(monitor, 4, window_records(4, latency=500.0, n=10))
        assert alerts == []
        assert monitor.history("r")[-1].score is None

    def test_silent_region_recorded_as_gap(self, config):
        monitor = BarometerMonitor(config)
        feed(monitor, 0, window_records(0))
        feed(monitor, 1, MeasurementSet())  # nothing measured anywhere
        history = monitor.history("r")
        assert len(history) == 2
        assert history[1].score is None

    def test_multiple_regions_independent(self, config):
        monitor = BarometerMonitor(config, min_drop=0.1, trailing=3)
        for day in range(4):
            combined = window_records(day, region="a") + window_records(
                day, region="b"
            )
            feed(monitor, day, combined)
        mixed = window_records(4, region="a", latency=500.0) + window_records(
            4, region="b"
        )
        alerts = feed(monitor, 4, mixed)
        assert [alert.region for alert in alerts] == ["a"]

    def test_window_filtering(self, config):
        # Records outside the declared window are ignored.
        monitor = BarometerMonitor(config)
        records = window_records(0) + window_records(5)
        feed(monitor, 0, records)
        assert monitor.history("r")[0].samples == 40

    def test_validation(self, config):
        monitor = BarometerMonitor(config)
        with pytest.raises(ValueError, match="inverted"):
            monitor.ingest(MeasurementSet(), 10.0, 10.0)
        with pytest.raises(ValueError):
            BarometerMonitor(config, min_drop=0.0)
        with pytest.raises(ValueError):
            BarometerMonitor(config, trailing=0)

    def test_recovery_after_alert_is_quiet(self, config):
        monitor = BarometerMonitor(config, min_drop=0.1, trailing=3)
        for day in range(4):
            feed(monitor, day, window_records(day))
        feed(monitor, 4, window_records(4, latency=500.0))
        assert feed(monitor, 5, window_records(5)) == []


class TestLivenessGauges:
    def test_each_cycle_advances_the_liveness_gauges(self, config):
        import time

        from repro.obs import REGISTRY

        cycles = REGISTRY.gauge("monitor.cycles")
        last_cycle = REGISTRY.gauge("monitor.last_cycle_unix")
        before_cycles = cycles.value
        before_time = time.time()
        monitor = BarometerMonitor(config)
        for day in range(3):
            feed(monitor, day, window_records(day))
        assert cycles.value == before_cycles + 3
        assert last_cycle.value >= before_time


class TestSketchMode:
    """The incremental streaming path: observe() → score_pending()."""

    def test_ingest_parity_with_exact_mode(self, config):
        exact = BarometerMonitor(config)
        sketch = BarometerMonitor(config, quantiles="sketch")
        for day in range(5):
            feed(exact, day, window_records(day))
            feed(sketch, day, window_records(day))
        assert sketch.regions() == exact.regions()
        for e, s in zip(exact.history("r"), sketch.history("r")):
            assert s.samples == e.samples
            assert s.score == pytest.approx(e.score, abs=0.05)

    def test_observe_then_score_pending_matches_ingest(self, config):
        streamed = BarometerMonitor(config, quantiles="sketch")
        batched = BarometerMonitor(config, quantiles="sketch")
        records = window_records(0)
        for record in records:
            streamed.observe(record)
        assert streamed.pending() == len(records)
        streamed.score_pending(0.0, DAY)
        assert streamed.pending() == 0
        batched.ingest(records, 0.0, DAY)
        assert streamed.history("r") == batched.history("r")

    def test_sketch_collapse_still_alerts(self, config):
        monitor = BarometerMonitor(
            config, min_drop=0.1, trailing=3, quantiles="sketch"
        )
        for day in range(4):
            feed(monitor, day, window_records(day))
        alerts = feed(monitor, 4, window_records(4, latency=500.0))
        assert len(alerts) == 1

    def test_exact_mode_rejects_streaming_calls(self, config):
        monitor = BarometerMonitor(config)
        with pytest.raises(ValueError, match="sketch"):
            monitor.observe(next(iter(window_records(0))))
        with pytest.raises(ValueError, match="sketch"):
            monitor.score_pending(0.0, DAY)
        assert monitor.pending() == 0

    def test_unknown_quantiles_rejected(self, config):
        with pytest.raises(ValueError, match="unknown quantile source"):
            BarometerMonitor(config, quantiles="p2")

    def test_state_roundtrip_restores_pending_sketch(self, config):
        monitor = BarometerMonitor(config, quantiles="sketch")
        feed(monitor, 0, window_records(0))
        for record in window_records(1, n=7):
            monitor.observe(record)
        state = monitor.state_dict()
        assert state["quantiles"] == "sketch"
        assert state["pending_sketch"]["records"] == 7

        resumed = BarometerMonitor(config, quantiles="sketch")
        resumed.restore_state(state)
        assert resumed.pending() == 7
        assert resumed.history("r") == monitor.history("r")
        # Both finish the half-streamed window identically.
        monitor.score_pending(DAY, 2 * DAY)
        resumed.score_pending(DAY, 2 * DAY)
        assert resumed.history("r") == monitor.history("r")

    def test_pending_records_gauge_tracks_buffer(self, config):
        from repro.obs import REGISTRY

        gauge = REGISTRY.gauge("monitor.pending.records")
        monitor = BarometerMonitor(config, quantiles="sketch")
        for count, record in enumerate(window_records(0, n=6), start=1):
            monitor.observe(record)
            assert gauge.value == float(count)
        monitor.score_pending(0.0, DAY)
        assert gauge.value == 0.0

    def test_exact_state_has_no_sketch_keys(self, config):
        monitor = BarometerMonitor(config)
        feed(monitor, 0, window_records(0))
        state = monitor.state_dict()
        assert "quantiles" not in state
        assert "pending_sketch" not in state
