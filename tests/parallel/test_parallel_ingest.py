"""Parallel ingest: byte-range splitting + reader parity with serial."""

import json

import pytest

from repro.core.exceptions import SchemaError
from repro.measurements.collection import MeasurementSet
from repro.measurements.io import (
    IngestStats,
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
)
from repro.measurements.record import Measurement
from repro.parallel import (
    read_csv_parallel,
    read_jsonl_parallel,
    split_line_ranges,
)


@pytest.fixture(scope="module")
def records():
    return MeasurementSet(
        [
            Measurement(
                region=f"r{i % 5}",
                source=("ndt", "ookla", "cloudflare")[i % 3],
                timestamp=float(i),
                download_mbps=50.0 + i,
                upload_mbps=10.0 + i,
                latency_ms=20.0 + (i % 7),
                packet_loss=0.001 * (i % 4),
            )
            for i in range(200)
        ]
    )


@pytest.fixture(scope="module")
def jsonl_file(records, tmp_path_factory):
    path = tmp_path_factory.mktemp("pingest") / "data.jsonl"
    write_jsonl(records, path)
    return path


@pytest.fixture(scope="module")
def csv_file(records, tmp_path_factory):
    path = tmp_path_factory.mktemp("pingest") / "data.csv"
    write_csv(records, path)
    return path


class TestSplitLineRanges:
    def test_covers_file_exactly(self, jsonl_file):
        size = jsonl_file.stat().st_size
        ranges = split_line_ranges(jsonl_file, 4)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == size
        for (_, end_a), (start_b, _) in zip(ranges, ranges[1:]):
            assert end_a == start_b

    def test_ranges_align_on_line_boundaries(self, jsonl_file):
        data = jsonl_file.read_bytes()
        for start, end in split_line_ranges(jsonl_file, 7):
            if start > 0:
                assert data[start - 1 : start] == b"\n"
            # Each range decodes to whole JSON documents.
            for line in data[start:end].decode().strip().splitlines():
                json.loads(line)

    def test_offset_excludes_prefix(self, csv_file):
        header_end = csv_file.read_bytes().index(b"\n") + 1
        ranges = split_line_ranges(csv_file, 3, offset=header_end)
        assert ranges[0][0] == header_end

    def test_short_file_fewer_parts(self, tmp_path):
        path = tmp_path / "tiny.jsonl"
        path.write_text('{"a": 1}\n')
        assert len(split_line_ranges(path, 8)) == 1

    def test_empty_file_no_ranges(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert split_line_ranges(path, 4) == []

    def test_rejects_non_positive_parts(self, jsonl_file):
        with pytest.raises(ValueError, match="parts"):
            split_line_ranges(jsonl_file, 0)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            split_line_ranges(tmp_path / "nope.jsonl", 2)


class TestJsonlParity:
    @pytest.mark.parametrize("workers", [1, 2, 4, 7])
    def test_records_identical_to_serial(self, jsonl_file, records, workers):
        loaded = read_jsonl_parallel(jsonl_file, workers)
        assert list(loaded) == list(records)

    def test_stats_match_serial(self, jsonl_file):
        serial, parallel = IngestStats(), IngestStats()
        read_jsonl(jsonl_file, stats=serial)
        read_jsonl_parallel(jsonl_file, 4, stats=parallel)
        assert (parallel.read, parallel.skipped) == (
            serial.read,
            serial.skipped,
        )

    def test_skip_mode_drops_same_rows(self, jsonl_file, tmp_path):
        dirty = tmp_path / "dirty.jsonl"
        lines = jsonl_file.read_text().splitlines()
        lines.insert(50, "{not json")
        lines.insert(150, '{"region": 7}')
        dirty.write_text("\n".join(lines) + "\n")
        serial_stats, parallel_stats = IngestStats(), IngestStats()
        serial = read_jsonl(dirty, on_error="skip", stats=serial_stats)
        parallel = read_jsonl_parallel(
            dirty, 4, on_error="skip", stats=parallel_stats
        )
        assert list(parallel) == list(serial)
        assert parallel_stats.skipped == serial_stats.skipped == 2

    def test_raise_mode_surfaces_schema_error(self, jsonl_file, tmp_path):
        dirty = tmp_path / "bad.jsonl"
        lines = jsonl_file.read_text().splitlines()
        lines[120] = "{broken"
        dirty.write_text("\n".join(lines) + "\n")
        with pytest.raises(SchemaError, match="byte range"):
            read_jsonl_parallel(dirty, 4)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            read_jsonl_parallel(tmp_path / "nope.jsonl", 4)

    def test_empty_file_empty_set(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert len(read_jsonl_parallel(path, 4)) == 0

    def test_rejects_bad_on_error(self, jsonl_file):
        with pytest.raises(ValueError, match="on_error"):
            read_jsonl_parallel(jsonl_file, 4, on_error="explode")


class TestCsvParity:
    @pytest.mark.parametrize("workers", [1, 2, 4, 7])
    def test_records_identical_to_serial(self, csv_file, workers):
        serial = read_csv(csv_file)
        parallel = read_csv_parallel(csv_file, workers)
        assert list(parallel) == list(serial)

    def test_stats_match_serial(self, csv_file):
        serial, parallel = IngestStats(), IngestStats()
        read_csv(csv_file, stats=serial)
        read_csv_parallel(csv_file, 4, stats=parallel)
        assert (parallel.read, parallel.skipped) == (
            serial.read,
            serial.skipped,
        )

    def test_skip_mode_drops_bad_rows(self, csv_file, tmp_path):
        dirty = tmp_path / "dirty.csv"
        lines = csv_file.read_text().splitlines()
        lines.insert(40, ",,,,,,,,")  # no region/source: schema failure
        dirty.write_text("\n".join(lines) + "\n")
        stats = IngestStats()
        parallel = read_csv_parallel(dirty, 4, on_error="skip", stats=stats)
        assert stats.skipped == 1
        assert list(parallel) == list(read_csv(dirty, on_error="skip"))

    def test_header_only_file_empty_set(self, tmp_path, csv_file):
        path = tmp_path / "header.csv"
        path.write_text(csv_file.read_text().splitlines()[0] + "\n")
        assert len(read_csv_parallel(path, 4)) == 0

    def test_empty_file_empty_set(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert len(read_csv_parallel(path, 4)) == 0
