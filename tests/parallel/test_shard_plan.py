"""Unit tests for repro.parallel.plan (shard partitioning)."""

import pytest

from repro.parallel import ShardPlan


class TestForKeys:
    def test_even_split(self):
        plan = ShardPlan.for_keys(["a", "b", "c", "d"], workers=2)
        assert plan.shards == (("a", "b"), ("c", "d"))

    def test_uneven_split_front_loads_remainder(self):
        plan = ShardPlan.for_keys(list("abcdefg"), workers=3)
        assert plan.shards == (
            ("a", "b", "c"),
            ("d", "e"),
            ("f", "g"),
        )

    def test_more_workers_than_keys_yields_singletons(self):
        plan = ShardPlan.for_keys(["x", "y"], workers=8)
        assert plan.shards == (("x",), ("y",))
        assert plan.shard_count == 2

    def test_single_worker_single_shard(self):
        plan = ShardPlan.for_keys(["a", "b", "c"], workers=1)
        assert plan.shards == (("a", "b", "c"),)

    def test_empty_keys_empty_plan(self):
        plan = ShardPlan.for_keys([], workers=4)
        assert plan.shards == ()
        assert len(plan) == 0

    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ShardPlan.for_keys(["a"], workers=0)

    def test_preserves_caller_order(self):
        plan = ShardPlan.for_keys(["z", "a", "m"], workers=2)
        assert plan.keys == ("z", "a", "m")


class TestInvariants:
    @pytest.mark.parametrize("count", [1, 2, 5, 6, 7, 13, 100])
    @pytest.mark.parametrize("workers", [1, 2, 3, 4, 7, 16])
    def test_disjoint_covering_balanced(self, count, workers):
        keys = [f"k{i}" for i in range(count)]
        plan = ShardPlan.for_keys(keys, workers)
        # Covers every key exactly once, in order.
        assert list(plan.keys) == keys
        # Never more shards than workers or keys; never an empty shard.
        assert plan.shard_count == min(workers, count)
        assert all(len(shard) >= 1 for shard in plan.shards)
        # Balanced: sizes differ by at most one.
        sizes = [len(shard) for shard in plan.shards]
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic(self):
        keys = [f"k{i}" for i in range(17)]
        assert ShardPlan.for_keys(keys, 5) == ShardPlan.for_keys(keys, 5)


class TestLookup:
    def test_shard_of_and_assignment_agree(self):
        plan = ShardPlan.for_keys(list("abcde"), workers=2)
        assignment = plan.assignment()
        for key in "abcde":
            assert assignment[key] == plan.shard_of(key)

    def test_shard_of_unknown_key_raises(self):
        plan = ShardPlan.for_keys(["a"], workers=1)
        with pytest.raises(KeyError):
            plan.shard_of("nope")

    def test_repr_shows_sizes(self):
        assert "ShardPlan" in repr(ShardPlan.for_keys(list("abc"), 2))
