"""Unit tests for repro.parallel.pool (sharded execution + telemetry)."""

import os

import pytest

from repro.obs import REGISTRY, counter
from repro.parallel import ShardError, fork_available, run_sharded

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform has no fork start method"
)


# Workers must be module-level: they cross the process boundary by
# reference (fork) and run in-process on the serial path.

def _double_shard(payload, shard):
    return [payload * item for item in shard]


def _shard_pid(payload, shard):
    return os.getpid()


def _fail_on_c(payload, shard):
    if "c" in shard:
        raise ValueError("boom on c")
    return list(shard)


def _count_work(payload, shard):
    counter("test.pool.work_items").inc(len(shard))
    return len(shard)


def _spanning_work(payload, shard):
    from repro.obs import span

    with span("inner_work", items=len(shard)):
        return len(shard)


class TestSerialFallback:
    def test_workers_one_runs_inline(self):
        before = REGISTRY.snapshot()["counters"].get(
            "parallel.serial_fallbacks", 0
        )
        results = run_sharded(
            _shard_pid, None, [("a",), ("b",)], workers=1
        )
        assert results == [os.getpid(), os.getpid()]
        after = REGISTRY.snapshot()["counters"]["parallel.serial_fallbacks"]
        assert after == before + 1

    def test_single_shard_runs_inline(self):
        results = run_sharded(_shard_pid, None, [("a", "b")], workers=8)
        assert results == [os.getpid()]

    def test_unpicklable_shards_run_inline(self):
        shards = [(lambda: 1,), (lambda: 2,)]  # lambdas don't pickle
        results = run_sharded(
            _shard_pid, None, shards, workers=4, shard_keys=[("s0",), ("s1",)]
        )
        assert results == [os.getpid(), os.getpid()]

    def test_serial_counters_land_in_parent(self):
        instrument = counter("test.pool.work_items")
        before = instrument.value
        run_sharded(_count_work, None, [("a", "b"), ("c",)], workers=1)
        assert instrument.value == before + 3

    def test_serial_failure_raises_shard_error(self):
        with pytest.raises(ShardError) as excinfo:
            run_sharded(
                _fail_on_c, None, [("a", "b"), ("c", "d")], workers=1
            )
        assert excinfo.value.shard_index == 1
        assert excinfo.value.keys == ("c", "d")
        assert isinstance(excinfo.value.__cause__, ValueError)


class TestEmptyAndValidation:
    def test_no_shards_no_results(self):
        assert run_sharded(_double_shard, 2, [], workers=4) == []

    def test_mismatched_shard_keys_rejected(self):
        with pytest.raises(ValueError, match="shard_keys"):
            run_sharded(
                _double_shard, 2, [(1,), (2,)], workers=1, shard_keys=[("a",)]
            )


@needs_fork
class TestParallel:
    def test_results_in_shard_order(self):
        shards = [(1, 2), (3,), (4, 5, 6)]
        results = run_sharded(_double_shard, 10, shards, workers=3)
        assert results == [[10, 20], [30], [40, 50, 60]]

    def test_actually_forks(self):
        pids = run_sharded(_shard_pid, None, [("a",), ("b",)], workers=2)
        assert all(pid != os.getpid() for pid in pids)

    def test_worker_counters_merge_into_parent(self):
        instrument = counter("test.pool.work_items")
        before = instrument.value
        run_sharded(
            _count_work, None, [("a", "b"), ("c",), ("d", "e")], workers=3
        )
        assert instrument.value == before + 5

    def test_failure_names_the_shard(self):
        with pytest.raises(ShardError) as excinfo:
            run_sharded(
                _fail_on_c,
                None,
                [("a", "b"), ("c", "d"), ("e",)],
                workers=3,
            )
        error = excinfo.value
        assert error.shard_index == 1
        assert error.keys == ("c", "d")
        assert "c, d" in str(error)
        assert "boom on c" in str(error)

    def test_completed_shard_counter(self):
        before = REGISTRY.snapshot()["counters"].get(
            "parallel.shards.completed", 0
        )
        run_sharded(_double_shard, 1, [(1,), (2,), (3,)], workers=2)
        after = REGISTRY.snapshot()["counters"]["parallel.shards.completed"]
        assert after == before + 3


@needs_fork
class TestShardTracing:
    """Forked shard spans must join the parent's trace."""

    def _traced_run(self):
        from repro.obs import (
            TraceRecorder,
            install_trace_recorder,
            uninstall_trace_recorder,
        )

        recorder = TraceRecorder()
        install_trace_recorder(recorder)
        try:
            run_sharded(
                _spanning_work, None, [("a",), ("b",)], workers=2
            )
        finally:
            uninstall_trace_recorder()
        return recorder

    def test_shard_spans_share_the_parent_trace_id(self):
        records = self._traced_run().records()
        fanout = next(
            record
            for record in records
            if record.name == "parallel_fanout"
        )
        shards = [
            record for record in records if record.name == "shard"
        ]
        assert len(shards) == 2
        for shard in shards:
            assert shard.trace_id == fanout.trace_id
            assert shard.parent_id == fanout.span_id
        # The worker's own spans nest one level further down, still on
        # the same trace.
        inner = [
            record for record in records if record.name == "inner_work"
        ]
        assert len(inner) == 2
        shard_ids = {shard.span_id for shard in shards}
        for record in inner:
            assert record.trace_id == fanout.trace_id
            assert record.parent_id in shard_ids

    def test_chrome_export_nests_shards_under_fanout(self, tmp_path):
        from repro.obs.trace import write_chrome_trace

        recorder = self._traced_run()
        path = tmp_path / "trace.json"
        assert write_chrome_trace(recorder, path) >= 5
        import json

        events = [
            event
            for event in json.loads(path.read_text())["traceEvents"]
            if event.get("ph") == "X"
        ]
        fanout = next(
            event for event in events if event["name"] == "parallel_fanout"
        )
        shards = [
            event for event in events if event["name"] == "shard"
        ]
        assert len(shards) == 2
        for shard in shards:
            assert shard["args"]["trace_id"] == (
                fanout["args"]["trace_id"]
            )
            assert shard["args"]["parent_id"] == (
                fanout["args"]["span_id"]
            )
            # Re-based onto the parent timeline: a shard cannot start
            # before the fan-out span that spawned it (small wall-clock
            # skew between the two processes' epochs tolerated).
            assert shard["ts"] >= fanout["ts"] - 0.1e6
            assert shard["args"]["worker"] != os.getpid()
