"""Degenerate-file parity: parallel readers must match serial exactly.

The shard planner earns its keep on big files; these tests pin the
other end of the distribution — empty files, files smaller than one
shard, and files whose final record has no trailing newline — where
off-by-one byte-range bugs live.
"""

import pytest

from repro.measurements.collection import MeasurementSet
from repro.measurements.io import read_csv, read_jsonl, write_csv, write_jsonl
from repro.measurements.record import Measurement
from repro.parallel import read_csv_parallel, read_jsonl_parallel


def records(n):
    return MeasurementSet(
        [
            Measurement(
                region=f"r{i % 3}",
                source=("ndt", "ookla")[i % 2],
                timestamp=float(i),
                download_mbps=100.0 + i,
                upload_mbps=20.0,
                latency_ms=15.0,
                packet_loss=0.002,
            )
            for i in range(n)
        ]
    )


def dump(collection):
    return [
        (m.region, m.source, m.timestamp, m.download_mbps)
        for m in collection
    ]


class TestZeroByteFile:
    def test_jsonl(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_bytes(b"")
        serial = read_jsonl(path)
        parallel = read_jsonl_parallel(path, workers=4)
        assert len(serial) == len(parallel) == 0

    def test_csv(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_bytes(b"")
        serial = read_csv(path)
        parallel = read_csv_parallel(path, workers=4)
        assert len(serial) == len(parallel) == 0

    def test_csv_header_only(self, tmp_path):
        path = tmp_path / "header.csv"
        write_csv(records(1), path)
        header = path.read_text().splitlines()[0]
        path.write_text(header + "\n")
        serial = read_csv(path)
        parallel = read_csv_parallel(path, workers=4)
        assert len(serial) == len(parallel) == 0


class TestFileSmallerThanOneShard:
    def test_jsonl_two_lines_eight_workers(self, tmp_path):
        path = tmp_path / "tiny.jsonl"
        write_jsonl(records(2), path)
        assert dump(read_jsonl_parallel(path, workers=8)) == dump(
            read_jsonl(path)
        )

    def test_jsonl_single_line(self, tmp_path):
        path = tmp_path / "one.jsonl"
        write_jsonl(records(1), path)
        assert dump(read_jsonl_parallel(path, workers=8)) == dump(
            read_jsonl(path)
        )

    def test_csv_two_rows_eight_workers(self, tmp_path):
        path = tmp_path / "tiny.csv"
        write_csv(records(2), path)
        assert dump(read_csv_parallel(path, workers=8)) == dump(
            read_csv(path)
        )


class TestNoTrailingNewline:
    def strip_final_newline(self, path):
        data = path.read_bytes()
        assert data.endswith(b"\n")
        path.write_bytes(data[:-1])

    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_jsonl(self, tmp_path, workers):
        path = tmp_path / "chopped.jsonl"
        write_jsonl(records(25), path)
        self.strip_final_newline(path)
        serial = dump(read_jsonl(path))
        assert len(serial) == 25  # the final record still counts
        assert dump(read_jsonl_parallel(path, workers=workers)) == serial

    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_csv(self, tmp_path, workers):
        path = tmp_path / "chopped.csv"
        write_csv(records(25), path)
        self.strip_final_newline(path)
        serial = dump(read_csv(path))
        assert len(serial) == 25
        assert dump(read_csv_parallel(path, workers=workers)) == serial
