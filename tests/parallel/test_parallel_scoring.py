"""Parallel region scoring: bit-identical to serial, any worker count."""

import pytest

from repro.core.exceptions import DataError
from repro.core.scoring import score_regions
from repro.measurements.collection import MeasurementSet
from repro.measurements.columnar import ColumnarStore
from repro.netsim import CampaignConfig, region_preset, simulate_region
from repro.netsim.population import REGION_PRESETS
from repro.parallel import fork_available
from repro.parallel.scoring import score_regions_parallel


@pytest.fixture(scope="module")
def six_region_batch():
    """A campaign over all six presets — an uneven fit for most pools."""
    campaign = CampaignConfig(subscribers=15, tests_per_client=40)
    records = MeasurementSet()
    for name in sorted(REGION_PRESETS):
        records = records + simulate_region(
            region_preset(name), seed=11, config=campaign
        )
    return records


@pytest.fixture(scope="module")
def serial_scores(six_region_batch, config):
    return score_regions(six_region_batch, config)


class TestBitEquality:
    @pytest.mark.parametrize("workers", [1, 2, 4, 7])
    def test_parallel_equals_serial(
        self, six_region_batch, config, serial_scores, workers
    ):
        parallel = score_regions(six_region_batch, config, workers=workers)
        # Dataclass equality on ScoreBreakdown compares every float of
        # every tier exactly — this is bit-equality, not tolerance.
        assert parallel == serial_scores
        assert list(parallel) == list(serial_scores)

    def test_columnar_store_input(
        self, six_region_batch, config, serial_scores
    ):
        store = ColumnarStore(list(six_region_batch))
        assert score_regions(store, config, workers=3) == serial_scores

    def test_pre_grouped_mapping_input(
        self, six_region_batch, config, serial_scores
    ):
        grouped = ColumnarStore(list(six_region_batch)).sources_by_region()
        assert score_regions(grouped, config, workers=4) == serial_scores

    def test_single_region(self, config):
        campaign = CampaignConfig(subscribers=10, tests_per_client=30)
        records = simulate_region(
            region_preset("metro-fiber"), seed=3, config=campaign
        )
        serial = score_regions(records, config)
        assert score_regions(records, config, workers=4) == serial

    def test_more_workers_than_regions(
        self, six_region_batch, config, serial_scores
    ):
        assert (
            score_regions(six_region_batch, config, workers=64)
            == serial_scores
        )


class TestEdgeCases:
    def test_empty_batch_raises_data_error(self, config):
        with pytest.raises(DataError, match="at least one region"):
            score_regions(MeasurementSet(), config, workers=4)

    def test_empty_mapping_raises_data_error(self, config):
        with pytest.raises(DataError, match="at least one region"):
            score_regions_parallel({}, config, workers=4)

    def test_batch_regions_counter_matches_serial(
        self, six_region_batch, config
    ):
        from repro.obs import REGISTRY

        def batch_count():
            return REGISTRY.snapshot()["counters"].get(
                "scoring.batch.regions", 0
            )

        before = batch_count()
        score_regions(six_region_batch, config, workers=4)
        assert batch_count() == before + 6


@pytest.mark.skipif(
    not fork_available(), reason="platform has no fork start method"
)
class TestWorkerTelemetry:
    def test_quantile_cache_counters_merge(self, six_region_batch, config):
        """Workers' columnar-cache activity shows up in the parent."""
        from repro.obs import REGISTRY

        def cache_counts():
            counters = REGISTRY.snapshot()["counters"]
            return (
                counters.get("quantile_cache.columnar.hits", 0),
                counters.get("quantile_cache.columnar.sorts", 0),
            )

        hits_before, sorts_before = cache_counts()
        score_regions(six_region_batch, config, workers=4)
        hits_after, sorts_after = cache_counts()
        assert hits_after > hits_before
        assert sorts_after > sorts_before

    def test_region_scores_counter_matches_serial(
        self, six_region_batch, config
    ):
        from repro.obs import REGISTRY

        def region_count():
            return REGISTRY.snapshot()["counters"].get(
                "scoring.region_scores", 0
            )

        before = region_count()
        score_regions(six_region_batch, config, workers=4)
        assert region_count() == before + 6
