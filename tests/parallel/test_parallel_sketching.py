"""Parallel sketch-plane building: sharded digests merge losslessly."""

import pytest

from repro.core.scoring import score_regions
from repro.measurements.collection import MeasurementSet
from repro.measurements.sketchplane import sketch_records
from repro.netsim import CampaignConfig, region_preset, simulate_region
from repro.netsim.population import REGION_PRESETS
from repro.parallel.sketching import sketch_records_parallel


@pytest.fixture(scope="module")
def six_region_batch():
    campaign = CampaignConfig(subscribers=10, tests_per_client=25)
    records = MeasurementSet()
    for name in sorted(REGION_PRESETS):
        records = records + simulate_region(
            region_preset(name), seed=17, config=campaign
        )
    return records


class TestShardedPlaneBuild:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_merged_plane_matches_serial_pass(
        self, six_region_batch, workers
    ):
        serial = sketch_records(list(six_region_batch))
        merged = sketch_records_parallel(six_region_batch, workers=workers)
        assert len(merged) == len(serial)
        assert merged.regions() == serial.regions()
        assert merged.sources() == serial.sources()
        for region in serial.regions():
            for source in serial.sources():
                assert len(merged.view(region, source)) == len(
                    serial.view(region, source)
                )

    def test_merged_plane_scores_identically_to_serial_plane(
        self, six_region_batch, config
    ):
        # Regions partition across shards, so each cell's digest sees
        # exactly the records a serial pass feeds it, in order: the
        # plane — and therefore every score — is identical.
        serial = sketch_records(list(six_region_batch))
        merged = sketch_records_parallel(six_region_batch, workers=3)
        assert score_regions(merged, config) == score_regions(serial, config)

    def test_empty_input_yields_empty_plane(self):
        plane = sketch_records_parallel([], workers=4)
        assert len(plane) == 0
        assert plane.regions() == ()

    def test_custom_delta_propagates(self, six_region_batch):
        plane = sketch_records_parallel(
            six_region_batch, workers=2, delta=40
        )
        assert plane.delta == 40
