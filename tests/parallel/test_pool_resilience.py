"""Failure-path tests for run_sharded: retry, quarantine, hard deaths."""

import os
import signal

import pytest

from repro.obs import REGISTRY, counter
from repro.parallel import ShardError, fork_available, run_sharded

pytestmark = pytest.mark.timeout(60)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform has no fork start method"
)


# Workers are module-level (they cross the process boundary by
# reference). The child-only failure modes key off the parent pid
# passed as the payload: the fault fires in a forked worker but not in
# the parent's serial retry, modeling a transient worker-environment
# fault (OOM kill, bad node) that heals on retry.

def _ok(payload, shard):
    return list(shard)


def _die_in_child(parent_pid, shard):
    if "die" in shard and os.getpid() != parent_pid:
        os.kill(os.getpid(), signal.SIGKILL)
    return list(shard)


def _unpicklable_in_child(parent_pid, shard):
    if "lambda" in shard and os.getpid() != parent_pid:
        return lambda: shard  # cannot cross the pipe
    return list(shard)


def _always_fails(payload, shard):
    if "bad" in shard:
        raise ValueError(f"deterministic failure on {shard}")
    return list(shard)


def _count_and_fail(payload, shard):
    counter("test.pool.attempted").inc()
    if "bad" in shard:
        raise ValueError("boom")
    return list(shard)


def counters():
    return REGISTRY.snapshot()["counters"]


class TestHardWorkerDeath:
    @needs_fork
    def test_sigkilled_worker_heals_via_serial_retry(self):
        before = counters().get("parallel.shards.retried", 0)
        shards = [("a",), ("die", "b"), ("c",)]
        results = run_sharded(
            _die_in_child, os.getpid(), shards, workers=2
        )
        assert results == [["a"], ["die", "b"], ["c"]]
        assert counters()["parallel.shards.retried"] >= before + 1

    @needs_fork
    def test_sigkilled_worker_without_retry_names_the_shard(self):
        with pytest.raises(ShardError) as excinfo:
            run_sharded(
                _die_in_child,
                os.getpid(),
                [("a",), ("die",)],
                workers=2,
                retry_failed=False,
            )
        assert "worker process died" in str(excinfo.value)
        assert excinfo.value.keys == ("die",)

    @needs_fork
    def test_unpicklable_result_heals_via_serial_retry(self):
        shards = [("a",), ("lambda",), ("c",)]
        results = run_sharded(
            _unpicklable_in_child, os.getpid(), shards, workers=2
        )
        # The parent retry hits the healthy path (pid == parent) and
        # produces the shard's normal result.
        assert results == [["a"], ["lambda"], ["c"]]

    @needs_fork
    def test_unpicklable_result_without_retry_is_actionable(self):
        with pytest.raises(ShardError) as excinfo:
            run_sharded(
                _unpicklable_in_child,
                os.getpid(),
                [("a",), ("lambda",)],
                workers=2,
                retry_failed=False,
            )
        assert "not transportable" in str(excinfo.value)


class TestQuarantine:
    @needs_fork
    def test_deterministic_failure_is_quarantined_not_fatal(self):
        quarantine = []
        results = run_sharded(
            _always_fails,
            None,
            [("a",), ("bad",), ("c",)],
            workers=2,
            quarantine=quarantine,
        )
        assert results == [["a"], None, ["c"]]
        assert len(quarantine) == 1
        assert isinstance(quarantine[0], ShardError)
        assert quarantine[0].keys == ("bad",)
        assert "deterministic failure" in str(quarantine[0])

    @needs_fork
    def test_partial_metrics_merge_despite_quarantine(self):
        before = counters().get("test.pool.attempted", 0)
        quarantine = []
        run_sharded(
            _count_and_fail,
            None,
            [("a",), ("bad",), ("c",)],
            workers=2,
            quarantine=quarantine,
        )
        after = counters()["test.pool.attempted"]
        # Two successful worker shards merged home, plus the parent's
        # serial retry of the poisoned one.
        assert after - before >= 3
        assert counters()["parallel.shards.quarantined"] >= 1

    def test_serial_path_quarantines_identically(self):
        quarantine = []
        results = run_sharded(
            _always_fails,
            None,
            [("a",), ("bad",), ("c",)],
            workers=1,
            quarantine=quarantine,
        )
        assert results == [["a"], None, ["c"]]
        assert quarantine[0].keys == ("bad",)

    @needs_fork
    def test_retry_disabled_still_quarantines(self):
        quarantine = []
        results = run_sharded(
            _always_fails,
            None,
            [("bad",), ("c",)],
            workers=2,
            retry_failed=False,
            quarantine=quarantine,
        )
        assert results == [None, ["c"]]
        assert len(quarantine) == 1

    @needs_fork
    def test_without_quarantine_second_failure_raises(self):
        with pytest.raises(ShardError) as excinfo:
            run_sharded(
                _always_fails, None, [("a",), ("bad",)], workers=2
            )
        assert excinfo.value.shard_index == 1
        assert isinstance(excinfo.value.__cause__, ValueError)
