"""Unit tests for repro.obs.registry (counters, gauges, timers)."""

import json

import pytest

from repro.obs.registry import (
    REGISTRY,
    Counter,
    MetricsRegistry,
    counter,
    timer,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_get_or_create_is_stable(self, registry):
        a = registry.counter("x.y")
        b = registry.counter("x.y")
        assert a is b

    def test_inc(self, registry):
        c = registry.counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_reset_zeroes_in_place(self, registry):
        c = registry.counter("c")
        c.inc(3)
        registry.reset()
        assert c.value == 0
        # Identity survives reset: module-level bindings stay live.
        assert registry.counter("c") is c
        c.inc()
        assert registry.snapshot()["counters"]["c"] == 1


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("g")
        g.set(10.0)
        g.inc(2.5)
        g.dec()
        assert g.value == 11.5

    def test_reset(self, registry):
        g = registry.gauge("g")
        g.set(7.0)
        registry.reset()
        assert g.value == 0.0
        assert registry.gauge("g") is g


class TestTimer:
    def test_observe_accumulates(self, registry):
        t = registry.timer("t")
        for value in (0.1, 0.2, 0.3):
            t.observe(value)
        assert t.count == 3
        assert t.total == pytest.approx(0.6)
        assert t.mean == pytest.approx(0.2)
        assert t.quantile(100.0) == pytest.approx(0.3)

    def test_empty_timer_has_no_quantiles(self, registry):
        t = registry.timer("t")
        assert t.count == 0
        assert t.mean is None
        assert t.quantile(50.0) is None

    def test_time_context_manager(self, registry):
        t = registry.timer("t")
        with t.time():
            pass
        assert t.count == 1
        assert t.total >= 0.0

    def test_reset_drops_observations(self, registry):
        t = registry.timer("t")
        t.observe(1.0)
        registry.reset()
        assert t.count == 0
        assert t.quantile(50.0) is None
        assert registry.timer("t") is t


class TestTimerExemplars:
    """The slow-outlier pointer: exemplar of the largest observation."""

    def test_exemplar_tracks_the_maximum(self, registry):
        t = registry.timer("t")
        t.observe(0.1, exemplar="fast-span")
        t.observe(0.9, exemplar="slow-span")
        t.observe(0.5, exemplar="middling-span")
        assert t.max_value == pytest.approx(0.9)
        assert t.exemplar == "slow-span"

    def test_exemplar_free_observations_leave_it_unset(self, registry):
        t = registry.timer("t")
        t.observe(0.5)
        assert t.exemplar is None

    def test_new_maximum_without_exemplar_keeps_old_pointer(
        self, registry
    ):
        # A bare observation can displace the max; the stale span id is
        # still the best pointer available, so it survives.
        t = registry.timer("t")
        t.observe(0.1, exemplar="small-span")
        t.observe(5.0)
        assert t.max_value == pytest.approx(5.0)
        assert t.exemplar == "small-span"

    def test_snapshot_emits_exemplar_only_when_set(self, registry):
        registry.timer("bare").observe(0.1)
        registry.timer("tagged").observe(0.2, exemplar="abc123")
        timers = registry.snapshot()["timers"]
        assert "exemplar" not in timers["bare"]
        assert timers["tagged"]["exemplar"] == "abc123"

    def test_merge_keeps_exemplar_of_larger_maximum(self, registry):
        registry.timer("t").observe(1.0, exemplar="local-slow")
        source = MetricsRegistry()
        source.timer("t").observe(9.0, exemplar="worker-slower")
        registry.merge(source.snapshot(include_digests=True))
        assert registry.timer("t").exemplar == "worker-slower"
        # The other direction: a smaller incoming max does not steal it.
        lesser = MetricsRegistry()
        lesser.timer("t").observe(0.5, exemplar="worker-fast")
        registry.merge(lesser.snapshot(include_digests=True))
        assert registry.timer("t").exemplar == "worker-slower"

    def test_reset_clears_exemplar(self, registry):
        t = registry.timer("t")
        t.observe(1.0, exemplar="gone")
        registry.reset()
        assert t.exemplar is None

    def test_span_exit_attaches_span_id_as_exemplar(self):
        from repro.obs import REGISTRY, span

        with span("exemplar_unit_test") as s:
            pass
        assert REGISTRY.timer("span.exemplar_unit_test").exemplar == (
            s.span_id
        )


class TestSnapshot:
    def test_structure(self, registry):
        registry.counter("a").inc(2)
        registry.gauge("b").set(1.5)
        registry.timer("c").observe(0.25)
        snap = registry.snapshot()
        assert snap["counters"] == {"a": 2}
        assert snap["gauges"] == {"b": 1.5}
        stats = snap["timers"]["c"]
        assert stats["count"] == 1
        assert stats["total_s"] == pytest.approx(0.25)
        assert stats["p50_s"] == pytest.approx(0.25)
        assert stats["p95_s"] == pytest.approx(0.25)
        assert stats["max_s"] == pytest.approx(0.25)

    def test_snapshot_is_json_compatible(self, registry):
        registry.counter("a").inc()
        registry.timer("t").observe(0.5)
        parsed = json.loads(registry.render_json())
        assert parsed["counters"]["a"] == 1

    def test_render_text_lists_every_instrument(self, registry):
        registry.counter("hits").inc(9)
        registry.gauge("depth").set(3.0)
        registry.timer("lat").observe(0.001)
        registry.timer("idle")  # never observed
        text = registry.render_text()
        assert "counter hits = 9" in text
        assert "gauge   depth = 3.0" in text
        assert "timer   lat: n=1" in text
        assert "timer   idle: n=0" in text

    def test_iter_yields_all_names(self, registry):
        registry.counter("c")
        registry.gauge("g")
        registry.timer("t")
        assert list(registry) == ["c", "g", "t"]


class TestDefaultRegistry:
    def test_module_helpers_target_default_registry(self):
        c = counter("test_registry.module_helper")
        assert isinstance(c, Counter)
        assert REGISTRY.counter("test_registry.module_helper") is c
        t = timer("test_registry.module_timer")
        assert REGISTRY.timer("test_registry.module_timer") is t
