"""Unit tests for repro.obs.registry (counters, gauges, timers)."""

import json

import pytest

from repro.obs.registry import (
    REGISTRY,
    Counter,
    MetricsRegistry,
    counter,
    timer,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_get_or_create_is_stable(self, registry):
        a = registry.counter("x.y")
        b = registry.counter("x.y")
        assert a is b

    def test_inc(self, registry):
        c = registry.counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_reset_zeroes_in_place(self, registry):
        c = registry.counter("c")
        c.inc(3)
        registry.reset()
        assert c.value == 0
        # Identity survives reset: module-level bindings stay live.
        assert registry.counter("c") is c
        c.inc()
        assert registry.snapshot()["counters"]["c"] == 1


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("g")
        g.set(10.0)
        g.inc(2.5)
        g.dec()
        assert g.value == 11.5

    def test_reset(self, registry):
        g = registry.gauge("g")
        g.set(7.0)
        registry.reset()
        assert g.value == 0.0
        assert registry.gauge("g") is g


class TestTimer:
    def test_observe_accumulates(self, registry):
        t = registry.timer("t")
        for value in (0.1, 0.2, 0.3):
            t.observe(value)
        assert t.count == 3
        assert t.total == pytest.approx(0.6)
        assert t.mean == pytest.approx(0.2)
        assert t.quantile(100.0) == pytest.approx(0.3)

    def test_empty_timer_has_no_quantiles(self, registry):
        t = registry.timer("t")
        assert t.count == 0
        assert t.mean is None
        assert t.quantile(50.0) is None

    def test_time_context_manager(self, registry):
        t = registry.timer("t")
        with t.time():
            pass
        assert t.count == 1
        assert t.total >= 0.0

    def test_reset_drops_observations(self, registry):
        t = registry.timer("t")
        t.observe(1.0)
        registry.reset()
        assert t.count == 0
        assert t.quantile(50.0) is None
        assert registry.timer("t") is t


class TestSnapshot:
    def test_structure(self, registry):
        registry.counter("a").inc(2)
        registry.gauge("b").set(1.5)
        registry.timer("c").observe(0.25)
        snap = registry.snapshot()
        assert snap["counters"] == {"a": 2}
        assert snap["gauges"] == {"b": 1.5}
        stats = snap["timers"]["c"]
        assert stats["count"] == 1
        assert stats["total_s"] == pytest.approx(0.25)
        assert stats["p50_s"] == pytest.approx(0.25)
        assert stats["p95_s"] == pytest.approx(0.25)
        assert stats["max_s"] == pytest.approx(0.25)

    def test_snapshot_is_json_compatible(self, registry):
        registry.counter("a").inc()
        registry.timer("t").observe(0.5)
        parsed = json.loads(registry.render_json())
        assert parsed["counters"]["a"] == 1

    def test_render_text_lists_every_instrument(self, registry):
        registry.counter("hits").inc(9)
        registry.gauge("depth").set(3.0)
        registry.timer("lat").observe(0.001)
        registry.timer("idle")  # never observed
        text = registry.render_text()
        assert "counter hits = 9" in text
        assert "gauge   depth = 3.0" in text
        assert "timer   lat: n=1" in text
        assert "timer   idle: n=0" in text

    def test_iter_yields_all_names(self, registry):
        registry.counter("c")
        registry.gauge("g")
        registry.timer("t")
        assert list(registry) == ["c", "g", "t"]


class TestDefaultRegistry:
    def test_module_helpers_target_default_registry(self):
        c = counter("test_registry.module_helper")
        assert isinstance(c, Counter)
        assert REGISTRY.counter("test_registry.module_helper") is c
        t = timer("test_registry.module_timer")
        assert REGISTRY.timer("test_registry.module_timer") is t
