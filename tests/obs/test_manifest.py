"""Unit tests for repro.obs.manifest (provenance capture and diffing)."""

import hashlib
import json

import pytest

from repro.core.config import paper_config
from repro.measurements.io import IngestStats
from repro.obs.manifest import (
    MANIFEST_SUFFIX,
    RunContext,
    RunManifest,
    config_digest,
    diff_manifests,
    file_digest,
    find_manifests,
    render_diff,
)
from repro.obs.registry import MetricsRegistry


@pytest.fixture()
def input_file(tmp_path):
    path = tmp_path / "data.jsonl"
    path.write_text('{"a": 1}\n{"a": 2}\n{"a": 3}\n')
    return path


class TestFileDigest:
    def test_sha_size_and_lines(self, input_file):
        entry = file_digest(input_file)
        raw = input_file.read_bytes()
        assert entry["sha256"] == hashlib.sha256(raw).hexdigest()
        assert entry["bytes"] == len(raw)
        assert entry["lines"] == 3
        assert entry["path"] == str(input_file)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        entry = file_digest(path)
        assert entry["bytes"] == 0
        assert entry["lines"] == 0
        assert entry["sha256"] == hashlib.sha256(b"").hexdigest()

    def test_multi_chunk_file_streams_correctly(self, tmp_path):
        """A file spanning several 1 MiB read chunks digests the same
        as a whole-file hash — including a line that straddles the
        chunk boundary."""
        line = b'{"x": "' + b"a" * 500 + b'"}\n'
        raw = line * (3 * (1 << 20) // len(line) + 1)
        assert len(raw) > 3 * (1 << 20)
        path = tmp_path / "big.jsonl"
        path.write_bytes(raw)
        entry = file_digest(path)
        assert entry["sha256"] == hashlib.sha256(raw).hexdigest()
        assert entry["bytes"] == len(raw)
        assert entry["lines"] == raw.count(b"\n")

    def test_symlink_digests_its_target(self, tmp_path, input_file):
        link = tmp_path / "link.jsonl"
        try:
            link.symlink_to(input_file)
        except (OSError, NotImplementedError):
            pytest.skip("platform does not support symlinks")
        entry = file_digest(link)
        target = file_digest(input_file)
        assert entry["sha256"] == target["sha256"]
        assert entry["bytes"] == target["bytes"]
        # The manifest records the path the run was actually given.
        assert entry["path"] == str(link)


class TestConfigDigest:
    def test_deterministic_and_content_addressed(self):
        config = paper_config()
        assert config_digest(config) == config_digest(paper_config())
        assert len(config_digest(config)) == 64


class TestRunContext:
    def test_build_collects_everything(self, input_file):
        registry = MetricsRegistry()
        registry.counter("probe.runner.retried").inc(4)
        context = RunContext(["score", str(input_file)])
        context.set_config(paper_config())
        stats = IngestStats(read=3, skipped=1)
        context.add_input(input_file, stats)
        context.add_output("out.md")
        manifest = context.build(registry)
        assert manifest.command == ("score", str(input_file))
        assert manifest.package_version
        assert manifest.config_sha256 == config_digest(paper_config())
        assert manifest.config["aggregation"]["percentile"] == 95.0
        assert manifest.inputs[0]["records_read"] == 3
        assert manifest.inputs[0]["records_skipped"] == 1
        assert manifest.outputs == ("out.md",)
        assert manifest.metrics["counters"]["probe.runner.retried"] == 4
        assert manifest.duration_s >= 0.0
        assert manifest.finished_unix >= manifest.started_unix

    def test_config_optional(self):
        manifest = RunContext(["tiers"]).build(MetricsRegistry())
        assert manifest.config is None
        assert manifest.config_sha256 is None

    def test_cache_source_defaults_to_none(self):
        manifest = RunContext(["score"]).build(MetricsRegistry())
        assert manifest.cache is None
        assert manifest.to_dict()["cache"] is None

    def test_cache_source_round_trips(self, tmp_path):
        context = RunContext(["score", "--from-cache", "cache"])
        context.set_cache_source(
            tmp_path / "cache",
            "ab" * 32,
            tiles=6,
            granularity="region",
        )
        manifest = context.build(MetricsRegistry())
        assert manifest.cache == {
            "path": str(tmp_path / "cache"),
            "manifest_sha256": "ab" * 32,
            "tiles": 6,
            "granularity": "region",
        }
        reloaded = RunManifest.from_dict(manifest.to_dict())
        assert reloaded.cache == manifest.cache

    def test_write_and_load_round_trip(self, tmp_path, input_file):
        context = RunContext(["score"])
        context.set_config(paper_config())
        context.add_input(input_file)
        path = tmp_path / f"run{MANIFEST_SUFFIX}"
        written = context.write(path, MetricsRegistry())
        loaded = RunManifest.load(path)
        assert loaded.to_dict() == written.to_dict()
        # And the document on disk is stable-keyed JSON.
        document = json.loads(path.read_text())
        assert document["manifest_version"] == 1


class TestDiff:
    def _manifest(self, counters=None, percentile=95.0, timers=None):
        config = paper_config().to_dict()
        config["aggregation"]["percentile"] = percentile
        return RunManifest(
            command=("score", "x.jsonl"),
            package_version="1.0.0",
            started_unix=100.0,
            finished_unix=101.0,
            config=config,
            config_sha256="c" * 64,
            metrics={
                "counters": counters or {},
                "gauges": {},
                "timers": timers or {},
            },
        )

    def test_identical_manifests_diff_empty(self):
        a = self._manifest(counters={"probe.runner.retried": 3})
        diff = diff_manifests(a, a)
        assert all(not section for section in diff.values())
        assert "no config or metric differences" in render_diff(a, a)

    def test_counter_deltas_reported(self):
        a = self._manifest(counters={"probe.runner.retried": 3})
        b = self._manifest(counters={"probe.runner.retried": 9})
        diff = diff_manifests(a, b)
        assert diff["counters"] == {"probe.runner.retried": (3, 9)}
        rendered = render_diff(a, b, diff)
        assert "probe.runner.retried: 3 -> 9  (+6)" in rendered

    def test_config_deltas_use_dotted_paths(self):
        a = self._manifest(percentile=95.0)
        b = self._manifest(percentile=90.0)
        diff = diff_manifests(a, b)
        assert diff["config"]["aggregation.percentile"] == (95.0, 90.0)

    def test_one_sided_keys_surface_as_none(self):
        a = self._manifest(counters={"only.in.a": 1})
        b = self._manifest(counters={"only.in.b": 2})
        diff = diff_manifests(a, b)
        assert diff["counters"]["only.in.a"] == (1, None)
        assert diff["counters"]["only.in.b"] == (None, 2)

    def test_timer_totals_compared(self):
        a = self._manifest(timers={"span.score": {"count": 1, "total_s": 0.5}})
        b = self._manifest(timers={"span.score": {"count": 1, "total_s": 0.2}})
        diff = diff_manifests(a, b)
        assert diff["timers"]["span.score"] == (0.5, 0.2)


class TestFindManifests:
    def test_directories_globbed_files_taken_verbatim(self, tmp_path):
        nested = tmp_path / "runs" / "week1"
        nested.mkdir(parents=True)
        a = nested / f"a{MANIFEST_SUFFIX}"
        a.write_text("{}")
        plain = tmp_path / "custom.json"
        plain.write_text("{}")
        ignored = nested / "notes.txt"
        ignored.write_text("x")
        found = find_manifests([tmp_path, plain])
        assert a in found
        assert plain in found
        assert ignored not in found
