"""Unit tests for repro.obs.logs (setup, formatters, JSONL shape)."""

import io
import json
import logging

import pytest

from repro.obs.logs import (
    JsonlFormatter,
    TextFormatter,
    get_logger,
    parse_level,
    setup_logging,
)


@pytest.fixture(autouse=True)
def _restore_repro_logger():
    """Leave the shared 'repro' logger as we found it."""
    logger = logging.getLogger("repro")
    saved = (logger.level, list(logger.handlers), logger.propagate)
    yield
    logger.setLevel(saved[0])
    logger.handlers = saved[1]
    logger.propagate = saved[2]


def record(msg="hello", ctx=None, level=logging.INFO):
    rec = logging.LogRecord(
        name="repro.test", level=level, pathname=__file__, lineno=1,
        msg=msg, args=(), exc_info=None,
    )
    if ctx is not None:
        rec.ctx = ctx
    return rec


class TestFormatters:
    def test_jsonl_is_one_parseable_object(self):
        line = JsonlFormatter().format(record("event happened", {"n": 3}))
        document = json.loads(line)
        assert document["event"] == "event happened"
        assert document["level"] == "info"
        assert document["logger"] == "repro.test"
        assert document["ctx"] == {"n": 3}
        assert "\n" not in line

    def test_jsonl_without_ctx_omits_key(self):
        document = json.loads(JsonlFormatter().format(record()))
        assert "ctx" not in document

    def test_text_format_includes_ctx_pairs(self):
        line = TextFormatter().format(record("skipped", {"path": "x.jsonl"}))
        assert "repro.test: skipped" in line
        assert "path=x.jsonl" in line


class TestSetup:
    def test_installs_single_handler_idempotently(self):
        logger = setup_logging(level="info")
        setup_logging(level="debug")
        marked = [
            h for h in logger.handlers
            if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(marked) == 1
        assert logger.level == logging.DEBUG

    def test_level_controls_emission(self):
        stream = io.StringIO()
        setup_logging(level="error", stream=stream)
        get_logger("unit").warning("not shown")
        get_logger("unit").error("shown")
        output = stream.getvalue()
        assert "not shown" not in output
        assert "shown" in output

    def test_json_mode_emits_jsonl(self):
        stream = io.StringIO()
        setup_logging(level="info", json_mode=True, stream=stream)
        get_logger("unit").info("structured", extra={"ctx": {"k": "v"}})
        document = json.loads(stream.getvalue().strip())
        assert document["event"] == "structured"
        assert document["ctx"] == {"k": "v"}


class TestHelpers:
    def test_get_logger_prefixes_bare_names(self):
        assert get_logger("ingest").name == "repro.ingest"
        assert get_logger("repro.measurements.io").name == "repro.measurements.io"

    def test_parse_level(self):
        assert parse_level("DEBUG") == logging.DEBUG
        assert parse_level("warning") == logging.WARNING
        with pytest.raises(ValueError, match="unknown log level"):
            parse_level("loud")
