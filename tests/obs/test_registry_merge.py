"""Unit tests for MetricsRegistry.merge (cross-process aggregation)."""

import pytest

from repro.obs.registry import MetricsRegistry


@pytest.fixture()
def registry():
    return MetricsRegistry()


def _worker_registry(counts, gauge_value, timer_obs):
    source = MetricsRegistry()
    for name, value in counts.items():
        source.counter(name).inc(value)
    source.gauge("g").set(gauge_value)
    for value in timer_obs:
        source.timer("t").observe(value)
    return source


class TestCounters:
    def test_counters_add(self, registry):
        registry.counter("c").inc(3)
        registry.merge({"counters": {"c": 4, "new": 2}})
        snap = registry.snapshot()["counters"]
        assert snap["c"] == 7
        assert snap["new"] == 2

    def test_merge_commutes(self):
        a = _worker_registry({"x": 3, "y": 1}, 1.0, [0.1]).snapshot(
            include_digests=True
        )
        b = _worker_registry({"x": 5, "z": 2}, 2.0, [0.2, 0.4]).snapshot(
            include_digests=True
        )
        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge(a)
        ab.merge(b)
        ba.merge(b)
        ba.merge(a)
        assert ab.snapshot()["counters"] == ba.snapshot()["counters"]
        # Timer count/total are exactly commutative too.
        t_ab = ab.snapshot()["timers"]["t"]
        t_ba = ba.snapshot()["timers"]["t"]
        assert t_ab["count"] == t_ba["count"] == 3
        assert t_ab["total_s"] == pytest.approx(t_ba["total_s"])


class TestGauges:
    def test_gauges_last_write_wins(self, registry):
        registry.gauge("g").set(10.0)
        registry.merge({"gauges": {"g": 3.0}})
        assert registry.snapshot()["gauges"]["g"] == 3.0


class TestTimers:
    def test_count_and_total_add(self, registry):
        registry.timer("t").observe(1.0)
        registry.merge({"timers": {"t": {"count": 2, "total_s": 3.0}}})
        entry = registry.snapshot()["timers"]["t"]
        assert entry["count"] == 3
        assert entry["total_s"] == pytest.approx(4.0)

    def test_digest_merge_keeps_quantiles_truthful(self, registry):
        source = MetricsRegistry()
        for value in (0.1, 0.2, 0.3, 10.0):
            source.timer("t").observe(value)
        registry.merge(source.snapshot(include_digests=True))
        merged = registry.timer("t")
        assert merged.count == 4
        # Max observation survives the digest transfer exactly.
        assert merged.quantile(100.0) == pytest.approx(10.0)
        assert merged.quantile(50.0) == pytest.approx(0.25, abs=0.1)

    def test_merge_into_observed_timer_combines_distributions(
        self, registry
    ):
        registry.timer("t").observe(1.0)
        source = MetricsRegistry()
        source.timer("t").observe(5.0)
        registry.merge(source.snapshot(include_digests=True))
        assert registry.timer("t").count == 2
        assert registry.timer("t").quantile(100.0) == pytest.approx(5.0)

    def test_digest_free_snapshot_still_merges(self, registry):
        registry.merge({"timers": {"t": {"count": 4, "total_s": 2.0}}})
        assert registry.timer("t").count == 4
        # No digest shipped: quantiles stay unknown, not wrong.
        assert registry.timer("t").quantile(50.0) is None


class TestRoundTrip:
    def test_merge_into_fresh_registry_reproduces_source(self):
        source = _worker_registry({"a": 7}, 4.5, [0.5, 1.5])
        clone = MetricsRegistry()
        clone.merge(source.snapshot(include_digests=True))
        assert clone.snapshot() == source.snapshot()

    def test_snapshot_with_digests_is_superset(self):
        source = _worker_registry({"a": 1}, 0.0, [0.25])
        plain = source.snapshot()
        rich = source.snapshot(include_digests=True)
        for name, entry in plain["timers"].items():
            for key, value in entry.items():
                assert rich["timers"][name][key] == value
        assert "digest" in rich["timers"]["t"]
