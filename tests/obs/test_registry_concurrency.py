"""Concurrency tests for repro.obs.registry.

The registry's contract under threads, as documented in registry.py:
instrument *creation* is locked (stable identity across races), the
increment path is lock-free (a racing ``+=`` may lose a tick but never
raises), timer digest operations take a per-timer lock (a scrape
snapshotting quantiles mid-observe must not corrupt centroid state),
and ``snapshot()``/``reset()`` may run concurrently with all of it.
"""

import threading

from repro.obs.registry import MetricsRegistry

THREADS = 8
ITERATIONS = 300


class TestConcurrentRegistry:
    def test_hammered_registry_never_raises_and_identity_is_stable(self):
        registry = MetricsRegistry()
        # Get-or-create the shared instruments once up front, so the
        # identity assertions below have a reference object.
        shared_counter = registry.counter("hammer.shared.counter")
        shared_timer = registry.timer("hammer.shared.timer")
        errors = []
        barrier = threading.Barrier(THREADS + 2)

        def worker(worker_id):
            try:
                barrier.wait()
                for i in range(ITERATIONS):
                    # Get-or-create races: every thread must receive
                    # the same instrument object every time.
                    assert registry.counter("hammer.shared.counter") is (
                        shared_counter
                    )
                    assert registry.timer("hammer.shared.timer") is (
                        shared_timer
                    )
                    shared_counter.inc()
                    shared_timer.observe(0.001 * (i % 7))
                    # Fresh names exercise dict growth under snapshot.
                    registry.counter(f"hammer.w{worker_id}.c{i}").inc()
                    registry.gauge(f"hammer.w{worker_id}.g{i}").set(i)
                    registry.timer(f"hammer.w{worker_id}.t{i}").observe(
                        0.0001
                    )
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        def snapshotter():
            try:
                barrier.wait()
                for _ in range(ITERATIONS // 2):
                    snap = registry.snapshot()
                    assert "counters" in snap
                    registry.render_prometheus()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def resetter():
            try:
                barrier.wait()
                for _ in range(ITERATIONS // 10):
                    registry.reset()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(worker_id,))
            for worker_id in range(THREADS)
        ]
        threads.append(threading.Thread(target=snapshotter))
        threads.append(threading.Thread(target=resetter))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not any(thread.is_alive() for thread in threads)
        assert errors == []
        # Identity survived every reset in flight.
        assert registry.counter("hammer.shared.counter") is shared_counter
        assert registry.timer("hammer.shared.timer") is shared_timer

    def test_lock_free_increment_bound_on_lost_ticks(self):
        # The documented trade-off: without a mutex per tick, a racing
        # `+=` can lose increments but the count never exceeds the true
        # total and never goes negative or raises.
        registry = MetricsRegistry()
        c = registry.counter("hammer.bound")
        total = 4 * 2000

        def work():
            for _ in range(2000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert 0 < c.value <= total

    def test_snapshot_during_observe_reports_consistent_timers(self):
        # Quantile reads lock against digest compression: every
        # snapshot taken mid-stream must either omit quantiles (empty)
        # or report values inside the observed range.
        registry = MetricsRegistry()
        t = registry.timer("hammer.quantiles")
        stop = threading.Event()
        errors = []

        def observe():
            value = 0
            while not stop.is_set():
                t.observe((value % 100) / 100.0)
                value += 1

        def scrape():
            try:
                for _ in range(200):
                    snap = registry.snapshot()["timers"][
                        "hammer.quantiles"
                    ]
                    if snap["count"]:
                        p50 = snap.get("p50_s")
                        if p50 is not None:
                            assert -0.001 <= p50 <= 1.001
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                stop.set()

        observer = threading.Thread(target=observe)
        scraper = threading.Thread(target=scrape)
        observer.start()
        scraper.start()
        scraper.join(timeout=60.0)
        stop.set()
        observer.join(timeout=60.0)
        assert errors == []
