"""End-to-end checks that the pipeline actually reports into the registry.

Every test reads counters as *deltas*: the default registry is
process-wide and other tests also pump it, so absolute values mean
nothing but per-operation increments are exact.
"""

import logging

import pytest

from repro.core.config import paper_config
from repro.core.exceptions import BackendError
from repro.core.scoring import score_region, score_regions
from repro.measurements.collection import MeasurementSet
from repro.measurements.io import IngestStats, iter_jsonl, read_jsonl, write_jsonl
from repro.measurements.record import Measurement
from repro.obs import REGISTRY
from repro.probing.backends import ProbeRequest
from repro.probing.runner import ProbeRunner
from repro.probing.sinks import MemorySink


def _counter(name):
    return REGISTRY.counter(name).value


@pytest.fixture()
def records():
    out = []
    for i in range(40):
        for source in ("ndt", "ookla"):
            for region in ("east", "west"):
                out.append(
                    Measurement(
                        region=region,
                        source=source,
                        timestamp=float(i),
                        download_mbps=50.0 + i,
                        upload_mbps=10.0 + i,
                        latency_ms=20.0,
                        packet_loss=0.001,
                    )
                )
    return MeasurementSet(out)


class TestQuantileCacheCounters:
    def test_columnar_batch_scoring_reports_hits_and_misses(self, records):
        config = paper_config()
        hits0 = _counter("quantile_cache.columnar.hits")
        misses0 = _counter("quantile_cache.columnar.misses")
        sorts0 = _counter("quantile_cache.columnar.sorts")

        batch = score_regions(records, config)

        misses = _counter("quantile_cache.columnar.misses") - misses0
        hits = _counter("quantile_cache.columnar.hits") - hits0
        sorts = _counter("quantile_cache.columnar.sorts") - sorts0
        assert misses > 0
        assert hits > 0  # the six-use-case fan-out re-asks quantiles
        assert 0 < sorts <= misses

        # Instrumentation must not perturb the numbers: the batch path
        # still matches per-region scoring bit for bit.
        for region, breakdown in batch.items():
            sources = records.for_region(region).group_by_source()
            assert score_region(sources, config).to_dict() == breakdown.to_dict()

    def test_rowset_quantiles_report_hits_and_misses(self, records):
        from repro.core.metrics import Metric

        subset = records.for_region("east")
        hits0 = _counter("quantile_cache.rowset.hits")
        misses0 = _counter("quantile_cache.rowset.misses")
        first = subset.quantile(Metric.DOWNLOAD, 95.0)
        second = subset.quantile(Metric.DOWNLOAD, 95.0)
        assert first == second
        assert _counter("quantile_cache.rowset.misses") - misses0 == 1
        assert _counter("quantile_cache.rowset.hits") - hits0 == 1


class FlakyBackend:
    """Fails the first ``failures`` attempts of every probe."""

    def __init__(self, failures):
        self.failures = failures
        self._attempts = {}

    def run(self, probe):
        seen = self._attempts.get(probe.timestamp, 0)
        self._attempts[probe.timestamp] = seen + 1
        if seen < self.failures:
            raise BackendError("transient")
        return Measurement(
            region=probe.region,
            source=probe.client,
            timestamp=probe.timestamp,
            download_mbps=10.0,
        )

    def regions(self):
        return ("r",)

    def clients(self):
        return ("ndt",)


class TestRunnerCounters:
    def test_retry_and_abandon_counters_advance(self):
        scheduled0 = _counter("probe.runner.scheduled")
        retried0 = _counter("probe.runner.retried")
        abandoned0 = _counter("probe.runner.abandoned")

        runner = ProbeRunner(FlakyBackend(failures=1), MemorySink(),
                             max_attempts=2)
        runner.run([ProbeRequest("ndt", "r", float(i)) for i in range(5)])
        # Every probe retried once then succeeded.
        assert _counter("probe.runner.scheduled") - scheduled0 == 5
        assert _counter("probe.runner.retried") - retried0 == 5
        assert _counter("probe.runner.abandoned") - abandoned0 == 0

        runner = ProbeRunner(FlakyBackend(failures=9), MemorySink(),
                             max_attempts=2)
        runner.run([ProbeRequest("ndt", "r", float(i)) for i in range(3)])
        assert _counter("probe.runner.abandoned") - abandoned0 == 3

    def test_latency_timer_observes_every_attempt(self):
        latency = REGISTRY.timer("probe.latency.FlakyBackend")
        before = latency.count
        runner = ProbeRunner(FlakyBackend(failures=1), MemorySink(),
                             max_attempts=2)
        runner.run([ProbeRequest("ndt", "r", 0.0)])
        assert latency.count - before == 2  # one failure + one success


class TestIngestCounters:
    @pytest.fixture()
    def dirty_file(self, tmp_path):
        records = MeasurementSet(
            [
                Measurement(region="r", source="ndt", timestamp=1.0,
                            download_mbps=5.0),
                Measurement(region="r", source="ndt", timestamp=2.0,
                            download_mbps=6.0),
            ]
        )
        path = tmp_path / "dirty.jsonl"
        write_jsonl(records, path)
        with open(path, "a") as handle:
            handle.write("{broken\n")
            handle.write('{"region": "x"}\n')  # valid JSON, invalid record
        return path

    def test_skip_mode_counts_and_warns(self, dirty_file, caplog):
        read0 = _counter("ingest.jsonl.lines")
        skipped0 = _counter("ingest.jsonl.skipped")
        logger = logging.getLogger("repro.measurements.io")
        with caplog.at_level(logging.WARNING, logger=logger.name):
            saved = logging.getLogger("repro").propagate
            logging.getLogger("repro").propagate = True
            try:
                loaded = read_jsonl(dirty_file, on_error="skip")
            finally:
                logging.getLogger("repro").propagate = saved
        assert len(loaded) == 2
        assert _counter("ingest.jsonl.lines") - read0 == 2
        assert _counter("ingest.jsonl.skipped") - skipped0 == 2
        warnings = [r for r in caplog.records if r.levelno == logging.WARNING]
        assert any("skipped 2 malformed line(s)" in r.getMessage()
                   for r in warnings)

    def test_iter_jsonl_fills_caller_stats(self, dirty_file):
        stats = IngestStats()
        consumed = list(iter_jsonl(dirty_file, on_error="skip", stats=stats))
        assert len(consumed) == 2
        assert stats.read == 2
        assert stats.skipped == 2

    def test_raise_mode_skips_nothing(self, records, tmp_path):
        path = tmp_path / "clean.jsonl"
        write_jsonl(records, path)
        skipped0 = _counter("ingest.jsonl.skipped")
        read_jsonl(path)
        assert _counter("ingest.jsonl.skipped") == skipped0


class TestMonitorCounters:
    def test_unscorable_window_is_counted(self):
        from repro.probing.monitor import BarometerMonitor

        # Plenty of records, but from a dataset the config gives zero
        # weight everywhere -> DataError inside score_region, swallowed
        # but counted.
        records = MeasurementSet(
            [
                Measurement(region="r", source="mystery", timestamp=float(i),
                            download_mbps=10.0)
                for i in range(30)
            ]
        )
        unscorable0 = _counter("monitor.windows.unscorable")
        monitor = BarometerMonitor(paper_config(), min_samples=10)
        alerts = monitor.ingest(records, 0.0, 100.0)
        assert alerts == []
        assert _counter("monitor.windows.unscorable") - unscorable0 == 1
