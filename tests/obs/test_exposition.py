"""Unit tests for repro.obs.exposition (Prometheus text rendering)."""

import re

import pytest

from repro.obs.exposition import (
    escape_help,
    escape_label_value,
    format_labels,
    prometheus_name,
    render_prometheus,
)
from repro.obs.registry import MetricsRegistry

# Prometheus text-format 0.0.4 line grammar: HELP/TYPE comments and
# sample lines `name{labels} value`. Deliberately strict about metric
# names so a mangling regression fails loudly.
_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_HELP = re.compile(rf"^# HELP {_NAME} .+$")
_TYPE = re.compile(rf"^# TYPE {_NAME} (counter|gauge|summary|histogram|untyped)$")
_SAMPLE = re.compile(
    rf"^{_NAME}(\{{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\}})? "
    r"[-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|[0-9]+)$"
)


def assert_valid_exposition(text):
    """Every line must match the Prometheus text-format line grammar."""
    assert text == "" or text.endswith("\n")
    for line in text.splitlines():
        assert (
            _HELP.match(line)
            or _TYPE.match(line)
            or _SAMPLE.match(line)
        ), f"invalid exposition line: {line!r}"


@pytest.fixture()
def registry():
    registry = MetricsRegistry()
    registry.counter("probe.runner.retried").inc(12)
    registry.gauge("monitor.last_cycle_unix").set(1.7e9)
    exercised = registry.timer("span.score_regions")
    for value in (0.010, 0.020, 0.030):
        exercised.observe(value)
    registry.timer("span.never_ran")  # created, zero observations
    return registry


class TestPrometheusName:
    def test_dots_become_underscores(self):
        assert prometheus_name("probe.runner.retried") == (
            "iqb_probe_runner_retried"
        )

    def test_arbitrary_invalid_chars_mangled(self):
        assert prometheus_name("a-b/c d.e") == "iqb_a_b_c_d_e"

    def test_leading_digit_saved_by_prefix(self):
        assert re.match(r"^[a-zA-Z_:]", prometheus_name("95th.percentile"))


class TestRenderPrometheus:
    def test_output_parses_as_prometheus_text(self, registry):
        assert_valid_exposition(render_prometheus(registry))

    def test_counter_gets_total_suffix_and_type(self, registry):
        text = render_prometheus(registry)
        assert "# TYPE iqb_probe_runner_retried_total counter" in text
        assert "iqb_probe_runner_retried_total 12" in text

    def test_gauge_emitted_as_is(self, registry):
        text = render_prometheus(registry)
        assert "# TYPE iqb_monitor_last_cycle_unix gauge" in text

    def test_timer_is_summary_with_quantiles(self, registry):
        text = render_prometheus(registry)
        assert "# TYPE iqb_span_score_regions_seconds summary" in text
        assert 'iqb_span_score_regions_seconds{quantile="0.5"} 0.02' in text
        assert 'iqb_span_score_regions_seconds{quantile="0.95"}' in text
        assert 'iqb_span_score_regions_seconds{quantile="1.0"} 0.03' in text
        assert "iqb_span_score_regions_seconds_count 3" in text
        assert re.search(
            r"iqb_span_score_regions_seconds_sum 0\.06", text
        )

    def test_empty_timer_has_count_sum_but_no_quantiles(self, registry):
        text = render_prometheus(registry)
        assert "iqb_span_never_ran_seconds_count 0" in text
        assert "iqb_span_never_ran_seconds_sum 0" in text
        assert 'iqb_span_never_ran_seconds{' not in text

    def test_help_preserves_dotted_name(self, registry):
        text = render_prometheus(registry)
        assert (
            "# HELP iqb_probe_runner_retried_total "
            "IQB counter probe.runner.retried" in text
        )

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_registry_method_matches_function(self, registry):
        assert registry.render_prometheus() == render_prometheus(registry)


def _unescape_label_value(escaped):
    """Inverse of the 0.0.4 label-value escaping, for round-trip checks."""
    out = []
    i = 0
    while i < len(escaped):
        char = escaped[i]
        if char == "\\":
            nxt = escaped[i + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}[nxt])
            i += 2
        else:
            out.append(char)
            i += 1
    return "".join(out)


class TestEscaping:
    """0.0.4 escaping of operator-supplied strings (regression: a
    hostile region name must not corrupt the exposition)."""

    HOSTILE = 'ru"ral\nnorth\\east'

    def test_help_escapes_backslash_and_newline(self):
        assert escape_help("a\\b\nc") == "a\\\\b\\nc"

    def test_label_value_additionally_escapes_quote(self):
        assert escape_label_value(self.HOSTILE) == (
            'ru\\"ral\\nnorth\\\\east'
        )

    def test_label_value_round_trips(self):
        assert (
            _unescape_label_value(escape_label_value(self.HOSTILE))
            == self.HOSTILE
        )

    def test_format_labels_renders_escaped_pairs(self):
        rendered = format_labels(
            {"region": self.HOSTILE, "dataset": "ookla"}
        )
        assert rendered == (
            '{region="ru\\"ral\\nnorth\\\\east",dataset="ookla"}'
        )

    def test_format_labels_empty_is_empty_string(self):
        assert format_labels({}) == ""

    def test_hostile_labels_stay_on_one_physical_line(self):
        rendered = format_labels({"region": self.HOSTILE})
        assert "\n" not in rendered
        # The rendered form has no *unescaped* quote except the two
        # delimiters, so a scraper's tokenizer cannot be derailed.
        unguarded = re.sub(r'\\.', "", rendered)
        assert unguarded.count('"') == 2

    def test_plain_values_pass_through_unchanged(self):
        assert escape_label_value("metro-fiber") == "metro-fiber"
        assert escape_help("IQB counter probe.runner.retried") == (
            "IQB counter probe.runner.retried"
        )
