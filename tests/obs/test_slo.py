"""Unit tests for repro.obs.slo (rules, loading, burn-rate engine).

Every evaluation here drives the engine with explicit timestamps — no
sleeps, no wall clock — which is exactly the contract the module
promises (deterministic replay).
"""

import json

import pytest

from repro.core.exceptions import SchemaError
from repro.obs.slo import (
    HealthReport,
    SLOEvaluator,
    SLORule,
    SLOStatus,
    load_rules,
    rule_from_dict,
    worst_state,
)


def _freshness_rule(**overrides):
    base = dict(
        name="fresh",
        signal="freshness",
        target=0.9,
        threshold_s=60.0,
        fast_window_s=600.0,
        slow_window_s=3600.0,
        warn_burn=2.0,
        page_burn=10.0,
    )
    base.update(overrides)
    return SLORule(**base)


class TestWorstState:
    def test_empty_is_ok(self):
        assert worst_state([]) == "ok"

    def test_page_dominates(self):
        assert worst_state(["ok", "page", "warn"]) == "page"

    def test_warn_beats_ok(self):
        assert worst_state(["ok", "warn", "ok"]) == "warn"


class TestRuleValidation:
    def test_freshness_requires_threshold(self):
        with pytest.raises(ValueError, match="threshold_s"):
            SLORule(name="f", signal="freshness")

    def test_latency_requires_timer(self):
        with pytest.raises(ValueError, match="timer"):
            SLORule(name="l", signal="latency", threshold_s=1.0)

    def test_error_rate_requires_both_counters(self):
        with pytest.raises(ValueError, match="bad_counter"):
            SLORule(name="e", signal="error_rate", bad_counter="x")

    def test_unknown_signal_rejected(self):
        with pytest.raises(ValueError, match="unknown SLO signal"):
            SLORule(name="x", signal="vibes")

    def test_target_must_be_fraction(self):
        with pytest.raises(ValueError, match="target"):
            _freshness_rule(target=1.0)

    def test_windows_must_be_ordered(self):
        with pytest.raises(ValueError, match="fast <= slow"):
            _freshness_rule(fast_window_s=7200.0, slow_window_s=3600.0)

    def test_burns_must_be_ordered(self):
        with pytest.raises(ValueError, match="warn <= page"):
            _freshness_rule(warn_burn=20.0, page_burn=10.0)

    def test_error_budget_floors_away_from_zero(self):
        rule = _freshness_rule(target=0.5)
        assert rule.error_budget == pytest.approx(0.5)

    def test_to_dict_round_trips(self):
        rule = _freshness_rule(dataset="ookla", region="metro")
        assert rule_from_dict(rule.to_dict()) == rule


class TestRuleLoading:
    def test_loads_bare_list(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps([_freshness_rule().to_dict()]))
        (rule,) = load_rules(str(path))
        assert rule.name == "fresh"

    def test_loads_rules_mapping(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(
            json.dumps({"rules": [_freshness_rule().to_dict()]})
        )
        assert len(load_rules(str(path))) == 1

    def test_unknown_key_is_schema_error(self, tmp_path):
        document = _freshness_rule().to_dict()
        document["thresold_s"] = 10.0  # the typo must fail loudly
        path = tmp_path / "rules.json"
        path.write_text(json.dumps([document]))
        with pytest.raises(SchemaError, match="thresold_s"):
            load_rules(str(path))

    def test_duplicate_names_are_schema_error(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(
            json.dumps([_freshness_rule().to_dict()] * 2)
        )
        with pytest.raises(SchemaError, match="duplicate"):
            load_rules(str(path))

    def test_invalid_json_is_schema_error(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text("{nope")
        with pytest.raises(SchemaError, match="invalid JSON"):
            load_rules(str(path))

    def test_non_list_document_is_schema_error(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": "all of them"}))
        with pytest.raises(SchemaError, match="list of rules"):
            load_rules(str(path))

    def test_invalid_rule_value_is_schema_error(self, tmp_path):
        document = _freshness_rule().to_dict()
        document["target"] = 2.0
        path = tmp_path / "rules.json"
        path.write_text(json.dumps([document]))
        with pytest.raises(SchemaError, match="invalid SLO rule"):
            load_rules(str(path))


class TestBurnRateStates:
    """The OK -> WARN -> PAGE -> recovery ladder, clock-injected."""

    def _tick_range(self, evaluator, bad, start, count, step=60.0):
        for i in range(count):
            evaluator.sample("fresh", bad, start + i * step)
        return start + (count - 1) * step

    def test_all_good_is_ok(self):
        evaluator = SLOEvaluator([_freshness_rule()])
        at = self._tick_range(evaluator, False, 0.0, 10)
        (status,) = evaluator.statuses(at)
        assert status.state == "ok"
        assert status.burn_fast == 0.0
        assert status.burn_slow == 0.0

    def test_no_samples_is_ok_with_zero_burn(self):
        evaluator = SLOEvaluator([_freshness_rule()])
        (status,) = evaluator.statuses(1000.0)
        assert status.state == "ok"
        assert status.samples == 0

    def test_sustained_badness_escalates_to_page(self):
        # target 0.9 -> budget 0.1; all-bad ticks burn at 10x in both
        # windows once the slow window is saturated.
        evaluator = SLOEvaluator([_freshness_rule()])
        at = self._tick_range(evaluator, True, 0.0, 61)
        (status,) = evaluator.statuses(at)
        assert status.state == "page"
        assert status.burn_fast == pytest.approx(10.0)
        assert status.burn_slow == pytest.approx(10.0)

    def test_partial_badness_warns_without_paging(self):
        # 3 bad of 11 in both windows: burn ~2.7 -> warn, below page.
        rule = _freshness_rule()
        evaluator = SLOEvaluator([rule])
        for i in range(11):
            evaluator.sample("fresh", i < 3, i * 60.0)
        (status,) = evaluator.statuses(600.0)
        assert status.state == "warn"
        assert 2.0 <= min(status.burn_fast, status.burn_slow) < 10.0

    def test_fast_spike_alone_does_not_page(self):
        # A burst of bad ticks inside the fast window only: the slow
        # window dilutes it, and state comes from the smaller burn.
        rule = _freshness_rule()
        evaluator = SLOEvaluator([rule])
        for i in range(50):  # 50 good ticks across the slow window
            evaluator.sample("fresh", False, i * 60.0)
        for i in range(5):  # then a 5-tick bad burst
            evaluator.sample("fresh", True, 3000.0 + i * 60.0)
        (status,) = evaluator.statuses(3240.0)
        assert status.burn_fast > status.burn_slow
        assert status.state == "ok"

    def test_recovery_drains_fast_window_first(self):
        evaluator = SLOEvaluator([_freshness_rule()])
        at = self._tick_range(evaluator, True, 0.0, 61)
        (status,) = evaluator.statuses(at)
        assert status.state == "page"
        # Good ticks push the bad ones out of the fast window; the slow
        # window still remembers them, but min(fast, slow) recovers.
        for i in range(1, 11):
            evaluator.sample("fresh", False, at + i * 60.0)
        (status,) = evaluator.statuses(at + 600.0)
        assert status.burn_fast < status.burn_slow
        assert status.state == "ok"

    def test_sample_rejects_unknown_rule(self):
        evaluator = SLOEvaluator([_freshness_rule()])
        with pytest.raises(KeyError, match="unknown SLO rule"):
            evaluator.sample("nope", True, 0.0)

    def test_detail_clears_on_recovery(self):
        evaluator = SLOEvaluator([_freshness_rule()])
        evaluator.sample("fresh", True, 0.0, detail="age 90s > 60s")
        (status,) = evaluator.statuses(0.0)
        assert status.detail == "age 90s > 60s"
        evaluator.sample("fresh", False, 60.0, detail="")
        (status,) = evaluator.statuses(60.0)
        assert status.detail == ""

    def test_statuses_sorted_by_rule_name(self):
        rules = [
            _freshness_rule(name="zeta"),
            _freshness_rule(name="alpha"),
        ]
        evaluator = SLOEvaluator(rules)
        names = [status.name for status in evaluator.statuses(0.0)]
        assert names == ["alpha", "zeta"]

    def test_series_memory_is_bounded_by_slow_window(self):
        rule = _freshness_rule(fast_window_s=60.0, slow_window_s=120.0)
        evaluator = SLOEvaluator([rule])
        for i in range(10_000):
            evaluator.sample("fresh", False, float(i))
        assert len(evaluator._series["fresh"]._samples) <= 122


class TestHealthReport:
    def _report(self):
        status = SLOStatus(
            name="fresh",
            signal="freshness",
            state="warn",
            burn_fast=3.0,
            burn_slow=2.5,
            samples=10,
            bad=3,
            detail="metro/ookla age 90s > 60s",
        )
        return HealthReport(
            generated_at=123.0,
            status="warn",
            rules=(status,),
            quality={"freshness_s": {"metro": {"ookla": 90.0}}},
            drift=({"region": "metro", "kind": "score_shift"},),
        )

    def test_round_trips_through_dict(self):
        report = self._report()
        clone = HealthReport.from_dict(report.to_dict())
        assert clone.status == report.status
        assert clone.rules == report.rules
        assert clone.drift == report.drift

    def test_serialization_is_deterministic(self):
        a = json.dumps(self._report().to_dict(), sort_keys=True)
        b = json.dumps(self._report().to_dict(), sort_keys=True)
        assert a == b
