"""Unit tests for repro.obs.trace + the TraceRecorder span hook."""

import json
import threading

import pytest

from repro.obs import (
    TraceRecorder,
    get_trace_recorder,
    install_trace_recorder,
    span,
    uninstall_trace_recorder,
)
from repro.obs.trace import to_chrome_trace, write_chrome_trace


@pytest.fixture()
def recorder():
    recorder = TraceRecorder()
    install_trace_recorder(recorder)
    yield recorder
    uninstall_trace_recorder()


class TestTraceRecorder:
    def test_records_completed_spans(self, recorder):
        with span("outer", items=2):
            with span("inner"):
                pass
        names = [record.name for record in recorder.records()]
        assert names == ["inner", "outer"]  # completion order

    def test_record_carries_path_depth_fields(self, recorder):
        with span("a"):
            with span("b", region="metro"):
                pass
        inner = recorder.records()[0]
        assert inner.path == "a/b"
        assert inner.depth == 1
        assert inner.fields == {"region": "metro"}
        assert inner.duration_s >= 0.0
        assert inner.start_s >= 0.0

    def test_install_uninstall_contract(self):
        assert get_trace_recorder() is None
        recorder = TraceRecorder()
        install_trace_recorder(recorder)
        assert get_trace_recorder() is recorder
        assert uninstall_trace_recorder() is recorder
        assert get_trace_recorder() is None

    def test_no_recording_when_uninstalled(self):
        recorder = TraceRecorder()
        install_trace_recorder(recorder)
        uninstall_trace_recorder()
        with span("unrecorded"):
            pass
        assert len(recorder) == 0

    def test_thread_safe_recording(self, recorder):
        def work():
            for _ in range(50):
                with span("threaded"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(recorder) == 200


class TestChromeTrace:
    def test_document_shape(self, recorder):
        with span("stage", regions=3):
            pass
        document = to_chrome_trace(recorder)
        complete = [
            event
            for event in document["traceEvents"]
            if event["ph"] == "X"
        ]
        assert len(complete) == 1
        event = complete[0]
        assert event["name"] == "stage"
        assert event["cat"] == "span"
        assert event["ts"] >= 0.0
        assert event["dur"] >= 0.0
        assert event["args"]["path"] == "stage"
        assert event["args"]["regions"] == 3
        # Metadata events name the process and thread tracks.
        metadata = {
            event["name"]
            for event in document["traceEvents"]
            if event["ph"] == "M"
        }
        assert {"process_name", "thread_name"} <= metadata

    def test_nesting_is_contained_in_parent_interval(self, recorder):
        with span("parent"):
            with span("child"):
                pass
        events = {
            event["name"]: event
            for event in to_chrome_trace(recorder)["traceEvents"]
            if event["ph"] == "X"
        }
        parent, child = events["parent"], events["child"]
        assert parent["ts"] <= child["ts"]
        assert (
            child["ts"] + child["dur"]
            <= parent["ts"] + parent["dur"] + 1e-3
        )

    def test_write_round_trips_as_json(self, recorder, tmp_path):
        with span("a"):
            pass
        with span("b"):
            pass
        path = tmp_path / "trace.json"
        written = write_chrome_trace(recorder, path)
        assert written == 2
        document = json.loads(path.read_text())
        names = sorted(
            event["name"]
            for event in document["traceEvents"]
            if event["ph"] == "X"
        )
        assert names == ["a", "b"]
        assert document["displayTimeUnit"] == "ms"

    def test_non_json_fields_coerced_to_str(self, recorder, tmp_path):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        with span("stage", handle=Opaque()):
            pass
        path = tmp_path / "trace.json"
        write_chrome_trace(recorder, path)  # must not raise
        document = json.loads(path.read_text())
        event = next(
            event
            for event in document["traceEvents"]
            if event["ph"] == "X"
        )
        assert event["args"]["handle"] == "<opaque>"
