"""Unit tests for repro.obs.trace + the TraceRecorder span hook."""

import json
import threading

import pytest

from repro.obs import (
    TraceRecorder,
    get_trace_recorder,
    install_trace_recorder,
    span,
    uninstall_trace_recorder,
)
from repro.obs.trace import to_chrome_trace, write_chrome_trace


@pytest.fixture()
def recorder():
    recorder = TraceRecorder()
    install_trace_recorder(recorder)
    yield recorder
    uninstall_trace_recorder()


class TestTraceRecorder:
    def test_records_completed_spans(self, recorder):
        with span("outer", items=2):
            with span("inner"):
                pass
        names = [record.name for record in recorder.records()]
        assert names == ["inner", "outer"]  # completion order

    def test_record_carries_path_depth_fields(self, recorder):
        with span("a"):
            with span("b", region="metro"):
                pass
        inner = recorder.records()[0]
        assert inner.path == "a/b"
        assert inner.depth == 1
        assert inner.fields == {"region": "metro"}
        assert inner.duration_s >= 0.0
        assert inner.start_s >= 0.0

    def test_install_uninstall_contract(self):
        assert get_trace_recorder() is None
        recorder = TraceRecorder()
        install_trace_recorder(recorder)
        assert get_trace_recorder() is recorder
        assert uninstall_trace_recorder() is recorder
        assert get_trace_recorder() is None

    def test_no_recording_when_uninstalled(self):
        recorder = TraceRecorder()
        install_trace_recorder(recorder)
        uninstall_trace_recorder()
        with span("unrecorded"):
            pass
        assert len(recorder) == 0

    def test_thread_safe_recording(self, recorder):
        def work():
            for _ in range(50):
                with span("threaded"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(recorder) == 200


def _shipped(**overrides):
    """One worker-side span record dict, as adopt() receives them."""
    record = {
        "name": "shard",
        "path": "shard",
        "depth": 0,
        "start_s": 1.0,
        "duration_s": 0.5,
        "thread_id": 42,
        "thread_name": "MainThread",
        "fields": {"shard": 0},
        "trace_id": "t" * 16,
        "span_id": "s" * 16,
        "parent_id": "p" * 16,
    }
    record.update(overrides)
    return record


class TestAdopt:
    def test_adopt_rebases_onto_parent_timeline(self, recorder):
        # The worker recorder's epoch started 10s after ours, so a span
        # 1s into the worker's run is 11s into the merged timeline.
        count = recorder.adopt(
            recorder.started_unix + 10.0, [_shipped()]
        )
        assert count == 1
        record = recorder.records()[-1]
        assert record.start_s == pytest.approx(11.0)
        assert record.duration_s == 0.5
        assert record.trace_id == "t" * 16
        assert record.span_id == "s" * 16
        assert record.parent_id == "p" * 16
        assert record.fields == {"shard": 0}

    def test_adopt_clamps_pre_epoch_starts_to_zero(self, recorder):
        recorder.adopt(
            recorder.started_unix - 5.0, [_shipped(start_s=1.0)]
        )
        assert recorder.records()[-1].start_s == 0.0

    def test_adopt_tolerates_minimal_records(self, recorder):
        # Records from an older worker (no trace context, no fields)
        # must still merge — defaults keep them loadable.
        recorder.adopt(
            recorder.started_unix,
            [{"name": "old", "duration_s": 0.1}],
        )
        record = recorder.records()[-1]
        assert record.trace_id == ""
        assert record.parent_id is None
        assert record.fields == {}


class TestChromeTrace:
    def test_document_shape(self, recorder):
        with span("stage", regions=3):
            pass
        document = to_chrome_trace(recorder)
        complete = [
            event
            for event in document["traceEvents"]
            if event["ph"] == "X"
        ]
        assert len(complete) == 1
        event = complete[0]
        assert event["name"] == "stage"
        assert event["cat"] == "span"
        assert event["ts"] >= 0.0
        assert event["dur"] >= 0.0
        assert event["args"]["path"] == "stage"
        assert event["args"]["regions"] == 3
        # Metadata events name the process and thread tracks.
        metadata = {
            event["name"]
            for event in document["traceEvents"]
            if event["ph"] == "M"
        }
        assert {"process_name", "thread_name"} <= metadata

    def test_nesting_is_contained_in_parent_interval(self, recorder):
        with span("parent"):
            with span("child"):
                pass
        events = {
            event["name"]: event
            for event in to_chrome_trace(recorder)["traceEvents"]
            if event["ph"] == "X"
        }
        parent, child = events["parent"], events["child"]
        assert parent["ts"] <= child["ts"]
        assert (
            child["ts"] + child["dur"]
            <= parent["ts"] + parent["dur"] + 1e-3
        )

    def test_write_round_trips_as_json(self, recorder, tmp_path):
        with span("a"):
            pass
        with span("b"):
            pass
        path = tmp_path / "trace.json"
        written = write_chrome_trace(recorder, path)
        assert written == 2
        document = json.loads(path.read_text())
        names = sorted(
            event["name"]
            for event in document["traceEvents"]
            if event["ph"] == "X"
        )
        assert names == ["a", "b"]
        assert document["displayTimeUnit"] == "ms"

    def test_args_carry_trace_context(self, recorder):
        with span("fanout") as fanout:
            with span("stage") as stage:
                pass
        events = {
            event["name"]: event
            for event in to_chrome_trace(recorder)["traceEvents"]
            if event["ph"] == "X"
        }
        assert events["fanout"]["args"]["trace_id"] == fanout.trace_id
        assert events["fanout"]["args"]["span_id"] == fanout.span_id
        assert "parent_id" not in events["fanout"]["args"]  # a root
        assert events["stage"]["args"]["trace_id"] == fanout.trace_id
        assert events["stage"]["args"]["parent_id"] == fanout.span_id
        assert stage.parent_id == fanout.span_id

    def test_contextless_records_export_without_trace_args(
        self, recorder
    ):
        recorder.adopt(
            recorder.started_unix,
            [{"name": "old", "duration_s": 0.1}],
        )
        event = next(
            event
            for event in to_chrome_trace(recorder)["traceEvents"]
            if event["ph"] == "X"
        )
        assert "trace_id" not in event["args"]
        assert "span_id" not in event["args"]

    def test_non_json_fields_coerced_to_str(self, recorder, tmp_path):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        with span("stage", handle=Opaque()):
            pass
        path = tmp_path / "trace.json"
        write_chrome_trace(recorder, path)  # must not raise
        document = json.loads(path.read_text())
        event = next(
            event
            for event in document["traceEvents"]
            if event["ph"] == "X"
        )
        assert event["args"]["handle"] == "<opaque>"
