"""Unit tests for repro.obs.spans (nesting, timing, error paths)."""

import pytest

from repro.obs import REGISTRY, current_span, span


class TestSpan:
    def test_records_duration_into_timer(self):
        t = REGISTRY.timer("span.unit_test_stage")
        before = t.count
        with span("unit_test_stage"):
            pass
        assert t.count == before + 1

    def test_duration_populated_on_exit(self):
        with span("outer") as s:
            assert s.duration is None
        assert s.duration is not None
        assert s.duration >= 0.0

    def test_nesting_builds_paths_and_depths(self):
        with span("parent") as parent:
            assert parent.path == "parent"
            assert parent.depth == 0
            with span("child") as child:
                assert child.path == "parent/child"
                assert child.depth == 1
                with span("grandchild") as grandchild:
                    assert grandchild.path == "parent/child/grandchild"
                    assert grandchild.depth == 2

    def test_current_span_tracks_stack(self):
        assert current_span() is None
        with span("a") as a:
            assert current_span() is a
            with span("b") as b:
                assert current_span() is b
            assert current_span() is a
        assert current_span() is None

    def test_exception_propagates_and_pops_stack(self):
        with pytest.raises(RuntimeError, match="boom"):
            with span("failing"):
                raise RuntimeError("boom")
        assert current_span() is None

    def test_annotate_merges_fields(self):
        with span("stage", items=3) as s:
            s.annotate(regions=2)
        assert s.fields == {"items": 3, "regions": 2}
