"""Unit tests for repro.obs.spans (nesting, timing, error paths)."""

import pytest

from repro.obs import REGISTRY, current_span, span


class TestSpan:
    def test_records_duration_into_timer(self):
        t = REGISTRY.timer("span.unit_test_stage")
        before = t.count
        with span("unit_test_stage"):
            pass
        assert t.count == before + 1

    def test_duration_populated_on_exit(self):
        with span("outer") as s:
            assert s.duration is None
        assert s.duration is not None
        assert s.duration >= 0.0

    def test_nesting_builds_paths_and_depths(self):
        with span("parent") as parent:
            assert parent.path == "parent"
            assert parent.depth == 0
            with span("child") as child:
                assert child.path == "parent/child"
                assert child.depth == 1
                with span("grandchild") as grandchild:
                    assert grandchild.path == "parent/child/grandchild"
                    assert grandchild.depth == 2

    def test_current_span_tracks_stack(self):
        assert current_span() is None
        with span("a") as a:
            assert current_span() is a
            with span("b") as b:
                assert current_span() is b
            assert current_span() is a
        assert current_span() is None

    def test_exception_propagates_and_pops_stack(self):
        with pytest.raises(RuntimeError, match="boom"):
            with span("failing"):
                raise RuntimeError("boom")
        assert current_span() is None

    def test_annotate_merges_fields(self):
        with span("stage", items=3) as s:
            s.annotate(regions=2)
        assert s.fields == {"items": 3, "regions": 2}


class TestStackRepair:
    """Out-of-order exits must not corrupt later spans on the thread."""

    def _mismatch(self):
        return REGISTRY.counter("span.stack.mismatch")

    def test_out_of_order_exit_pops_stale_entries(self):
        before = self._mismatch().value
        outer = span("repair_outer")
        outer.__enter__()
        stale_a = span("repair_stale_a")
        stale_a.__enter__()
        stale_b = span("repair_stale_b")
        stale_b.__enter__()
        # The outer scope unwinds while two abandoned spans still sit
        # above it (the generator-GC shape): both stale entries must go.
        outer.__exit__(None, None, None)
        assert current_span() is None
        assert self._mismatch().value == before + 2

    def test_later_spans_see_clean_paths_after_repair(self):
        outer = span("repair2_outer")
        outer.__enter__()
        span("repair2_stale").__enter__()
        outer.__exit__(None, None, None)
        with span("repair2_later") as later:
            assert later.path == "repair2_later"
            assert later.depth == 0

    def test_exit_of_span_not_on_stack_counts_one_mismatch(self):
        ghost = span("repair_ghost")
        ghost.__enter__()
        ghost.__exit__(None, None, None)  # normal exit
        before = self._mismatch().value
        ghost.__exit__(None, None, None)  # double exit: not on stack
        assert self._mismatch().value == before + 1
        assert current_span() is None

    def test_double_exit_leaves_unrelated_stack_alone(self):
        ghost = span("repair_ghost2")
        ghost.__enter__()
        ghost.__exit__(None, None, None)
        with span("repair_live") as live:
            ghost.__exit__(None, None, None)
            assert current_span() is live

    def test_abandoned_generator_scenario(self):
        before = self._mismatch().value

        def holds_span():
            with span("repair_gen_held"):
                yield

        with span("repair_gen_outer"):
            generator = holds_span()
            next(generator)  # stack: outer, held (suspended)
        # Exiting outer repaired the stack past the held span...
        assert current_span() is None
        assert self._mismatch().value == before + 1
        # ...and closing the generator later is the not-on-stack case.
        generator.close()
        assert self._mismatch().value == before + 2
        assert current_span() is None
