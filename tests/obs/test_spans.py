"""Unit tests for repro.obs.spans (nesting, timing, error paths)."""

import re

import pytest

from repro.obs import (
    REGISTRY,
    current_span,
    current_trace_context,
    set_remote_parent,
    span,
)


class TestSpan:
    def test_records_duration_into_timer(self):
        t = REGISTRY.timer("span.unit_test_stage")
        before = t.count
        with span("unit_test_stage"):
            pass
        assert t.count == before + 1

    def test_duration_populated_on_exit(self):
        with span("outer") as s:
            assert s.duration is None
        assert s.duration is not None
        assert s.duration >= 0.0

    def test_nesting_builds_paths_and_depths(self):
        with span("parent") as parent:
            assert parent.path == "parent"
            assert parent.depth == 0
            with span("child") as child:
                assert child.path == "parent/child"
                assert child.depth == 1
                with span("grandchild") as grandchild:
                    assert grandchild.path == "parent/child/grandchild"
                    assert grandchild.depth == 2

    def test_current_span_tracks_stack(self):
        assert current_span() is None
        with span("a") as a:
            assert current_span() is a
            with span("b") as b:
                assert current_span() is b
            assert current_span() is a
        assert current_span() is None

    def test_exception_propagates_and_pops_stack(self):
        with pytest.raises(RuntimeError, match="boom"):
            with span("failing"):
                raise RuntimeError("boom")
        assert current_span() is None

    def test_annotate_merges_fields(self):
        with span("stage", items=3) as s:
            s.annotate(regions=2)
        assert s.fields == {"items": 3, "regions": 2}


class TestTraceContext:
    """trace_id/span_id/parent_id wiring, local and adopted."""

    TRACE = "c0ffee" + "0" * 10
    PARENT = "50a" + "b" * 13

    def test_root_span_mints_a_trace(self):
        with span("root") as root:
            assert re.fullmatch(r"[0-9a-f]{16}", root.trace_id)
            assert re.fullmatch(r"[0-9a-f]{16}", root.span_id)
            assert root.parent_id is None

    def test_children_inherit_trace_and_parent(self):
        with span("root") as root:
            with span("child") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
                assert child.span_id != root.span_id
                with span("grandchild") as grandchild:
                    assert grandchild.trace_id == root.trace_id
                    assert grandchild.parent_id == child.span_id

    def test_sibling_roots_start_distinct_traces(self):
        with span("first") as first:
            pass
        with span("second") as second:
            pass
        assert first.trace_id != second.trace_id

    def test_current_trace_context_follows_stack(self):
        set_remote_parent(None, None)
        assert current_trace_context() is None
        with span("a") as a:
            assert current_trace_context() == (a.trace_id, a.span_id)
            with span("b") as b:
                assert current_trace_context() == (b.trace_id, b.span_id)
            assert current_trace_context() == (a.trace_id, a.span_id)
        assert current_trace_context() is None

    def test_remote_parent_adopted_by_next_root(self):
        set_remote_parent(self.TRACE, self.PARENT)
        try:
            with span("shard") as shard:
                assert shard.trace_id == self.TRACE
                assert shard.parent_id == self.PARENT
        finally:
            set_remote_parent(None, None)

    def test_remote_parent_does_not_leak_into_nested_spans(self):
        set_remote_parent(self.TRACE, self.PARENT)
        try:
            with span("shard") as shard:
                with span("inner") as inner:
                    assert inner.trace_id == self.TRACE
                    assert inner.parent_id == shard.span_id
        finally:
            set_remote_parent(None, None)

    def test_remote_parent_survives_for_repeated_roots(self):
        # A worker process runs several shards back to back: each
        # shard's root span must re-attach to the same fan-out parent.
        set_remote_parent(self.TRACE, self.PARENT)
        try:
            parents = []
            for _ in range(2):
                with span("shard") as shard:
                    parents.append(shard.parent_id)
            assert parents == [self.PARENT, self.PARENT]
        finally:
            set_remote_parent(None, None)

    def test_clearing_remote_parent_restores_fresh_traces(self):
        set_remote_parent(self.TRACE, self.PARENT)
        assert current_trace_context() == (self.TRACE, self.PARENT)
        set_remote_parent(None, None)
        assert current_trace_context() is None
        with span("fresh") as fresh:
            pass
        assert fresh.trace_id != self.TRACE
        assert fresh.parent_id is None


class TestStackRepair:
    """Out-of-order exits must not corrupt later spans on the thread."""

    def _mismatch(self):
        return REGISTRY.counter("span.stack.mismatch")

    def test_out_of_order_exit_pops_stale_entries(self):
        before = self._mismatch().value
        outer = span("repair_outer")
        outer.__enter__()
        stale_a = span("repair_stale_a")
        stale_a.__enter__()
        stale_b = span("repair_stale_b")
        stale_b.__enter__()
        # The outer scope unwinds while two abandoned spans still sit
        # above it (the generator-GC shape): both stale entries must go.
        outer.__exit__(None, None, None)
        assert current_span() is None
        assert self._mismatch().value == before + 2

    def test_later_spans_see_clean_paths_after_repair(self):
        outer = span("repair2_outer")
        outer.__enter__()
        span("repair2_stale").__enter__()
        outer.__exit__(None, None, None)
        with span("repair2_later") as later:
            assert later.path == "repair2_later"
            assert later.depth == 0

    def test_exit_of_span_not_on_stack_counts_one_mismatch(self):
        ghost = span("repair_ghost")
        ghost.__enter__()
        ghost.__exit__(None, None, None)  # normal exit
        before = self._mismatch().value
        ghost.__exit__(None, None, None)  # double exit: not on stack
        assert self._mismatch().value == before + 1
        assert current_span() is None

    def test_double_exit_leaves_unrelated_stack_alone(self):
        ghost = span("repair_ghost2")
        ghost.__enter__()
        ghost.__exit__(None, None, None)
        with span("repair_live") as live:
            ghost.__exit__(None, None, None)
            assert current_span() is live

    def test_abandoned_generator_scenario(self):
        before = self._mismatch().value

        def holds_span():
            with span("repair_gen_held"):
                yield

        with span("repair_gen_outer"):
            generator = holds_span()
            next(generator)  # stack: outer, held (suspended)
        # Exiting outer repaired the stack past the held span...
        assert current_span() is None
        assert self._mismatch().value == before + 1
        # ...and closing the generator later is the not-on-stack case.
        generator.close()
        assert self._mismatch().value == before + 2
        assert current_span() is None
