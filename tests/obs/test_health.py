"""Unit tests for repro.obs.health (quality, drift, the monitor).

Everything runs on injected data-time timestamps — the monitor's
``clock=None`` default — so every assertion is deterministic.
"""

import json

import pytest

from repro.obs.health import (
    DriftConfig,
    DriftDetector,
    HealthMonitor,
    QualityTracker,
    default_rules,
    get_health_monitor,
    install_health_monitor,
    uninstall_health_monitor,
)
from repro.obs.slo import SLORule

HOUR = 3600.0


def _freshness_rule(**overrides):
    base = dict(
        name="fresh",
        signal="freshness",
        target=0.9,
        threshold_s=2 * HOUR,
        fast_window_s=2 * HOUR,
        slow_window_s=6 * HOUR,
    )
    base.update(overrides)
    return SLORule(**base)


class TestQualityTracker:
    def test_freshness_is_age_since_last_arrival(self):
        tracker = QualityTracker()
        tracker.record_arrival("metro", "ookla", 100.0)
        tracker.record_arrival("metro", "ookla", 200.0)
        assert tracker.freshness(500.0) == {("metro", "ookla"): 300.0}

    def test_out_of_order_arrival_does_not_regress_freshness(self):
        tracker = QualityTracker()
        tracker.record_arrival("metro", "ookla", 200.0)
        tracker.record_arrival("metro", "ookla", 100.0)
        assert tracker.freshness(200.0) == {("metro", "ookla"): 0.0}

    def test_count_false_advances_freshness_only(self):
        # Freshness-only notifiers (the probe runner above a sketch
        # sink) must not enroll the cell in completeness accounting —
        # the store-level hook owns the counting.
        tracker = QualityTracker(expected={"ookla": 4})
        for i in range(4):
            tracker.record_arrival("metro", "ookla", float(i), count=False)
        tracker.close_window()
        assert ("metro", "ookla") not in tracker.completeness()
        assert tracker.freshness(4.0)[("metro", "ookla")] == 1.0

    def test_declared_expectation_drives_ratio(self):
        tracker = QualityTracker(expected={"ookla": 10})
        for i in range(5):
            tracker.record_arrival("metro", "ookla", float(i))
        tracker.close_window()
        assert tracker.completeness()[("metro", "ookla")] == 0.5

    def test_ratio_caps_at_one(self):
        tracker = QualityTracker(expected={"ookla": 2})
        for i in range(5):
            tracker.record_arrival("metro", "ookla", float(i))
        tracker.close_window()
        assert tracker.completeness()[("metro", "ookla")] == 1.0

    def test_expectation_learned_from_trailing_median(self):
        tracker = QualityTracker()
        for window in range(3):  # three windows of 10 arrivals
            for i in range(10):
                tracker.record_arrival("metro", "ookla", window * 10.0 + i)
            tracker.close_window()
        # Fourth window goes half-dark: judged against the median (10)
        # of the *previous* windows, not dragged down by itself.
        for i in range(5):
            tracker.record_arrival("metro", "ookla", 30.0 + i)
        tracker.close_window()
        assert tracker.completeness()[("metro", "ookla")] == 0.5

    def test_dark_window_scores_zero(self):
        tracker = QualityTracker()
        for i in range(10):
            tracker.record_arrival("metro", "ookla", float(i))
        tracker.close_window()
        tracker.close_window()  # no arrivals at all this window
        assert tracker.completeness()[("metro", "ookla")] == 0.0

    def test_first_window_without_declaration_has_no_ratio(self):
        tracker = QualityTracker()
        tracker.record_arrival("metro", "ookla", 0.0)
        tracker.close_window()
        assert tracker.completeness()[("metro", "ookla")] is None

    def test_stale_by_region_filters_by_threshold(self):
        tracker = QualityTracker()
        tracker.record_arrival("metro", "ookla", 0.0)
        tracker.record_arrival("metro", "ndt", 900.0)
        stale = tracker.stale_by_region(1000.0, lambda dataset: 500.0)
        assert stale == {"metro": ["ookla"]}


class TestDriftDetector:
    CONFIG = DriftConfig(alpha=0.25, slack=0.02, band=0.15, min_points=4)

    def _feed(self, detector, region, scores, start_at=0.0, stale=()):
        events = []
        for i, score in enumerate(scores):
            event = detector.update(
                region, score, start_at + i * HOUR, stale
            )
            if event is not None:
                events.append(event)
        return events

    def test_stable_scores_never_fire(self):
        detector = DriftDetector(self.CONFIG)
        events = self._feed(detector, "metro", [0.8] * 50)
        assert events == []

    def test_small_noise_absorbed_by_slack_and_ewma(self):
        detector = DriftDetector(self.CONFIG)
        wiggle = [0.8 + (0.01 if i % 2 else -0.01) for i in range(50)]
        assert self._feed(detector, "metro", wiggle) == []

    def test_step_change_fires_once_with_direction(self):
        detector = DriftDetector(self.CONFIG)
        scores = [0.8] * 8 + [0.55] * 8
        events = self._feed(detector, "metro", scores)
        assert len(events) == 1
        (event,) = events
        assert event.direction == "down"
        assert event.kind == "score_shift"
        assert event.baseline > event.score

    def test_upward_shift_reports_up(self):
        detector = DriftDetector(self.CONFIG)
        events = self._feed(detector, "metro", [0.5] * 8 + [0.8] * 8)
        assert len(events) == 1
        assert events[0].direction == "up"

    def test_rebaseline_allows_second_event_at_new_level(self):
        detector = DriftDetector(self.CONFIG)
        scores = [0.8] * 8 + [0.55] * 12 + [0.3] * 8
        events = self._feed(detector, "metro", scores)
        assert len(events) == 2
        assert all(event.direction == "down" for event in events)

    def test_min_points_gate_blocks_early_fires(self):
        detector = DriftDetector(self.CONFIG)
        # A huge jump on the second point: the baseline has not
        # settled, so nothing may fire yet.
        assert detector.update("metro", 0.9, 0.0) is None
        assert detector.update("metro", 0.2, HOUR) is None

    def test_stale_datasets_reclassify_the_event(self):
        detector = DriftDetector(self.CONFIG)
        events = self._feed(
            detector,
            "metro",
            [0.8] * 8 + [0.5] * 8,
            stale=("ookla",),
        )
        assert len(events) == 1
        assert events[0].kind == "stale_data"
        assert events[0].stale_datasets == ("ookla",)

    def test_regions_are_independent(self):
        detector = DriftDetector(self.CONFIG)
        self._feed(detector, "metro", [0.8] * 8)
        events = self._feed(detector, "rural", [0.4] * 8 + [0.1] * 8)
        assert len(events) == 1
        assert events[0].region == "rural"

    def test_event_to_dict_is_json_ready(self):
        detector = DriftDetector(self.CONFIG)
        (event,) = self._feed(detector, "metro", [0.8] * 8 + [0.5] * 8)
        document = json.loads(json.dumps(event.to_dict()))
        assert document["region"] == "metro"
        assert document["kind"] == "score_shift"


class TestHealthMonitor:
    def _monitor(self, **kwargs):
        kwargs.setdefault("rules", (_freshness_rule(),))
        return HealthMonitor(**kwargs)

    def test_watermark_follows_arrivals(self):
        monitor = self._monitor()
        assert monitor.as_of is None
        monitor.record_arrival("metro", "ookla", 100.0)
        monitor.record_arrival("metro", "ookla", 50.0)
        assert monitor.as_of == 100.0

    def test_freshness_slo_pages_when_dataset_goes_quiet(self):
        monitor = self._monitor()
        monitor.record_arrival("metro", "ookla", 0.0)
        # Tick hourly; the dataset never reports again, so every tick
        # past the 2h threshold is bad and both windows saturate.
        for hour in range(1, 13):
            monitor.tick(hour * HOUR)
        report = monitor.evaluate()
        assert report.status == "page"
        (status,) = report.rules
        assert status.state == "page"
        assert "metro/ookla" in status.detail

    def test_fresh_data_stays_ok(self):
        monitor = self._monitor()
        for hour in range(12):
            monitor.record_arrival("metro", "ookla", hour * HOUR)
            monitor.tick(hour * HOUR)
        assert monitor.evaluate().status == "ok"

    def test_recovery_after_data_resumes(self):
        monitor = self._monitor()
        monitor.record_arrival("metro", "ookla", 0.0)
        for hour in range(1, 13):
            monitor.tick(hour * HOUR)
        assert monitor.evaluate().status == "page"
        # Data resumes: every new tick sees a fresh cell, and the bad
        # ticks age out of the fast window first.
        for hour in range(13, 26):
            monitor.record_arrival("metro", "ookla", hour * HOUR)
            monitor.tick(hour * HOUR)
        assert monitor.evaluate().status == "ok"

    def test_dataset_selector_scopes_the_rule(self):
        rule = _freshness_rule(dataset="ookla")
        monitor = HealthMonitor(rules=(rule,))
        monitor.record_arrival("metro", "ndt", 0.0)
        monitor.tick(12 * HOUR)  # ndt is ancient, but out of scope
        (status,) = monitor.evaluate().rules
        assert status.samples == 0
        assert status.state == "ok"

    def test_window_closed_runs_drift_and_classifies_stale(self):
        # Two regions drop in lockstep at window 8; rural's only
        # dataset went quiet back at window 4, so by the time the
        # drift fires its cell is well past the 2h freshness budget.
        # The same step change must read as score_shift for metro
        # (data fresh, the internet got worse) and stale_data for
        # rural (the barometer went blind).
        monitor = HealthMonitor(
            rules=(_freshness_rule(),),
            drift=DriftConfig(min_points=4),
        )
        events = []
        for window in range(16):
            window_end = (window + 1) * HOUR
            monitor.record_arrival("metro", "ookla", window_end)
            if window < 4:
                monitor.record_arrival("rural", "ndt", window_end)
            score = 0.8 if window < 8 else 0.5
            events += monitor.window_closed(
                window * HOUR,
                window_end,
                {"metro": score, "rural": score},
            )
        kinds = {event.region: event.kind for event in events}
        assert kinds == {"metro": "score_shift", "rural": "stale_data"}
        report = monitor.evaluate()
        assert {e["kind"] for e in report.drift} == {
            "score_shift",
            "stale_data",
        }

    def test_unscored_regions_are_skipped(self):
        monitor = self._monitor()
        events = monitor.window_closed(0.0, HOUR, {"metro": None})
        assert events == []

    def test_stale_threshold_resolution_order(self):
        broad = _freshness_rule(name="broad", threshold_s=4 * HOUR)
        specific = _freshness_rule(
            name="ookla", dataset="ookla", threshold_s=HOUR
        )
        monitor = HealthMonitor(
            rules=(broad, specific), stale_after_s=99.0
        )
        assert monitor.stale_threshold("ookla") == HOUR
        assert monitor.stale_threshold("ndt") == 4 * HOUR
        assert HealthMonitor(rules=()).stale_threshold("x") == 3600.0

    def test_evaluate_is_deterministic(self):
        def build():
            monitor = self._monitor()
            for window in range(8):
                window_end = (window + 1) * HOUR
                monitor.record_arrival("metro", "ookla", window_end - 60)
                monitor.window_closed(
                    window * HOUR, window_end, {"metro": 0.8}
                )
            return json.dumps(
                monitor.evaluate().to_dict(), sort_keys=True
            )

        assert build() == build()

    def test_quality_section_shape(self):
        monitor = self._monitor()
        monitor.record_arrival("metro", "ookla", 0.0)
        monitor.window_closed(0.0, HOUR, {})
        section = monitor.quality_section(3 * HOUR)
        assert section["freshness_s"]["metro"]["ookla"] == 3 * HOUR
        assert "metro" in section["completeness"]
        assert section["stale"] == {"metro": ["ookla"]}

    def test_clock_lifts_evaluation_instant(self):
        monitor = self._monitor(clock=lambda: 10 * HOUR)
        monitor.record_arrival("metro", "ookla", 0.0)
        assert monitor.now() == 10 * HOUR
        # An explicit instant always wins over the clock.
        assert monitor.now(5.0) == 5.0

    def test_latency_rule_judges_timer_percentile(self):
        from repro.obs import REGISTRY

        rule = SLORule(
            name="lat",
            signal="latency",
            target=0.9,
            timer="test.health.latency",
            threshold_s=0.1,
            percentile=95.0,
            fast_window_s=HOUR,
            slow_window_s=2 * HOUR,
        )
        monitor = HealthMonitor(rules=(rule,))
        REGISTRY.timer("test.health.latency").reset()
        for _ in range(20):
            REGISTRY.timer("test.health.latency").observe(0.5)
        for minute in range(10):
            monitor.tick(minute * 60.0)
        (status,) = monitor.evaluate().rules
        assert status.state != "ok"
        assert "p95" in status.detail

    def test_error_rate_rule_uses_interval_deltas(self):
        from repro.obs import REGISTRY

        rule = SLORule(
            name="errs",
            signal="error_rate",
            target=0.9,
            bad_counter="test.health.bad",
            total_counter="test.health.total",
            fast_window_s=HOUR,
            slow_window_s=2 * HOUR,
        )
        monitor = HealthMonitor(rules=(rule,))
        bad = REGISTRY.counter("test.health.bad")
        total = REGISTRY.counter("test.health.total")
        bad.reset()
        total.reset()
        for minute in range(12):
            bad.inc(50)
            total.inc(50)
            monitor.tick(minute * 60.0)
        report = monitor.evaluate()
        (status,) = report.rules
        assert status.state == "page"
        assert "error" in status.detail
        # Errors stop. The *cumulative* ratio stays at ~13% (over the
        # 10% budget forever), but the per-tick deltas are clean, so
        # the fast window drains and the rule recovers — the proof
        # that interval deltas, not lifetime totals, drive the signal.
        for minute in range(12, 90):
            total.inc(50)
            monitor.tick(minute * 60.0)
        (status,) = monitor.evaluate().rules
        assert status.state == "ok"


class TestInstallation:
    def test_install_get_uninstall_cycle(self):
        assert get_health_monitor() is None
        monitor = HealthMonitor()
        install_health_monitor(monitor)
        try:
            assert get_health_monitor() is monitor
        finally:
            assert uninstall_health_monitor() is monitor
        assert get_health_monitor() is None

    def test_uninstall_when_absent_returns_none(self):
        assert uninstall_health_monitor() is None


class TestDefaultRules:
    def test_covers_every_dataset_plus_pipeline_rules(self):
        rules = default_rules(["ookla", "ndt", "ookla"], window_s=HOUR)
        names = [rule.name for rule in rules]
        assert "freshness-ookla" in names
        assert "freshness-ndt" in names
        assert "completeness" in names
        assert "ingest-errors" in names
        assert "scoring-latency" in names
        assert len(names) == len(set(names))

    def test_windows_scale_with_reporting_window(self):
        (rule, *_) = default_rules(["ookla"], window_s=HOUR)
        assert rule.fast_window_s == 2 * HOUR
        assert rule.slow_window_s == 6 * HOUR


class TestPrometheusRendering:
    def test_hostile_labels_render_escaped(self):
        monitor = HealthMonitor(rules=(_freshness_rule(),))
        hostile = 'ru"ral\nnorth\\east'
        monitor.record_arrival(hostile, "ookla", 0.0)
        monitor.tick(HOUR)
        body = monitor.render_prometheus()
        assert '\nregion' not in body.replace('region="', "")
        assert 'region="ru\\"ral\\nnorth\\\\east"' in body
        # Every physical line is still a comment or sample line.
        for line in body.rstrip("\n").split("\n"):
            assert line.startswith("#") or " " in line

    def test_families_present_with_values(self):
        monitor = HealthMonitor(rules=(_freshness_rule(),))
        monitor.record_arrival("metro", "ookla", 0.0)
        monitor.window_closed(0.0, HOUR, {"metro": 0.8})
        body = monitor.render_prometheus()
        assert "iqb_health_freshness_seconds{" in body
        assert "iqb_slo_burn_rate{" in body
        assert 'window="fast"' in body and 'window="slow"' in body
