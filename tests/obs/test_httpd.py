"""Unit tests for repro.obs.httpd (the telemetry endpoint)."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.obs.httpd import TelemetryServer
from repro.obs.registry import MetricsRegistry


def _get(url):
    """(status, content_type, body) for one GET, 4xx/5xx included."""
    try:
        with urllib.request.urlopen(url, timeout=5.0) as response:
            return (
                response.status,
                response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"),
            )
    except urllib.error.HTTPError as error:
        return (
            error.code,
            error.headers.get("Content-Type", ""),
            error.read().decode("utf-8"),
        )


@pytest.fixture()
def registry():
    registry = MetricsRegistry()
    registry.counter("monitor.alerts").inc(2)
    registry.counter("monitor.windows.unscorable").inc(1)
    registry.gauge("monitor.cycles").set(5.0)
    registry.gauge("monitor.last_cycle_unix").set(time.time())
    registry.timer("span.score").observe(0.01)
    return registry


@pytest.fixture()
def server(registry):
    server = TelemetryServer(registry=registry, port=0)
    port = server.start()
    assert port > 0
    yield server
    server.stop()


class TestEndpoints:
    def test_metrics_serves_prometheus_text(self, server, registry):
        # The scrape itself is accounted only after its body renders,
        # so the first scrape of a fresh server is exactly the
        # registry exposition as it stood before the request.
        expected = registry.render_prometheus()
        status, content_type, body = _get(server.url("/metrics"))
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        assert body == expected

    def test_metrics_json_serves_snapshot(self, server, registry):
        status, content_type, body = _get(server.url("/metrics.json"))
        assert status == 200
        assert content_type.startswith("application/json")
        document = json.loads(body)
        assert document["counters"]["monitor.alerts"] == 2
        assert document["timers"]["span.score"]["count"] == 1

    def test_healthz_reports_liveness(self, server):
        status, _, body = _get(server.url("/healthz"))
        assert status == 200
        document = json.loads(body)
        assert document["status"] == "ok"
        assert document["cycles"] == 5.0
        assert document["alerts"] == 2
        assert document["unscorable_windows"] == 1
        assert document["uptime_s"] >= 0.0
        assert document["last_cycle_unix"] is not None

    def test_unknown_path_is_404(self, server):
        status, _, body = _get(server.url("/nope"))
        assert status == 404
        assert "/metrics" in body

    def test_query_string_ignored(self, server):
        status, _, _ = _get(server.url("/healthz?verbose=1"))
        assert status == 200


class TestStalling:
    def test_stale_cycle_gauge_means_503(self, registry):
        registry.gauge("monitor.last_cycle_unix").set(time.time() - 120.0)
        with TelemetryServer(
            registry=registry, port=0, stalled_after_s=30.0
        ) as server:
            status, _, body = _get(server.url("/healthz"))
        assert status == 503
        document = json.loads(body)
        assert document["status"] == "stalled"
        assert "no cycle completed" in document["reason"]

    def test_fresh_cycle_keeps_200(self, registry):
        with TelemetryServer(
            registry=registry, port=0, stalled_after_s=3600.0
        ) as server:
            status, _, _ = _get(server.url("/healthz"))
        assert status == 200

    def test_no_cycles_yet_is_not_stalled(self):
        # A campaign that has not completed its first cycle has nothing
        # to be stale relative to; only a *previous* cycle going quiet
        # trips the detector.
        with TelemetryServer(
            registry=MetricsRegistry(), port=0, stalled_after_s=0.001
        ) as server:
            status, _, body = _get(server.url("/healthz"))
        assert status == 200
        assert json.loads(body)["last_cycle_unix"] is None

    def test_mark_stalled_forces_503(self, server):
        server.mark_stalled("operator says down")
        status, _, body = _get(server.url("/healthz"))
        assert status == 503
        assert json.loads(body)["reason"] == "operator says down"
        server.clear_stalled()
        status, _, _ = _get(server.url("/healthz"))
        assert status == 200


def _paged_monitor():
    """A HealthMonitor whose single freshness rule is burning at PAGE."""
    from repro.obs.health import HealthMonitor
    from repro.obs.slo import SLORule

    rule = SLORule(
        name="fresh",
        signal="freshness",
        target=0.9,
        threshold_s=60.0,
        fast_window_s=600.0,
        slow_window_s=3600.0,
    )
    monitor = HealthMonitor(rules=(rule,))
    monitor.record_arrival("metro", "ookla", 0.0)
    for minute in range(2, 70):  # every tick sees age > 60s: all bad
        monitor.tick(minute * 60.0)
    assert monitor.evaluate().status == "page"
    return monitor


class TestSLOEndpoints:
    def test_slo_without_monitor_reports_disabled(self, server):
        status, content_type, body = _get(server.url("/slo"))
        assert status == 200
        assert content_type.startswith("application/json")
        assert json.loads(body)["status"] == "disabled"

    def test_quality_without_monitor_reports_disabled(self, server):
        status, _, body = _get(server.url("/quality"))
        assert status == 200
        assert json.loads(body)["status"] == "disabled"

    def test_slo_serves_the_health_report(self, registry):
        with TelemetryServer(
            registry=registry, port=0, health=_paged_monitor()
        ) as server:
            status, _, body = _get(server.url("/slo"))
        assert status == 200  # the verdict is data; /healthz does 503s
        document = json.loads(body)
        assert document["status"] == "page"
        (rule,) = document["rules"]
        assert rule["name"] == "fresh"
        assert rule["state"] == "page"
        assert rule["burn_fast"] >= 10.0
        assert "quality" in document and "drift" in document

    def test_slo_report_is_deterministic_across_scrapes(self, registry):
        with TelemetryServer(
            registry=registry, port=0, health=_paged_monitor()
        ) as server:
            first = _get(server.url("/slo"))[2]
            second = _get(server.url("/slo"))[2]
        assert first == second

    def test_quality_serves_freshness_and_stale_cells(self, registry):
        with TelemetryServer(
            registry=registry, port=0, health=_paged_monitor()
        ) as server:
            status, _, body = _get(server.url("/quality"))
        assert status == 200
        document = json.loads(body)
        assert document["status"] == "page"
        assert document["freshness_s"]["metro"]["ookla"] > 60.0
        assert document["stale"] == {"metro": ["ookla"]}

    def test_healthz_turns_page_into_503(self, registry):
        with TelemetryServer(
            registry=registry, port=0, health=_paged_monitor()
        ) as server:
            status, _, body = _get(server.url("/healthz"))
        assert status == 503
        document = json.loads(body)
        assert document["status"] == "page"
        assert document["slo"] == "page"
        assert "burn rate" in document["reason"]

    def test_healthz_carries_ok_slo_without_503(self, registry):
        from repro.obs.health import HealthMonitor

        with TelemetryServer(
            registry=registry, port=0, health=HealthMonitor()
        ) as server:
            status, _, body = _get(server.url("/healthz"))
        assert status == 200
        assert json.loads(body)["slo"] == "ok"

    def test_metrics_appends_labeled_health_families(self, registry):
        expected_prefix = registry.render_prometheus()
        with TelemetryServer(
            registry=registry, port=0, health=_paged_monitor()
        ) as server:
            status, _, body = _get(server.url("/metrics"))
        assert status == 200
        assert body.startswith(expected_prefix)
        assert 'iqb_health_freshness_seconds{region="metro"' in body
        assert 'iqb_slo_burn_rate{rule="fresh",window="fast"}' in body

    def test_installed_monitor_picked_up_at_request_time(self, server):
        from repro.obs.health import (
            install_health_monitor,
            uninstall_health_monitor,
        )

        install_health_monitor(_paged_monitor())
        try:
            status, _, body = _get(server.url("/slo"))
        finally:
            uninstall_health_monitor()
        assert status == 200
        assert json.loads(body)["status"] == "page"
        # And gone again once uninstalled.
        assert json.loads(_get(server.url("/slo"))[2])["status"] == (
            "disabled"
        )

    def test_404_lists_all_endpoints(self, server):
        _, _, body = _get(server.url("/nope"))
        for path in ("/metrics", "/healthz", "/slo", "/quality"):
            assert path in body


class TestSketchResumeLiveness:
    """A journal restore must not masquerade as campaign progress."""

    def test_restore_keeps_liveness_gauges_and_healthz_verdict(
        self, config
    ):
        from repro.measurements.collection import MeasurementSet
        from repro.measurements.record import Measurement
        from repro.obs.registry import REGISTRY
        from repro.probing.monitor import BarometerMonitor

        def window_records(day, n=40):
            return MeasurementSet(
                Measurement(
                    region="r",
                    source="ndt" if i % 2 == 0 else "cloudflare",
                    timestamp=day * 86400.0 + i * 1000.0,
                    download_mbps=500.0,
                    upload_mbps=200.0,
                    latency_ms=20.0,
                    packet_loss=0.0005,
                )
                for i in range(n)
            )

        monitor = BarometerMonitor(config, quantiles="sketch")
        monitor.ingest(window_records(0), 0.0, 86400.0)
        for record in window_records(1, n=5):
            monitor.observe(record)  # mid-window buffer to carry over
        state = monitor.state_dict()
        assert "pending_sketch" in state

        # The campaign dies; by restart the last completed cycle is
        # two minutes old and the operator's threshold is 30s.
        last_cycle = REGISTRY.gauge("monitor.last_cycle_unix")
        last_cycle.set(time.time() - 120.0)
        stale_value = last_cycle.value
        cycles_before = REGISTRY.gauge("monitor.cycles").value

        resumed = BarometerMonitor(config, quantiles="sketch")
        resumed.restore_state(state)

        # Restoring replayed no cycles: the liveness gauges are
        # untouched, so /healthz still reports the campaign stalled
        # instead of letting the restore masquerade as progress.
        assert last_cycle.value == stale_value
        assert REGISTRY.gauge("monitor.cycles").value == cycles_before
        assert resumed.pending() == 5
        assert REGISTRY.gauge("monitor.pending.records").value == 5.0
        with TelemetryServer(
            registry=REGISTRY, port=0, stalled_after_s=30.0
        ) as server:
            status, _, body = _get(server.url("/healthz"))
        assert status == 503
        assert json.loads(body)["status"] == "stalled"

        # The first *real* cycle after the resume clears the verdict.
        resumed.ingest(window_records(1), 86400.0, 2 * 86400.0)
        assert last_cycle.value > stale_value
        with TelemetryServer(
            registry=REGISTRY, port=0, stalled_after_s=30.0
        ) as server:
            status, _, _ = _get(server.url("/healthz"))
        assert status == 200


class TestLifecycle:
    def test_start_is_idempotent(self, server):
        assert server.start() == server.port

    def test_stop_is_idempotent(self, registry):
        server = TelemetryServer(registry=registry, port=0)
        server.start()
        server.stop()
        server.stop()
        assert server.port == 0

    def test_ephemeral_ports_are_distinct_instances(self, registry):
        with TelemetryServer(registry=registry, port=0) as a:
            with TelemetryServer(registry=registry, port=0) as b:
                assert a.port != b.port
                assert _get(a.url("/healthz"))[0] == 200
                assert _get(b.url("/healthz"))[0] == 200
