"""Unit tests for repro.obs.httpd (the telemetry endpoint)."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.obs.httpd import TelemetryServer
from repro.obs.registry import MetricsRegistry


def _get(url):
    """(status, content_type, body) for one GET, 4xx/5xx included."""
    try:
        with urllib.request.urlopen(url, timeout=5.0) as response:
            return (
                response.status,
                response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"),
            )
    except urllib.error.HTTPError as error:
        return (
            error.code,
            error.headers.get("Content-Type", ""),
            error.read().decode("utf-8"),
        )


@pytest.fixture()
def registry():
    registry = MetricsRegistry()
    registry.counter("monitor.alerts").inc(2)
    registry.counter("monitor.windows.unscorable").inc(1)
    registry.gauge("monitor.cycles").set(5.0)
    registry.gauge("monitor.last_cycle_unix").set(time.time())
    registry.timer("span.score").observe(0.01)
    return registry


@pytest.fixture()
def server(registry):
    server = TelemetryServer(registry=registry, port=0)
    port = server.start()
    assert port > 0
    yield server
    server.stop()


class TestEndpoints:
    def test_metrics_serves_prometheus_text(self, server, registry):
        status, content_type, body = _get(server.url("/metrics"))
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        assert body == registry.render_prometheus()

    def test_metrics_json_serves_snapshot(self, server, registry):
        status, content_type, body = _get(server.url("/metrics.json"))
        assert status == 200
        assert content_type.startswith("application/json")
        document = json.loads(body)
        assert document["counters"]["monitor.alerts"] == 2
        assert document["timers"]["span.score"]["count"] == 1

    def test_healthz_reports_liveness(self, server):
        status, _, body = _get(server.url("/healthz"))
        assert status == 200
        document = json.loads(body)
        assert document["status"] == "ok"
        assert document["cycles"] == 5.0
        assert document["alerts"] == 2
        assert document["unscorable_windows"] == 1
        assert document["uptime_s"] >= 0.0
        assert document["last_cycle_unix"] is not None

    def test_unknown_path_is_404(self, server):
        status, _, body = _get(server.url("/nope"))
        assert status == 404
        assert "/metrics" in body

    def test_query_string_ignored(self, server):
        status, _, _ = _get(server.url("/healthz?verbose=1"))
        assert status == 200


class TestStalling:
    def test_stale_cycle_gauge_means_503(self, registry):
        registry.gauge("monitor.last_cycle_unix").set(time.time() - 120.0)
        with TelemetryServer(
            registry=registry, port=0, stalled_after_s=30.0
        ) as server:
            status, _, body = _get(server.url("/healthz"))
        assert status == 503
        document = json.loads(body)
        assert document["status"] == "stalled"
        assert "no cycle completed" in document["reason"]

    def test_fresh_cycle_keeps_200(self, registry):
        with TelemetryServer(
            registry=registry, port=0, stalled_after_s=3600.0
        ) as server:
            status, _, _ = _get(server.url("/healthz"))
        assert status == 200

    def test_no_cycles_yet_is_not_stalled(self):
        # A campaign that has not completed its first cycle has nothing
        # to be stale relative to; only a *previous* cycle going quiet
        # trips the detector.
        with TelemetryServer(
            registry=MetricsRegistry(), port=0, stalled_after_s=0.001
        ) as server:
            status, _, body = _get(server.url("/healthz"))
        assert status == 200
        assert json.loads(body)["last_cycle_unix"] is None

    def test_mark_stalled_forces_503(self, server):
        server.mark_stalled("operator says down")
        status, _, body = _get(server.url("/healthz"))
        assert status == 503
        assert json.loads(body)["reason"] == "operator says down"
        server.clear_stalled()
        status, _, _ = _get(server.url("/healthz"))
        assert status == 200


class TestLifecycle:
    def test_start_is_idempotent(self, server):
        assert server.start() == server.port

    def test_stop_is_idempotent(self, registry):
        server = TelemetryServer(registry=registry, port=0)
        server.start()
        server.stop()
        server.stop()
        assert server.port == 0

    def test_ephemeral_ports_are_distinct_instances(self, registry):
        with TelemetryServer(registry=registry, port=0) as a:
            with TelemetryServer(registry=registry, port=0) as b:
                assert a.port != b.port
                assert _get(a.url("/healthz"))[0] == 200
                assert _get(b.url("/healthz"))[0] == 200
