"""Unit tests for repro.core.scoring (Eqs. 1-5), with hand-computed cases."""

import pytest

from repro.core.aggregation import SequenceSource
from repro.core.config import MissingDataPolicy, paper_config
from repro.core.exceptions import DataError
from repro.core.metrics import Metric
from repro.core.scoring import (
    flat_score,
    score_region,
    score_requirement,
    score_use_case,
)
from repro.core.usecases import UseCase
from repro.core.weights import DatasetWeights

U, M = UseCase, Metric

ALL_METRICS = tuple(Metric)


def perfect():
    return SequenceSource(
        download_mbps=[500.0] * 10,
        upload_mbps=[500.0] * 10,
        latency_ms=[5.0] * 10,
        packet_loss=[0.0] * 10,
    )


def terrible():
    return SequenceSource(
        download_mbps=[1.0] * 10,
        upload_mbps=[0.5] * 10,
        latency_ms=[900.0] * 10,
        packet_loss=[0.2] * 10,
    )


def two_dataset_config(weight_a=1, weight_b=1):
    """Paper thresholds/weights, two synthetic datasets 'a' and 'b'."""
    return paper_config(
        datasets={"a": ALL_METRICS, "b": ALL_METRICS}
    ).with_(
        dataset_weights=DatasetWeights(
            {
                (u, m, d): w
                for u in UseCase
                for m in Metric
                for d, w in (("a", weight_a), ("b", weight_b))
            }
        )
    )


class TestExtremes:
    def test_all_pass_scores_one(self, perfect_sources, config):
        assert score_region(perfect_sources, config).value == pytest.approx(1.0)

    def test_all_fail_scores_zero(self, terrible_sources, config):
        assert score_region(terrible_sources, config).value == pytest.approx(0.0)

    def test_score_is_bounded(self, fiber_sources, dsl_sources, config):
        for sources in (fiber_sources, dsl_sources):
            value = score_region(sources, config).value
            assert 0.0 <= value <= 1.0


class TestEquationOne:
    """Requirement agreement score: weighted average of dataset verdicts."""

    def test_equal_weights_split_verdict(self):
        config = two_dataset_config()
        sources = {"a": perfect(), "b": terrible()}
        req = score_requirement(U.GAMING, M.DOWNLOAD, sources, config)
        assert req.value == pytest.approx(0.5)
        assert not req.unanimous

    def test_unequal_weights(self):
        config = two_dataset_config(weight_a=3, weight_b=1)
        sources = {"a": perfect(), "b": terrible()}
        req = score_requirement(U.GAMING, M.DOWNLOAD, sources, config)
        assert req.value == pytest.approx(0.75)

    def test_zero_weight_dataset_excluded(self):
        config = two_dataset_config(weight_a=1, weight_b=0)
        sources = {"a": perfect(), "b": terrible()}
        req = score_requirement(U.GAMING, M.DOWNLOAD, sources, config)
        assert req.value == pytest.approx(1.0)
        assert [v.dataset for v in req.verdicts] == ["a"]

    def test_dataset_without_observations_drops_out(self):
        config = two_dataset_config()
        sources = {
            "a": perfect(),
            "b": SequenceSource(download_mbps=None, latency_ms=[900.0] * 5),
        }
        req = score_requirement(U.GAMING, M.DOWNLOAD, sources, config)
        assert req.value == pytest.approx(1.0)

    def test_verdict_details_recorded(self):
        config = two_dataset_config()
        sources = {"a": perfect(), "b": terrible()}
        req = score_requirement(U.GAMING, M.LATENCY, sources, config)
        by_name = {v.dataset: v for v in req.verdicts}
        assert by_name["a"].passed and not by_name["b"].passed
        assert by_name["a"].aggregate == pytest.approx(5.0)
        assert by_name["a"].threshold == pytest.approx(50.0)
        assert by_name["a"].sample_count == 10
        assert by_name["a"].score == 1 and by_name["b"].score == 0


class TestThresholdBoundaries:
    def test_exactly_at_throughput_threshold_passes(self):
        config = two_dataset_config(weight_b=0)
        source = SequenceSource(download_mbps=[100.0] * 10)
        req = score_requirement(
            U.WEB_BROWSING, M.DOWNLOAD, {"a": source}, config
        )
        assert req.value == pytest.approx(1.0)

    def test_just_below_throughput_threshold_fails(self):
        config = two_dataset_config(weight_b=0)
        source = SequenceSource(download_mbps=[99.99] * 10)
        req = score_requirement(
            U.WEB_BROWSING, M.DOWNLOAD, {"a": source}, config
        )
        assert req.value == pytest.approx(0.0)

    def test_exactly_at_latency_threshold_passes(self):
        config = two_dataset_config(weight_b=0)
        source = SequenceSource(latency_ms=[50.0] * 10)
        req = score_requirement(
            U.WEB_BROWSING, M.LATENCY, {"a": source}, config
        )
        assert req.value == pytest.approx(1.0)

    def test_percentile_rule_sees_the_tail(self):
        # 94 % of tests at 10 ms, 6 % at 900 ms: the 95th percentile
        # fails the 50 ms bar even though the median is excellent.
        config = two_dataset_config(weight_b=0)
        latencies = [10.0] * 94 + [900.0] * 6
        source = SequenceSource(latency_ms=latencies)
        req = score_requirement(
            U.WEB_BROWSING, M.LATENCY, {"a": source}, config
        )
        assert req.value == pytest.approx(0.0)


class TestEquationTwo:
    def test_hand_computed_use_case_score(self):
        # b carries no loss data, so loss is judged by a alone (S=1);
        # all other requirements split 0.5. Web browsing weights 3,2,4,4:
        # S_u = (3*0.5 + 2*0.5 + 4*0.5 + 4*1.0) / 13 = 8.5/13.
        config = two_dataset_config()
        b = SequenceSource(
            download_mbps=[1.0] * 10,
            upload_mbps=[0.5] * 10,
            latency_ms=[900.0] * 10,
            packet_loss=None,
        )
        sources = {"a": perfect(), "b": b}
        entry = score_use_case(U.WEB_BROWSING, sources, config)
        assert entry.value == pytest.approx(8.5 / 13)

    def test_requirement_lookup(self, perfect_sources, config):
        entry = score_use_case(U.GAMING, perfect_sources, config)
        assert entry.requirement(M.LATENCY).value == pytest.approx(1.0)
        with pytest.raises(KeyError):
            entry.requirement("nope")


class TestMissingDataPolicies:
    def make_sources_without_latency(self):
        source = SequenceSource(
            download_mbps=[500.0] * 10,
            upload_mbps=[500.0] * 10,
            packet_loss=[0.0] * 10,
        )
        return {"a": source}

    def test_skip_renormalizes(self):
        config = two_dataset_config().with_(
            missing_data=MissingDataPolicy.SKIP
        )
        sources = self.make_sources_without_latency()
        entry = score_use_case(U.GAMING, sources, config)
        # dl/ul/loss all pass; latency skipped entirely.
        assert entry.value == pytest.approx(1.0)
        assert entry.skipped_metrics == (M.LATENCY,)

    def test_fail_counts_missing_as_zero(self):
        config = two_dataset_config().with_(
            missing_data=MissingDataPolicy.FAIL
        )
        sources = self.make_sources_without_latency()
        entry = score_use_case(U.GAMING, sources, config)
        # Gaming weights 4,4,5,4: latency (5) scores 0 → 12/17.
        assert entry.value == pytest.approx(12 / 17)

    def test_strict_raises(self):
        config = two_dataset_config().with_(
            missing_data=MissingDataPolicy.STRICT
        )
        sources = self.make_sources_without_latency()
        with pytest.raises(DataError, match="strict"):
            score_use_case(U.GAMING, sources, config)

    def test_no_data_at_all_raises(self):
        config = two_dataset_config()
        with pytest.raises(DataError, match="no requirement"):
            score_use_case(U.GAMING, {"a": SequenceSource()}, config)


class TestEquationsFourFive:
    def test_empty_sources_rejected(self, config):
        with pytest.raises(DataError, match="at least one"):
            score_region({}, config)

    def test_use_case_weighting(self):
        # All use cases 0.5 when half the (equal-weight) datasets pass.
        cfg = two_dataset_config()
        mixed = {"a": perfect(), "b": terrible()}
        breakdown = score_region(mixed, cfg)
        for entry in breakdown.use_cases:
            assert entry.value == pytest.approx(0.5)
        assert breakdown.value == pytest.approx(0.5)

    def test_flat_expansion_equals_nested(self, fiber_sources, dsl_sources, config):
        for sources in (fiber_sources, dsl_sources):
            breakdown = score_region(sources, config)
            assert flat_score(breakdown) == pytest.approx(
                breakdown.value, abs=1e-12
            )

    def test_flat_expansion_with_missing_data(self):
        config = two_dataset_config()
        b = SequenceSource(download_mbps=[1.0] * 10)
        breakdown = score_region({"a": perfect(), "b": b}, config)
        assert flat_score(breakdown) == pytest.approx(breakdown.value, abs=1e-12)

    def test_breakdown_navigation(self, perfect_sources, config):
        breakdown = score_region(perfect_sources, config)
        assert len(breakdown.use_cases) == 6
        assert breakdown.use_case(U.GAMING).use_case is U.GAMING
        with pytest.raises(KeyError):
            breakdown.use_case("nope")
        values = breakdown.use_case_values()
        assert set(values) == set(UseCase)

    def test_grades_exposed(self, perfect_sources, config):
        breakdown = score_region(perfect_sources, config)
        assert breakdown.grade == "A"
        assert breakdown.credit == 850
