"""Unit tests for repro.core.thresholds (paper Fig. 2)."""

import pytest

from repro.core.exceptions import ThresholdError
from repro.core.metrics import Metric
from repro.core.quality import QualityLevel
from repro.core.thresholds import (
    RangePolicy,
    Threshold,
    ThresholdRange,
    ThresholdTable,
    paper_thresholds,
)
from repro.core.usecases import UseCase

U, M = UseCase, Metric


class TestThresholdRange:
    def test_resolve_low(self):
        assert ThresholdRange(50.0, 100.0).resolve(RangePolicy.LOW) == 50.0

    def test_resolve_mid(self):
        assert ThresholdRange(50.0, 100.0).resolve(RangePolicy.MID) == 75.0

    def test_resolve_high(self):
        assert ThresholdRange(50.0, 100.0).resolve(RangePolicy.HIGH) == 100.0

    def test_degenerate_range_allowed(self):
        assert ThresholdRange(50.0, 50.0).resolve(RangePolicy.MID) == 50.0

    def test_inverted_range_rejected(self):
        with pytest.raises(ThresholdError):
            ThresholdRange(100.0, 50.0)

    def test_non_positive_bounds_rejected(self):
        with pytest.raises(ThresholdError):
            ThresholdRange(0.0, 50.0)
        with pytest.raises(ThresholdError):
            ThresholdRange(-1.0, 50.0)


class TestThreshold:
    def test_minimum_level_lookup(self):
        cell = Threshold(10.0, 100.0)
        assert cell.value(QualityLevel.MINIMUM) == 10.0

    def test_high_level_lookup(self):
        cell = Threshold(10.0, 100.0)
        assert cell.value(QualityLevel.HIGH) == 100.0

    def test_other_cell_falls_back_to_minimum(self):
        cell = Threshold(10.0, None)
        assert cell.value(QualityLevel.HIGH) == 10.0
        assert not cell.high_published

    def test_range_cell_uses_policy(self):
        cell = Threshold(25.0, ThresholdRange(50.0, 100.0))
        assert cell.value(QualityLevel.HIGH, RangePolicy.LOW) == 50.0
        assert cell.value(QualityLevel.HIGH, RangePolicy.MID) == 75.0
        assert cell.value(QualityLevel.HIGH, RangePolicy.HIGH) == 100.0

    def test_range_policy_irrelevant_at_minimum_level(self):
        cell = Threshold(25.0, ThresholdRange(50.0, 100.0))
        assert cell.value(QualityLevel.MINIMUM, RangePolicy.HIGH) == 25.0

    def test_non_positive_minimum_rejected(self):
        with pytest.raises(ThresholdError):
            Threshold(0.0, 10.0)

    def test_non_positive_high_rejected(self):
        with pytest.raises(ThresholdError):
            Threshold(10.0, -5.0)


class TestPaperTable:
    """Cell-by-cell transcription check of the poster's Fig. 2."""

    @pytest.fixture(scope="class")
    def table(self):
        return paper_thresholds()

    @pytest.mark.parametrize(
        "use_case,metric,minimum,high",
        [
            (U.WEB_BROWSING, M.DOWNLOAD, 10.0, 100.0),
            (U.WEB_BROWSING, M.LATENCY, 100.0, 50.0),
            (U.WEB_BROWSING, M.PACKET_LOSS, 0.01, 0.005),
            (U.VIDEO_STREAMING, M.DOWNLOAD, 25.0, 50.0),
            (U.VIDEO_STREAMING, M.UPLOAD, 10.0, 10.0),
            (U.VIDEO_STREAMING, M.PACKET_LOSS, 0.01, 0.001),
            (U.VIDEO_CONFERENCING, M.DOWNLOAD, 10.0, 100.0),
            (U.VIDEO_CONFERENCING, M.UPLOAD, 25.0, 100.0),
            (U.VIDEO_CONFERENCING, M.LATENCY, 50.0, 20.0),
            (U.VIDEO_CONFERENCING, M.PACKET_LOSS, 0.005, 0.001),
            (U.AUDIO_STREAMING, M.DOWNLOAD, 10.0, 50.0),
            (U.AUDIO_STREAMING, M.UPLOAD, 10.0, 50.0),
            (U.AUDIO_STREAMING, M.LATENCY, 100.0, 50.0),
            (U.AUDIO_STREAMING, M.PACKET_LOSS, 0.01, 0.001),
            (U.ONLINE_BACKUP, M.DOWNLOAD, 10.0, 10.0),
            (U.ONLINE_BACKUP, M.UPLOAD, 25.0, 200.0),
            (U.ONLINE_BACKUP, M.LATENCY, 100.0, 100.0),
            (U.ONLINE_BACKUP, M.PACKET_LOSS, 0.01, 0.001),
            (U.GAMING, M.DOWNLOAD, 10.0, 100.0),
            (U.GAMING, M.LATENCY, 100.0, 50.0),
            (U.GAMING, M.PACKET_LOSS, 0.01, 0.005),
        ],
    )
    def test_cell_values(self, table, use_case, metric, minimum, high):
        cell = table.get(use_case, metric)
        assert cell.minimum == pytest.approx(minimum)
        assert cell.value(QualityLevel.HIGH, RangePolicy.LOW) == pytest.approx(high)

    def test_other_cells_have_no_high_threshold(self):
        table = paper_thresholds()
        assert not table.get(U.WEB_BROWSING, M.UPLOAD).high_published
        assert not table.get(U.GAMING, M.UPLOAD).high_published

    def test_video_streaming_download_is_a_range(self):
        cell = paper_thresholds().get(U.VIDEO_STREAMING, M.DOWNLOAD)
        assert isinstance(cell.high, ThresholdRange)
        assert (cell.high.low, cell.high.high) == (50.0, 100.0)

    def test_latency_high_is_stricter_than_minimum(self, table):
        for use_case in UseCase:
            cell = table.get(use_case, M.LATENCY)
            assert cell.value(QualityLevel.HIGH) <= cell.minimum

    def test_loss_thresholds_are_fractions(self, table):
        for use_case in UseCase:
            cell = table.get(use_case, M.PACKET_LOSS)
            assert 0.0 < cell.minimum <= 0.01


class TestThresholdTable:
    def test_incomplete_table_rejected(self):
        with pytest.raises(ThresholdError, match="incomplete"):
            ThresholdTable({(U.GAMING, M.LATENCY): Threshold(100.0, 50.0)})

    def test_iteration_is_row_major_paper_order(self):
        keys = [key for key, _ in paper_thresholds()]
        assert keys[0] == (U.WEB_BROWSING, M.DOWNLOAD)
        assert keys[3] == (U.WEB_BROWSING, M.PACKET_LOSS)
        assert keys[4] == (U.VIDEO_STREAMING, M.DOWNLOAD)
        assert len(keys) == 24

    def test_replace_creates_modified_copy(self):
        table = paper_thresholds()
        new = table.replace({(U.GAMING, M.LATENCY): Threshold(80.0, 40.0)})
        assert new.get(U.GAMING, M.LATENCY).minimum == 80.0
        assert table.get(U.GAMING, M.LATENCY).minimum == 100.0

    def test_equality(self):
        assert paper_thresholds() == paper_thresholds()
        changed = paper_thresholds().replace(
            {(U.GAMING, M.LATENCY): Threshold(80.0, 40.0)}
        )
        assert changed != paper_thresholds()

    def test_inverted_high_threshold_rejected(self):
        # High-quality latency above the minimum bar is nonsense.
        with pytest.raises(ThresholdError, match="less demanding"):
            paper_thresholds().replace(
                {(U.GAMING, M.LATENCY): Threshold(50.0, 100.0)}
            )

    def test_inverted_throughput_threshold_rejected(self):
        with pytest.raises(ThresholdError, match="less demanding"):
            paper_thresholds().replace(
                {(U.GAMING, M.DOWNLOAD): Threshold(100.0, 10.0)}
            )

    def test_value_shortcut_matches_cell_lookup(self):
        table = paper_thresholds()
        assert table.value(
            U.VIDEO_STREAMING, M.DOWNLOAD, QualityLevel.HIGH, RangePolicy.MID
        ) == pytest.approx(75.0)
