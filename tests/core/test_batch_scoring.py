"""score_regions (columnar batch path) vs score_region (reference path).

The batch API exists purely for speed; these tests pin the contract
that makes it safe: the fast path must return *bit-identical*
ScoreBreakdowns to scoring each region separately through the row
plane, and the Eq. 5 expansion must agree with both.
"""

import pytest

from repro.core.exceptions import DataError
from repro.core.scoring import flat_score, score_region, score_regions
from repro.measurements.collection import MeasurementSet
from repro.measurements.columnar import ColumnarStore


@pytest.fixture(scope="module")
def batch(small_campaign):
    return small_campaign


def reference_breakdowns(records, config):
    """The pre-batch per-region loop, kept as the ground truth."""
    return {
        region: score_region(
            records.for_region(region).group_by_source(), config
        )
        for region in records.regions()
    }


class TestEquality:
    def test_bit_identical_to_per_region_path(self, batch, config):
        expected = reference_breakdowns(batch, config)
        actual = score_regions(batch, config)
        assert set(actual) == set(expected)
        for region in expected:
            # Frozen dataclasses compare field-by-field; float equality
            # here means every aggregate, verdict, and composite is
            # bit-identical, not merely approximately equal.
            assert actual[region] == expected[region]
            assert actual[region].value == expected[region].value

    def test_flat_score_agrees_on_fast_path(self, batch, config):
        for breakdown in score_regions(batch, config).values():
            assert flat_score(breakdown) == pytest.approx(
                breakdown.value, abs=1e-12
            )

    def test_conservative_semantics_also_identical(self, batch, config):
        from repro.core.aggregation import (
            AggregationPolicy,
            PercentileSemantics,
        )

        conservative = config.with_(
            aggregation=AggregationPolicy(
                percentile=95.0,
                semantics=PercentileSemantics.CONSERVATIVE,
            )
        )
        expected = reference_breakdowns(batch, conservative)
        actual = score_regions(batch, conservative)
        for region in expected:
            assert actual[region] == expected[region]


class TestInputs:
    def test_accepts_prebuilt_store(self, batch, config):
        store = ColumnarStore.from_measurements(batch)
        assert score_regions(store, config) == score_regions(batch, config)

    def test_accepts_pregrouped_mapping(self, batch, config):
        grouped = {
            region: batch.for_region(region).group_by_source()
            for region in batch.regions()
        }
        actual = score_regions(grouped, config)
        assert actual == reference_breakdowns(batch, config)

    def test_accepts_plain_record_iterable(self, batch, config):
        actual = score_regions(list(batch), config)
        assert set(actual) == set(batch.regions())

    def test_empty_batch_rejected(self, config):
        with pytest.raises(DataError):
            score_regions(MeasurementSet(), config)

    def test_result_keys_sorted(self, batch, config):
        assert list(score_regions(batch, config)) == sorted(batch.regions())
