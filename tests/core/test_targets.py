"""Unit tests for repro.core.targets (distance-to-threshold planning)."""

import pytest

from repro.core.aggregation import SequenceSource
from repro.core.config import paper_config
from repro.core.metrics import Metric
from repro.core.scoring import score_region
from repro.core.targets import metric_targets, render_targets, threshold_gaps
from repro.core.usecases import UseCase


def single_config():
    return paper_config(datasets={"a": tuple(Metric)})


def sources(down=500.0, up=500.0, latency=5.0, loss=0.0):
    return {
        "a": SequenceSource(
            download_mbps=[down] * 10,
            upload_mbps=[up] * 10,
            latency_ms=[latency] * 10,
            packet_loss=[loss] * 10,
        )
    }


class TestThresholdGaps:
    def test_perfect_region_has_no_gaps(self, perfect_sources, config):
        breakdown = score_region(perfect_sources, config)
        assert threshold_gaps(breakdown) == []

    def test_gap_arithmetic_higher_is_better(self):
        # 60 Mb/s against web-browsing's 100 Mb/s high bar → gap 40.
        breakdown = score_region(sources(down=60.0), single_config())
        gaps = [
            g
            for g in threshold_gaps(breakdown)
            if g.use_case is UseCase.WEB_BROWSING and g.metric is Metric.DOWNLOAD
        ]
        assert len(gaps) == 1
        assert gaps[0].absolute_gap == pytest.approx(40.0)
        assert gaps[0].relative_gap == pytest.approx(0.4)

    def test_gap_arithmetic_lower_is_better(self):
        # 61 ms against gaming's 50 ms bar → cut 11 ms.
        breakdown = score_region(sources(latency=61.0), single_config())
        gaps = [
            g
            for g in threshold_gaps(breakdown)
            if g.use_case is UseCase.GAMING and g.metric is Metric.LATENCY
        ]
        assert gaps[0].absolute_gap == pytest.approx(11.0)
        assert "cut" in gaps[0].describe()

    def test_sorted_by_relative_gap(self, dsl_sources, config):
        gaps = threshold_gaps(score_region(dsl_sources, config))
        rel = [g.relative_gap for g in gaps]
        assert rel == sorted(rel, reverse=True)

    def test_gap_is_per_dataset(self, config):
        # Each failing dataset produces its own gap entry.
        two = paper_config(datasets={"a": tuple(Metric), "b": tuple(Metric)})
        shared = sources(latency=61.0)["a"]
        breakdown = score_region({"a": shared, "b": shared}, two)
        gaming_latency = [
            g
            for g in threshold_gaps(breakdown)
            if g.use_case is UseCase.GAMING and g.metric is Metric.LATENCY
        ]
        assert {g.dataset for g in gaming_latency} == {"a", "b"}


class TestMetricTargets:
    def test_worst_gap_per_metric(self):
        # Latency 61 ms fails gaming (50) and conferencing (20):
        # the worst gap is 41 ms.
        breakdown = score_region(sources(latency=61.0), single_config())
        targets = metric_targets(breakdown)
        assert targets[Metric.LATENCY] == pytest.approx(41.0)

    def test_passing_metrics_absent(self):
        breakdown = score_region(sources(latency=61.0), single_config())
        targets = metric_targets(breakdown)
        assert Metric.PACKET_LOSS not in targets

    def test_realistic_region_targets(self, dsl_sources, config):
        breakdown = score_region(dsl_sources, config)
        targets = metric_targets(breakdown)
        # A DSL region needs more of everything.
        assert Metric.DOWNLOAD in targets
        assert Metric.UPLOAD in targets
        assert all(value > 0 for value in targets.values())


class TestVerdictMargins:
    def test_margin_arithmetic_higher_is_better(self):
        # 200 Mb/s against web-browsing's 100 Mb/s bar → 100 of slack.
        from repro.core.targets import verdict_margins

        breakdown = score_region(sources(down=200.0), single_config())
        margins = [
            m
            for m in verdict_margins(breakdown)
            if m.use_case is UseCase.WEB_BROWSING and m.metric is Metric.DOWNLOAD
        ]
        assert margins[0].absolute_margin == pytest.approx(100.0)
        assert margins[0].relative_margin == pytest.approx(1.0)

    def test_margin_arithmetic_lower_is_better(self):
        from repro.core.targets import verdict_margins

        # 15 ms against conferencing's 20 ms bar → 5 ms slack.
        breakdown = score_region(sources(latency=15.0), single_config())
        margins = [
            m
            for m in verdict_margins(breakdown)
            if m.use_case is UseCase.VIDEO_CONFERENCING
            and m.metric is Metric.LATENCY
        ]
        assert margins[0].absolute_margin == pytest.approx(5.0)

    def test_sorted_tightest_first(self, fiber_sources, config):
        from repro.core.targets import verdict_margins

        margins = verdict_margins(score_region(fiber_sources, config))
        rel = [m.relative_margin for m in margins]
        assert rel == sorted(rel)

    def test_failing_verdicts_excluded(self, terrible_sources, config):
        from repro.core.targets import verdict_margins

        assert verdict_margins(score_region(terrible_sources, config)) == []

    def test_gaps_and_margins_partition_verdicts(self, dsl_sources, config):
        from repro.core.targets import verdict_margins

        breakdown = score_region(dsl_sources, config)
        total_verdicts = sum(
            len(req.verdicts)
            for entry in breakdown.use_cases
            for req in entry.requirements
        )
        assert len(threshold_gaps(breakdown)) + len(
            verdict_margins(breakdown)
        ) == total_verdicts


class TestRender:
    def test_no_gaps_message(self, perfect_sources, config):
        text = render_targets(score_region(perfect_sources, config))
        assert "no improvement targets" in text

    def test_plan_structure(self, dsl_sources, config):
        text = render_targets(score_region(dsl_sources, config))
        assert "Improvement targets" in text
        assert "Per-metric worst-case gaps" in text
        assert "Mbit/s" in text
