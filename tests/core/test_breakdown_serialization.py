"""Unit tests for ScoreBreakdown archiving (to_dict / from_dict)."""

import json

import pytest

from repro.core.exceptions import DataError
from repro.core.scoring import ScoreBreakdown, flat_score, score_region


class TestRoundTrip:
    def test_round_trip_preserves_everything(self, fiber_sources, config):
        breakdown = score_region(fiber_sources, config)
        rebuilt = ScoreBreakdown.from_dict(breakdown.to_dict())
        assert rebuilt == breakdown

    def test_round_trip_with_missing_data(self, config):
        from repro.core.aggregation import SequenceSource
        from repro.core.config import paper_config
        from repro.core.metrics import Metric

        cfg = paper_config(datasets={"a": tuple(Metric)})
        sources = {
            "a": SequenceSource(
                download_mbps=[500.0] * 5, packet_loss=[0.0] * 5
            )
        }
        breakdown = score_region(sources, cfg)
        rebuilt = ScoreBreakdown.from_dict(breakdown.to_dict())
        assert rebuilt == breakdown
        # Skipped requirements survive as None.
        assert rebuilt.use_cases[0].skipped_metrics == breakdown.use_cases[
            0
        ].skipped_metrics

    def test_json_serializable(self, dsl_sources, config):
        breakdown = score_region(dsl_sources, config)
        text = json.dumps(breakdown.to_dict())
        rebuilt = ScoreBreakdown.from_dict(json.loads(text))
        assert rebuilt.value == pytest.approx(breakdown.value)

    def test_rebuilt_breakdown_still_satisfies_eq5(self, dsl_sources, config):
        breakdown = score_region(dsl_sources, config)
        rebuilt = ScoreBreakdown.from_dict(breakdown.to_dict())
        assert flat_score(rebuilt) == pytest.approx(rebuilt.value)

    def test_document_carries_presentation_fields(self, fiber_sources, config):
        document = score_region(fiber_sources, config).to_dict()
        assert document["grade"] in "ABCDE"
        assert 300 <= document["credit"] <= 850
        assert len(document["use_cases"]) == 6

    def test_malformed_document_rejected(self):
        with pytest.raises(DataError, match="malformed"):
            ScoreBreakdown.from_dict({"score": 0.5})

    def test_bad_enum_rejected(self, fiber_sources, config):
        document = score_region(fiber_sources, config).to_dict()
        document["use_cases"][0]["use_case"] = "doomscrolling"
        with pytest.raises(DataError):
            ScoreBreakdown.from_dict(document)


class TestCliJson:
    def test_score_json_output(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "campaign.jsonl"
        main(
            [
                "simulate",
                str(path),
                "--regions",
                "metro-fiber",
                "--tests",
                "60",
                "--subscribers",
                "20",
            ]
        )
        capsys.readouterr()
        assert main(["score", str(path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert set(document) == {"kernel", "regions"}
        assert document["kernel"] == "vectorized"
        assert set(document["regions"]) == {"metro-fiber"}
        rebuilt = ScoreBreakdown.from_dict(document["regions"]["metro-fiber"])
        assert 0.0 <= rebuilt.value <= 1.0

    def test_score_json_records_exact_kernel(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "campaign.jsonl"
        main(
            [
                "simulate",
                str(path),
                "--regions",
                "metro-fiber",
                "--tests",
                "40",
                "--subscribers",
                "10",
            ]
        )
        capsys.readouterr()
        assert main(["--kernel", "exact", "score", str(path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kernel"] == "exact"
        assert set(document["regions"]) == {"metro-fiber"}
