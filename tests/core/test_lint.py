"""Unit tests for repro.core.lint."""

import pytest

from repro.core.aggregation import AggregationPolicy
from repro.core.config import paper_config
from repro.core.lint import Severity, lint_config
from repro.core.metrics import Metric
from repro.core.thresholds import Threshold
from repro.core.usecases import UseCase
from repro.core.weights import DatasetWeights
from repro.measurements.collection import MeasurementSet
from repro.measurements.record import Measurement


def codes(findings):
    return [finding.code for finding in findings]


class TestConfigOnlyLints:
    def test_paper_config_is_clean(self, config):
        assert lint_config(config) == []

    def test_unobservable_requirement_flagged(self):
        config = paper_config(datasets={"ookla": (Metric.DOWNLOAD,)})
        findings = lint_config(config)
        assert "unobservable-requirement" in codes(findings)
        # upload/latency/loss for every use case → 18 findings.
        assert codes(findings).count("unobservable-requirement") == 18

    def test_percent_as_fraction_loss_threshold_flagged(self, config):
        broken = config.with_(
            thresholds=config.thresholds.replace(
                {
                    (UseCase.GAMING, Metric.PACKET_LOSS): Threshold(
                        1.0, 0.5
                    )  # "1%" typed as 1.0
                }
            )
        )
        findings = lint_config(broken)
        assert "loss-threshold-units" in codes(findings)
        assert any(f.severity is Severity.ERROR for f in findings)
        assert any("0.01" in f.message for f in findings)

    def test_extreme_percentile_flagged(self, config):
        for percentile in (0.0, 100.0):
            tweaked = config.with_(
                aggregation=AggregationPolicy(percentile=percentile)
            )
            assert "extreme-percentile" in codes(lint_config(tweaked))

    def test_findings_render_readably(self, config):
        broken = config.with_(
            aggregation=AggregationPolicy(percentile=100.0)
        )
        finding = lint_config(broken)[0]
        assert str(finding).startswith("[warning] extreme-percentile:")


class TestDataLints:
    def test_clean_match(self, config, small_campaign):
        findings = lint_config(config, small_campaign.for_region("metro-fiber"))
        assert findings == []

    def test_trusted_dataset_missing_from_data(self, config, small_campaign):
        ndt_only = small_campaign.for_source("ndt")
        findings = lint_config(config, ndt_only)
        missing = [
            f for f in findings if f.code == "trusted-dataset-missing"
        ]
        assert {("cloudflare" in f.message or "ookla" in f.message)
                for f in missing} == {True}
        assert len(missing) == 2

    def test_untrusted_dataset_in_data(self, small_campaign):
        config = paper_config().with_(
            dataset_weights=DatasetWeights(
                {
                    (u, m, "ndt"): 1
                    for u in UseCase
                    for m in Metric
                }
            )
        )
        findings = lint_config(config, small_campaign)
        untrusted = [
            f for f in findings if f.code == "untrusted-dataset-present"
        ]
        assert len(untrusted) == 2  # cloudflare, ookla ignored

    def test_kbit_threshold_mismatch_detected(self, config):
        records = MeasurementSet(
            Measurement(
                region="r", source="ndt", timestamp=float(i),
                download_mbps=50.0 + i,
            )
            for i in range(30)
        )
        broken = config.with_(
            thresholds=config.thresholds.replace(
                {
                    (UseCase.GAMING, Metric.DOWNLOAD): Threshold(
                        10_000.0, 100_000.0  # kbit/s typed as Mbit/s
                    )
                }
            )
        )
        findings = lint_config(broken, records)
        assert "threshold-unit-mismatch" in codes(findings)
        assert any("kbit" in f.message for f in findings)

    def test_seconds_latency_threshold_detected(self, config):
        records = MeasurementSet(
            Measurement(
                region="r", source="ndt", timestamp=float(i),
                latency_ms=20.0 + i,
            )
            for i in range(30)
        )
        broken = config.with_(
            thresholds=config.thresholds.replace(
                {
                    (UseCase.GAMING, Metric.LATENCY): Threshold(
                        0.1, 0.05  # seconds typed into a ms field
                    )
                }
            )
        )
        findings = lint_config(broken, records)
        assert "threshold-unit-mismatch" in codes(findings)
        assert any("seconds" in f.message for f in findings)

    def test_reachable_thresholds_not_flagged(self, config, small_campaign):
        findings = lint_config(config, small_campaign)
        assert "threshold-unit-mismatch" not in codes(findings)
