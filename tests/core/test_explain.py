"""Unit tests for repro.core.explain."""

import pytest

from repro.core.aggregation import SequenceSource
from repro.core.config import paper_config
from repro.core.explain import (
    disagreements,
    explain,
    failing_requirements,
    improvement_opportunities,
)
from repro.core.scoring import score_region
from repro.core.weights import DatasetWeights
from repro.core.metrics import Metric
from repro.core.usecases import UseCase


def split_config():
    """Two fully-capable synthetic datasets with equal trust."""
    return paper_config(datasets={"a": tuple(Metric), "b": tuple(Metric)})


def perfect():
    return SequenceSource(
        download_mbps=[500.0] * 10,
        upload_mbps=[500.0] * 10,
        latency_ms=[5.0] * 10,
        packet_loss=[0.0] * 10,
    )


def terrible():
    return SequenceSource(
        download_mbps=[1.0] * 10,
        upload_mbps=[0.5] * 10,
        latency_ms=[900.0] * 10,
        packet_loss=[0.2] * 10,
    )


class TestFailingRequirements:
    def test_perfect_region_has_no_findings(self, perfect_sources, config):
        breakdown = score_region(perfect_sources, config)
        assert failing_requirements(breakdown) == []

    def test_terrible_region_fails_everything(self, terrible_sources, config):
        breakdown = score_region(terrible_sources, config)
        findings = failing_requirements(breakdown)
        assert len(findings) == 24  # 6 use cases x 4 requirements
        assert all(f.agreement == 0.0 for f in findings)

    def test_threshold_filters_partial_agreements(self):
        config = split_config()
        breakdown = score_region({"a": perfect(), "b": terrible()}, config)
        # Everything is split 0.5: included at threshold 1.0, excluded at 0.5.
        assert len(failing_requirements(breakdown, threshold=1.0)) == 24
        assert failing_requirements(breakdown, threshold=0.5) == []

    def test_findings_carry_dataset_detail(self):
        config = split_config()
        breakdown = score_region({"a": perfect(), "b": terrible()}, config)
        finding = failing_requirements(breakdown)[0]
        assert "a=pass" in finding.detail
        assert "b=fail" in finding.detail


class TestDisagreements:
    def test_unanimous_verdicts_produce_none(self, perfect_sources, config):
        breakdown = score_region(perfect_sources, config)
        assert disagreements(breakdown) == []

    def test_split_verdicts_detected(self):
        config = split_config()
        breakdown = score_region({"a": perfect(), "b": terrible()}, config)
        findings = disagreements(breakdown)
        assert len(findings) == 24
        assert all(0.0 < f.agreement < 1.0 for f in findings)


class TestOpportunities:
    def test_gains_sum_to_headroom_when_fully_observed(self):
        config = split_config()
        breakdown = score_region({"a": perfect(), "b": terrible()}, config)
        gains = sum(o.iqb_gain for o in improvement_opportunities(breakdown))
        assert gains == pytest.approx(1.0 - breakdown.value)

    def test_sorted_by_gain(self, dsl_sources, config):
        breakdown = score_region(dsl_sources, config)
        opportunities = improvement_opportunities(breakdown)
        gains = [o.iqb_gain for o in opportunities]
        assert gains == sorted(gains, reverse=True)

    def test_perfect_region_has_no_opportunities(self, perfect_sources, config):
        breakdown = score_region(perfect_sources, config)
        assert improvement_opportunities(breakdown) == []


class TestExplainText:
    def test_mentions_score_and_grade(self, dsl_sources, config):
        text = explain(score_region(dsl_sources, config))
        assert "IQB score:" in text
        assert "grade" in text

    def test_lists_every_use_case(self, dsl_sources, config):
        text = explain(score_region(dsl_sources, config))
        for use_case in UseCase:
            assert use_case.display_name in text

    def test_mentions_opportunities_when_imperfect(self, dsl_sources, config):
        text = explain(score_region(dsl_sources, config))
        assert "improvement opportunities" in text

    def test_skipped_requirement_rendered(self):
        config = split_config()
        source = SequenceSource(
            download_mbps=[500.0] * 5,
            upload_mbps=[500.0] * 5,
            packet_loss=[0.0] * 5,
        )
        text = explain(score_region({"a": source}, config))
        assert "no data (skipped)" in text
