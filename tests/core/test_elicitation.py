"""Unit tests for repro.core.elicitation (simulated expert panels)."""

import pytest

from repro.core.elicitation import recovery_curve, simulate_panel
from repro.core.metrics import Metric
from repro.core.usecases import UseCase
from repro.core.weights import paper_requirement_weights


class TestSimulatePanel:
    def test_zero_noise_recovers_exactly(self):
        result = simulate_panel(experts=10, noise_sigma=0.0, seed=1)
        assert result.recovery_rate == 1.0
        assert result.consensus == paper_requirement_weights()

    def test_reproducible(self):
        a = simulate_panel(experts=20, noise_sigma=0.8, seed=3)
        b = simulate_panel(experts=20, noise_sigma=0.8, seed=3)
        assert a.consensus == b.consensus
        assert a.recovery_rate == b.recovery_rate

    def test_large_panel_mostly_recovers_published_weights(self):
        result = simulate_panel(experts=60, noise_sigma=0.8, seed=0)
        assert result.recovery_rate >= 0.8

    def test_consensus_is_valid_weight_matrix(self):
        result = simulate_panel(experts=7, noise_sigma=2.5, seed=9)
        for use_case in UseCase:
            for metric in Metric:
                assert 0 <= result.consensus.get(use_case, metric) <= 5

    def test_dispersion_reported_per_cell(self):
        result = simulate_panel(experts=30, noise_sigma=1.0, seed=2)
        assert len(result.dispersion) == 24
        assert all(d >= 0.0 for d in result.dispersion.values())

    def test_dispersion_scales_with_noise(self):
        quiet = simulate_panel(experts=40, noise_sigma=0.2, seed=4)
        loud = simulate_panel(experts=40, noise_sigma=2.0, seed=4)
        mean = lambda r: sum(r.dispersion.values()) / len(r.dispersion)
        assert mean(loud) > mean(quiet)

    def test_mean_consensus_supported(self):
        result = simulate_panel(experts=25, noise_sigma=0.5, seed=5, consensus="mean")
        assert result.recovery_rate > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_panel(experts=0)
        with pytest.raises(ValueError):
            simulate_panel(consensus="mode")


class TestRecoveryCurve:
    def test_returns_all_sizes(self):
        curve = recovery_curve(panel_sizes=(5, 40), trials=5, seed=1)
        assert set(curve) == {5, 40}

    def test_bigger_panels_recover_better(self):
        curve = recovery_curve(
            panel_sizes=(3, 60), noise_sigma=1.2, trials=10, seed=2
        )
        assert curve[60] >= curve[3]

    def test_rates_are_fractions(self):
        curve = recovery_curve(panel_sizes=(10,), trials=4, seed=3)
        assert 0.0 <= curve[10] <= 1.0
