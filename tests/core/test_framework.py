"""Unit tests for repro.core.framework (the facade and Fig. 1 tiers)."""

import pytest

from repro.core.exceptions import DataError
from repro.core.framework import IQBFramework, region_scores_table
from repro.core.metrics import Metric
from repro.core.usecases import UseCase
from repro.measurements.collection import MeasurementSet


class TestScoring:
    def test_default_config_is_paper(self):
        framework = IQBFramework()
        assert framework.config.aggregation.percentile == 95.0

    def test_score_measurements_filters_region(self, small_campaign):
        framework = IQBFramework()
        fiber = framework.score_measurements(small_campaign, "metro-fiber")
        dsl = framework.score_measurements(small_campaign, "rural-dsl")
        assert fiber.value > dsl.value

    def test_unknown_region_raises(self, small_campaign):
        framework = IQBFramework()
        with pytest.raises(DataError, match="atlantis"):
            framework.score_measurements(small_campaign, "atlantis")

    def test_empty_set_raises(self):
        framework = IQBFramework()
        with pytest.raises(DataError):
            framework.score_measurements(MeasurementSet(), "anywhere")

    def test_score_all_regions(self, small_campaign):
        framework = IQBFramework()
        scores = framework.score_all_regions(small_campaign)
        assert set(scores) == {"metro-fiber", "rural-dsl"}

    def test_score_sources_direct(self, fiber_sources):
        framework = IQBFramework()
        assert 0.0 <= framework.score_sources(fiber_sources).value <= 1.0


class TestTierMap:
    def test_covers_all_use_cases(self):
        structure = IQBFramework().tier_map()
        assert set(structure) == {u.value for u in UseCase}

    def test_all_requirements_present_with_paper_weights(self):
        # Table 1 has no zero weight, so every metric appears everywhere.
        structure = IQBFramework().tier_map()
        for requirements in structure.values():
            assert set(requirements) == {m.value for m in Metric}

    def test_ookla_absent_from_loss_tier(self):
        structure = IQBFramework().tier_map()
        assert "ookla" not in structure["gaming"]["packet_loss"]
        assert "ookla" in structure["gaming"]["download_mbps"]

    def test_render_mentions_every_tier(self):
        text = IQBFramework().render_tier_map()
        assert "web_browsing" in text
        assert "latency_ms" in text
        assert "cloudflare" in text

    def test_repr_is_informative(self):
        assert "percentile=95.0" in repr(IQBFramework())


class TestScoresTable:
    def test_sorted_descending(self, small_campaign):
        framework = IQBFramework()
        rows = region_scores_table(framework.score_all_regions(small_campaign))
        scores = [score for _, score, _ in rows]
        assert scores == sorted(scores, reverse=True)
        assert rows[0][0] == "metro-fiber"

    def test_rows_carry_grades(self, small_campaign):
        framework = IQBFramework()
        rows = region_scores_table(framework.score_all_regions(small_campaign))
        for _, score, letter in rows:
            assert letter in "ABCDE"
            assert 0.0 <= score <= 1.0
