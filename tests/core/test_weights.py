"""Unit tests for repro.core.weights (paper Table 1)."""

import pytest

from repro.core.exceptions import WeightError
from repro.core.metrics import Metric
from repro.core.usecases import UseCase
from repro.core.weights import (
    DatasetWeights,
    RequirementWeights,
    UseCaseWeights,
    equal_use_case_weights,
    normalize,
    paper_requirement_weights,
    popularity_use_case_weights,
    validate_weight,
)

U, M = UseCase, Metric


class TestValidateWeight:
    def test_valid_range(self):
        for value in range(6):
            assert validate_weight(value) == value

    def test_out_of_range(self):
        with pytest.raises(WeightError):
            validate_weight(6)
        with pytest.raises(WeightError):
            validate_weight(-1)

    def test_non_integer_rejected(self):
        with pytest.raises(WeightError):
            validate_weight(2.5)

    def test_bool_rejected(self):
        with pytest.raises(WeightError):
            validate_weight(True)


class TestNormalize:
    def test_sums_to_one(self):
        result = normalize({"a": 2, "b": 3})
        assert sum(result.values()) == pytest.approx(1.0)
        assert result["a"] == pytest.approx(0.4)

    def test_zero_sum_rejected(self):
        with pytest.raises(WeightError, match="sum to 0"):
            normalize({"a": 0, "b": 0})


class TestPaperTable1:
    """Cell-by-cell transcription check of the poster's Table 1."""

    @pytest.fixture(scope="class")
    def weights(self):
        return paper_requirement_weights()

    @pytest.mark.parametrize(
        "use_case,row",
        [
            (U.WEB_BROWSING, (3, 2, 4, 4)),
            (U.VIDEO_STREAMING, (4, 2, 4, 4)),
            (U.AUDIO_STREAMING, (4, 1, 3, 4)),
            (U.VIDEO_CONFERENCING, (4, 4, 4, 4)),
            (U.ONLINE_BACKUP, (4, 4, 2, 4)),
            (U.GAMING, (4, 4, 5, 4)),
        ],
    )
    def test_rows(self, weights, use_case, row):
        assert tuple(weights.row(use_case).values()) == row

    def test_gaming_latency_is_the_only_five(self, weights):
        fives = [
            (u, m)
            for u in UseCase
            for m in Metric
            if weights.get(u, m) == 5
        ]
        assert fives == [(U.GAMING, M.LATENCY)]

    def test_normalized_rows_sum_to_one(self, weights):
        for use_case in UseCase:
            row = weights.normalized_row(use_case)
            assert sum(row.values()) == pytest.approx(1.0)

    def test_gaming_normalization(self, weights):
        row = weights.normalized_row(U.GAMING)
        assert row[M.LATENCY] == pytest.approx(5 / 17)
        assert row[M.DOWNLOAD] == pytest.approx(4 / 17)


class TestRequirementWeights:
    def test_incomplete_matrix_rejected(self):
        with pytest.raises(WeightError, match="incomplete"):
            RequirementWeights({(U.GAMING, M.LATENCY): 5})

    def test_all_zero_row_rejected(self):
        matrix = {(u, m): 1 for u in UseCase for m in Metric}
        for metric in Metric:
            matrix[(U.GAMING, metric)] = 0
        with pytest.raises(WeightError, match="all requirement weights"):
            RequirementWeights(matrix)

    def test_replace_is_nondestructive(self):
        base = paper_requirement_weights()
        new = base.replace({(U.GAMING, M.LATENCY): 3})
        assert new.get(U.GAMING, M.LATENCY) == 3
        assert base.get(U.GAMING, M.LATENCY) == 5

    def test_replace_validates(self):
        with pytest.raises(WeightError):
            paper_requirement_weights().replace({(U.GAMING, M.LATENCY): 9})

    def test_equality(self):
        assert paper_requirement_weights() == paper_requirement_weights()
        assert paper_requirement_weights() != paper_requirement_weights().replace(
            {(U.GAMING, M.LATENCY): 4}
        )


class TestUseCaseWeights:
    def test_equal_preset(self):
        weights = equal_use_case_weights()
        assert all(weights.get(u) == 1 for u in UseCase)
        normalized = weights.normalized()
        assert all(v == pytest.approx(1 / 6) for v in normalized.values())

    def test_popularity_preset_bounds(self):
        weights = popularity_use_case_weights()
        for use_case in UseCase:
            assert 1 <= weights.get(use_case) <= 5

    def test_popularity_orders_web_above_backup(self):
        weights = popularity_use_case_weights()
        assert weights.get(U.WEB_BROWSING) > weights.get(U.ONLINE_BACKUP)

    def test_incomplete_rejected(self):
        with pytest.raises(WeightError, match="incomplete"):
            UseCaseWeights({U.GAMING: 3})

    def test_all_zero_rejected(self):
        with pytest.raises(WeightError, match="zero"):
            UseCaseWeights({u: 0 for u in UseCase})

    def test_as_dict_is_a_copy(self):
        weights = equal_use_case_weights()
        copy = weights.as_dict()
        copy[U.GAMING] = 5
        assert weights.get(U.GAMING) == 1


class TestDatasetWeights:
    def test_equal_builder_respects_capabilities(self):
        weights = DatasetWeights.equal(
            {"ndt": (M.DOWNLOAD, M.LATENCY), "ookla": (M.DOWNLOAD,)}
        )
        assert weights.get(U.GAMING, M.DOWNLOAD, "ndt") == 1
        assert weights.get(U.GAMING, M.DOWNLOAD, "ookla") == 1
        assert weights.get(U.GAMING, M.LATENCY, "ookla") == 0

    def test_unknown_dataset_weighs_zero(self):
        weights = DatasetWeights.equal({"ndt": (M.DOWNLOAD,)})
        assert weights.get(U.GAMING, M.DOWNLOAD, "mystery") == 0

    def test_row_total_zero_when_no_capability(self):
        weights = DatasetWeights.equal({"ookla": (M.DOWNLOAD,)})
        assert weights.row_total(U.GAMING, M.PACKET_LOSS) == 0

    def test_normalized_row(self):
        weights = DatasetWeights(
            {
                (U.GAMING, M.LATENCY, "ndt"): 3,
                (U.GAMING, M.LATENCY, "ookla"): 1,
            }
        )
        row = weights.normalized_row(U.GAMING, M.LATENCY)
        assert row["ndt"] == pytest.approx(0.75)
        assert row["ookla"] == pytest.approx(0.25)

    def test_normalized_zero_row_raises(self):
        weights = DatasetWeights({(U.GAMING, M.LATENCY, "ndt"): 0})
        with pytest.raises(WeightError):
            weights.normalized_row(U.GAMING, M.LATENCY)

    def test_datasets_listing(self):
        weights = DatasetWeights.equal({"b": (M.DOWNLOAD,), "a": (M.UPLOAD,)})
        assert weights.datasets == ("a", "b")

    def test_replace(self):
        base = DatasetWeights.equal({"ndt": (M.DOWNLOAD,)})
        new = base.replace({(U.GAMING, M.DOWNLOAD, "ndt"): 5})
        assert new.get(U.GAMING, M.DOWNLOAD, "ndt") == 5
        assert base.get(U.GAMING, M.DOWNLOAD, "ndt") == 1

    def test_weight_validation(self):
        with pytest.raises(WeightError):
            DatasetWeights({(U.GAMING, M.DOWNLOAD, "ndt"): 7})
