"""Unit tests for repro.core.sensitivity."""

import pytest

from repro.core.aggregation import PercentileSemantics
from repro.core.metrics import Metric
from repro.core.sensitivity import (
    monte_carlo_weights,
    percentile_sweep,
    range_policy_comparison,
    requirement_weight_sensitivity,
    semantics_comparison,
    use_case_weight_sensitivity,
)
from repro.core.usecases import UseCase


class TestRequirementWeightSensitivity:
    def test_covers_all_cells(self, fiber_sources, config):
        impacts = requirement_weight_sensitivity(fiber_sources, config)
        assert len(impacts) == 24
        assert {(i.use_case, i.metric) for i in impacts} == {
            (u, m) for u in UseCase for m in Metric
        }

    def test_sorted_by_swing(self, fiber_sources, config):
        impacts = requirement_weight_sensitivity(fiber_sources, config)
        swings = [i.swing for i in impacts]
        assert swings == sorted(swings, reverse=True)

    def test_scores_stay_bounded(self, dsl_sources, config):
        for impact in requirement_weight_sensitivity(dsl_sources, config):
            assert 0.0 <= impact.score_minus <= 1.0
            assert 0.0 <= impact.score_plus <= 1.0

    def test_perfect_region_is_insensitive(self, perfect_sources, config):
        # Every S_{u,r,d} is 1, so reweighting changes nothing.
        for impact in requirement_weight_sensitivity(perfect_sources, config):
            assert impact.swing == pytest.approx(0.0)

    def test_delta_validation(self, fiber_sources, config):
        with pytest.raises(ValueError):
            requirement_weight_sensitivity(fiber_sources, config, delta=0)

    def test_base_weights_recorded(self, fiber_sources, config):
        impacts = requirement_weight_sensitivity(fiber_sources, config)
        by_cell = {(i.use_case, i.metric): i for i in impacts}
        assert by_cell[(UseCase.GAMING, Metric.LATENCY)].base_weight == 5


class TestUseCaseWeightSensitivity:
    def test_covers_all_use_cases(self, fiber_sources, config):
        out = use_case_weight_sensitivity(fiber_sources, config)
        assert set(out) == set(UseCase)

    def test_bounded(self, dsl_sources, config):
        for lo, hi in use_case_weight_sensitivity(dsl_sources, config).values():
            assert 0.0 <= lo <= 1.0
            assert 0.0 <= hi <= 1.0


class TestSweeps:
    def test_percentile_sweep_keys(self, fiber_sources, config):
        sweep = percentile_sweep(fiber_sources, config, percentiles=(50.0, 95.0))
        assert set(sweep) == {50.0, 95.0}
        assert all(0.0 <= v <= 1.0 for v in sweep.values())

    def test_semantics_comparison_has_both(self, fiber_sources, config):
        out = semantics_comparison(fiber_sources, config)
        assert set(out) == {s.value for s in PercentileSemantics}

    def test_conservative_never_scores_higher(
        self, fiber_sources, dsl_sources, config
    ):
        # Conservative semantics judges the worst tail of throughput, so
        # it can only remove passes relative to literal semantics.
        for sources in (fiber_sources, dsl_sources):
            out = semantics_comparison(sources, config)
            assert out["conservative"] <= out["literal"] + 1e-12

    def test_range_policy_comparison(self, fiber_sources, config):
        out = range_policy_comparison(fiber_sources, config)
        assert set(out) == {"low", "mid", "high"}
        # A stricter resolution of "50-100" can only lower the score.
        assert out["high"] <= out["mid"] + 1e-12 <= out["low"] + 2e-12


class TestScoreModeComparison:
    def test_all_modes_present_and_ordered(self, dsl_sources, config):
        from repro.core.sensitivity import score_mode_comparison

        out = score_mode_comparison(dsl_sources, config)
        assert set(out) == {"binary", "graded", "continuous"}
        assert out["binary"] - 1e-12 <= out["graded"] <= out["continuous"] + 1e-12


class TestMonteCarlo:
    def test_reproducible(self, fiber_sources, config):
        a = monte_carlo_weights(fiber_sources, config, samples=30, seed=5)
        b = monte_carlo_weights(fiber_sources, config, samples=30, seed=5)
        assert a.scores == b.scores

    def test_different_seeds_differ(self, fiber_sources, config):
        a = monte_carlo_weights(fiber_sources, config, samples=30, seed=5)
        b = monte_carlo_weights(fiber_sources, config, samples=30, seed=6)
        assert a.scores != b.scores

    def test_statistics_consistent(self, dsl_sources, config):
        result = monte_carlo_weights(dsl_sources, config, samples=50, seed=1)
        assert len(result.scores) == 50
        assert result.p05 <= result.mean <= result.p95
        assert result.spread == pytest.approx(result.p95 - result.p05)
        assert all(0.0 <= s <= 1.0 for s in result.scores)

    def test_sample_validation(self, fiber_sources, config):
        with pytest.raises(ValueError):
            monte_carlo_weights(fiber_sources, config, samples=0)
