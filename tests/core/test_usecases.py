"""Unit tests for repro.core.usecases."""

from repro.core.usecases import UseCase


class TestUseCaseSet:
    def test_six_use_cases_as_in_paper(self):
        assert len(UseCase) == 6

    def test_ordered_matches_fig2_rows(self):
        assert UseCase.ordered() == (
            UseCase.WEB_BROWSING,
            UseCase.VIDEO_STREAMING,
            UseCase.VIDEO_CONFERENCING,
            UseCase.AUDIO_STREAMING,
            UseCase.ONLINE_BACKUP,
            UseCase.GAMING,
        )

    def test_ordered_covers_all(self):
        assert set(UseCase.ordered()) == set(UseCase)


class TestProfiles:
    def test_display_names(self):
        assert UseCase.WEB_BROWSING.display_name == "Web Browsing"
        assert UseCase.VIDEO_CONFERENCING.display_name == "Video Conferencing"

    def test_every_use_case_has_a_description(self):
        for use_case in UseCase:
            assert use_case.description
            assert use_case.description.endswith(".")

    def test_interactive_flags(self):
        assert UseCase.GAMING.interactive
        assert UseCase.VIDEO_CONFERENCING.interactive
        assert UseCase.WEB_BROWSING.interactive
        assert not UseCase.VIDEO_STREAMING.interactive
        assert not UseCase.ONLINE_BACKUP.interactive
        assert not UseCase.AUDIO_STREAMING.interactive

    def test_popularity_in_unit_interval(self):
        for use_case in UseCase:
            assert 0.0 < use_case.default_popularity <= 1.0

    def test_web_browsing_is_most_popular(self):
        assert UseCase.WEB_BROWSING.default_popularity == max(
            u.default_popularity for u in UseCase
        )

    def test_values_are_stable_identifiers(self):
        # Serialized configs depend on these strings; breaking them
        # silently breaks every stored config.
        assert UseCase.WEB_BROWSING.value == "web_browsing"
        assert UseCase.ONLINE_BACKUP.value == "online_backup"
