"""Unit tests for the GRADED score-mode extension (DESIGN.md §2)."""

import pytest

from repro.core.aggregation import SequenceSource
from repro.core.config import ScoreMode, paper_config
from repro.core.metrics import Metric
from repro.core.quality import QualityLevel
from repro.core.scoring import score_region, score_requirement
from repro.core.usecases import UseCase

U, M = UseCase, Metric

ALL = tuple(Metric)


def single_source_config(**overrides):
    return paper_config(datasets={"a": ALL}, **overrides)


def source_with(download):
    return {"a": SequenceSource(download_mbps=[download] * 10)}


class TestGradedRequirementScores:
    """Web-browsing download: minimum 10, high 100 (Fig. 2)."""

    @pytest.mark.parametrize(
        "download,expected",
        [
            (150.0, 1.0),  # meets high
            (100.0, 1.0),  # exactly at high (inclusive)
            (50.0, 0.5),   # between min and high
            (10.0, 0.5),   # exactly at minimum
            (5.0, 0.0),    # below minimum
        ],
    )
    def test_three_levels(self, download, expected):
        config = single_source_config(score_mode=ScoreMode.GRADED)
        req = score_requirement(
            U.WEB_BROWSING, M.DOWNLOAD, source_with(download), config
        )
        assert req.value == pytest.approx(expected)

    def test_graded_on_lower_is_better_metric(self):
        # Conferencing latency: minimum 50 ms, high 20 ms.
        config = single_source_config(score_mode=ScoreMode.GRADED)
        for latency, expected in [(10.0, 1.0), (35.0, 0.5), (80.0, 0.0)]:
            req = score_requirement(
                U.VIDEO_CONFERENCING,
                M.LATENCY,
                {"a": SequenceSource(latency_ms=[latency] * 10)},
                config,
            )
            assert req.value == pytest.approx(expected)

    def test_other_cell_collapses_to_binary(self):
        # Web-browsing upload has no published high threshold: high
        # falls back to minimum, so graded degenerates to 0/1.
        config = single_source_config(score_mode=ScoreMode.GRADED)
        for upload, expected in [(15.0, 1.0), (5.0, 0.0)]:
            req = score_requirement(
                U.WEB_BROWSING,
                M.UPLOAD,
                {"a": SequenceSource(upload_mbps=[upload] * 10)},
                config,
            )
            assert req.value == pytest.approx(expected)

    def test_verdict_consistency(self):
        config = single_source_config(score_mode=ScoreMode.GRADED)
        req = score_requirement(
            U.WEB_BROWSING, M.DOWNLOAD, source_with(50.0), config
        )
        verdict = req.verdicts[0]
        assert verdict.score == 0.5
        assert not verdict.passed


class TestSandwichProperty:
    """GRADED sits between BINARY@HIGH and BINARY@MINIMUM."""

    def test_sandwich_on_simulated_regions(self, fiber_sources, dsl_sources):
        for sources in (fiber_sources, dsl_sources):
            high = score_region(
                sources, paper_config(quality_level=QualityLevel.HIGH)
            ).value
            minimum = score_region(
                sources, paper_config(quality_level=QualityLevel.MINIMUM)
            ).value
            graded = score_region(
                sources, paper_config(score_mode=ScoreMode.GRADED)
            ).value
            assert high - 1e-12 <= graded <= minimum + 1e-12

    def test_graded_distinguishes_mid_tier_regions(self, fiber_sources):
        # A region passing min everywhere but high nowhere scores 0 in
        # the paper's binary-high mode but 0.5 graded — the extension's
        # point: resolution between "minimum" and "nothing".
        mid = {
            "a": SequenceSource(
                download_mbps=[30.0] * 10,
                upload_mbps=[30.0] * 10,
                latency_ms=[60.0] * 10,
                packet_loss=[0.002] * 10,
            )
        }
        config = paper_config(datasets={"a": ALL})
        binary = score_region(config=config, sources=mid).value
        graded = score_region(
            config=config.with_(score_mode=ScoreMode.GRADED), sources=mid
        ).value
        assert graded > binary


class TestContinuousMode:
    """The CONTINUOUS refinement (ext-qoe resolution finding)."""

    def config(self):
        return single_source_config(score_mode=ScoreMode.CONTINUOUS)

    @pytest.mark.parametrize(
        "download,expected",
        [
            (150.0, 1.0),   # beyond high
            (100.0, 1.0),   # at high (web browsing: min 10, high 100)
            (55.0, 0.75),   # halfway up the min→high ramp
            (10.0, 0.5),    # at minimum
            (5.0, 0.25),    # half of minimum → proportional ramp
            (0.0, 0.0),     # nothing
        ],
    )
    def test_throughput_anchors_and_ramps(self, download, expected):
        req = score_requirement(
            U.WEB_BROWSING, M.DOWNLOAD, source_with(download), self.config()
        )
        assert req.value == pytest.approx(expected)

    @pytest.mark.parametrize(
        "latency,expected",
        [
            (10.0, 1.0),    # at/below high (conferencing: min 50, high 20)
            (35.0, 0.75),   # halfway down the ramp
            (50.0, 0.5),    # at minimum
            (100.0, 0.25),  # 2x minimum → reciprocal ramp
        ],
    )
    def test_latency_anchors_and_ramps(self, latency, expected):
        req = score_requirement(
            U.VIDEO_CONFERENCING,
            M.LATENCY,
            {"a": SequenceSource(latency_ms=[latency] * 10)},
            self.config(),
        )
        assert req.value == pytest.approx(expected)

    def test_degenerate_equal_tiers(self):
        # Online backup download: min == high == 10 → binary at the bar
        # with a proportional ramp below.
        for download, expected in [(12.0, 1.0), (10.0, 1.0), (5.0, 0.25)]:
            req = score_requirement(
                U.ONLINE_BACKUP,
                M.DOWNLOAD,
                source_with(download),
                self.config(),
            )
            assert req.value == pytest.approx(expected)

    def test_distinguishes_failing_regions(self):
        # The whole point: 5 Mb/s and 0.5 Mb/s no longer tie.
        slow = score_region(source_with(5.0), self.config()).use_cases
        slower = score_region(source_with(0.5), self.config()).use_cases
        # compare first use case's download requirement
        a = slow[0].requirement(M.DOWNLOAD).value
        b = slower[0].requirement(M.DOWNLOAD).value
        assert a > b > 0.0

    def test_dominates_graded_dominates_binary(self, dsl_sources):
        base = paper_config()
        binary = score_region(dsl_sources, base).value
        graded = score_region(
            dsl_sources, base.with_(score_mode=ScoreMode.GRADED)
        ).value
        continuous = score_region(
            dsl_sources, base.with_(score_mode=ScoreMode.CONTINUOUS)
        ).value
        assert binary - 1e-12 <= graded <= continuous + 1e-12


class TestSerialization:
    def test_round_trip(self):
        from repro.core import IQBConfig

        config = paper_config(score_mode=ScoreMode.GRADED)
        rebuilt = IQBConfig.from_json(config.to_json())
        assert rebuilt.score_mode is ScoreMode.GRADED

    def test_older_documents_default_to_binary(self):
        from repro.core import IQBConfig

        document = paper_config().to_dict()
        del document["score_mode"]
        assert IQBConfig.from_dict(document).score_mode is ScoreMode.BINARY
