"""Unit tests for repro.core.metrics."""

import pytest

from repro.core.metrics import (
    Direction,
    Metric,
    loss_fraction_to_percent,
    loss_percent_to_fraction,
)


class TestDirection:
    def test_throughput_metrics_are_higher_is_better(self):
        assert Metric.DOWNLOAD.direction is Direction.HIGHER_IS_BETTER
        assert Metric.UPLOAD.direction is Direction.HIGHER_IS_BETTER

    def test_latency_and_loss_are_lower_is_better(self):
        assert Metric.LATENCY.direction is Direction.LOWER_IS_BETTER
        assert Metric.PACKET_LOSS.direction is Direction.LOWER_IS_BETTER


class TestUnits:
    def test_throughput_unit(self):
        assert Metric.DOWNLOAD.unit == "Mbit/s"
        assert Metric.UPLOAD.unit == "Mbit/s"

    def test_latency_unit(self):
        assert Metric.LATENCY.unit == "ms"

    def test_loss_unit_is_fraction(self):
        assert Metric.PACKET_LOSS.unit == "fraction"

    def test_display_names_match_paper_columns(self):
        assert Metric.DOWNLOAD.display_name == "Download Throughput"
        assert Metric.PACKET_LOSS.display_name == "Packet Loss"

    def test_field_names_are_record_attributes(self):
        assert Metric.DOWNLOAD.field_name == "download_mbps"
        assert Metric.LATENCY.field_name == "latency_ms"


class TestMeets:
    def test_higher_is_better_above_threshold(self):
        assert Metric.DOWNLOAD.meets(150.0, 100.0)

    def test_higher_is_better_below_threshold(self):
        assert not Metric.DOWNLOAD.meets(50.0, 100.0)

    def test_threshold_is_inclusive_for_throughput(self):
        assert Metric.UPLOAD.meets(10.0, 10.0)

    def test_lower_is_better_below_threshold(self):
        assert Metric.LATENCY.meets(30.0, 50.0)

    def test_lower_is_better_above_threshold(self):
        assert not Metric.LATENCY.meets(80.0, 50.0)

    def test_threshold_is_inclusive_for_latency(self):
        assert Metric.LATENCY.meets(50.0, 50.0)

    def test_loss_comparison(self):
        assert Metric.PACKET_LOSS.meets(0.001, 0.005)
        assert not Metric.PACKET_LOSS.meets(0.01, 0.005)


class TestBetterWorse:
    def test_better_throughput_is_larger(self):
        assert Metric.DOWNLOAD.better(10.0, 20.0) == 20.0

    def test_better_latency_is_smaller(self):
        assert Metric.LATENCY.better(10.0, 20.0) == 10.0

    def test_worse_is_the_other_one(self):
        assert Metric.DOWNLOAD.worse(10.0, 20.0) == 10.0
        assert Metric.LATENCY.worse(10.0, 20.0) == 20.0

    @pytest.mark.parametrize("metric", list(Metric))
    def test_better_and_worse_partition_the_pair(self, metric):
        a, b = 3.0, 7.0
        assert {metric.better(a, b), metric.worse(a, b)} == {a, b}


class TestOrdering:
    def test_ordered_matches_paper_columns(self):
        assert Metric.ordered() == (
            Metric.DOWNLOAD,
            Metric.UPLOAD,
            Metric.LATENCY,
            Metric.PACKET_LOSS,
        )

    def test_ordered_covers_all_metrics(self):
        assert set(Metric.ordered()) == set(Metric)


class TestLossConversions:
    def test_paper_one_percent(self):
        assert loss_percent_to_fraction(1.0) == pytest.approx(0.01)

    def test_paper_half_percent(self):
        assert loss_percent_to_fraction(0.5) == pytest.approx(0.005)

    def test_round_trip(self):
        assert loss_fraction_to_percent(
            loss_percent_to_fraction(0.1)
        ) == pytest.approx(0.1)

    def test_percent_out_of_range(self):
        with pytest.raises(ValueError):
            loss_percent_to_fraction(101.0)
        with pytest.raises(ValueError):
            loss_percent_to_fraction(-0.1)

    def test_fraction_out_of_range(self):
        with pytest.raises(ValueError):
            loss_fraction_to_percent(1.5)
        with pytest.raises(ValueError):
            loss_fraction_to_percent(-0.01)

    def test_boundaries_accepted(self):
        assert loss_percent_to_fraction(0.0) == 0.0
        assert loss_percent_to_fraction(100.0) == 1.0
