"""Property-based parity: the vectorized kernel against the scalar oracle.

The batched numpy kernel (:mod:`repro.core.kernel`) must reproduce the
scalar path's ScoreBreakdown trees for *any* batch, not just the
fixtures the unit tests use. Hypothesis generates adversarial batches —
regions with missing datasets and metrics, single-sample columns,
lopsided sample counts — and these tests assert:

* **BINARY**: exact float equality, tier by tier (dataclass ``==`` on
  the full breakdown trees compares every float bitwise).
* **GRADED / CONTINUOUS**: the documented ≤1e-12 tolerance. The paper
  configuration's axes (6 use cases, 4 requirements, ≤ a handful of
  datasets) are all short enough that numpy reduces in the scalar
  ``sum``'s sequential order, so in practice these modes are bit-equal
  too; the tolerance exists to keep the contract honest for configs
  with enough datasets to cross numpy's pairwise-summation cutoff.
* **Errors**: DataError parity — same exception, same message, for
  every missing-data policy (SKIP / FAIL / STRICT).
* **Parallel**: parity holds through ``score_regions_parallel`` with
  ``workers=2`` (vectorized shards vs the serial exact path).
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MissingDataPolicy, ScoreMode, paper_config
from repro.core.exceptions import DataError
from repro.core.scoring import ScoreBreakdown, score_regions
from repro.measurements.collection import MeasurementSet
from repro.measurements.record import Measurement

DATASETS = ("cloudflare", "ndt", "ookla")
REGIONS = ("alpha", "beta", "gamma")

#: Documented agreement bound for the graded/continuous modes.
TOLERANCE = 1e-12


def _metric_values(draw, allow_missing: bool):
    """One record's metric fields; possibly observing only a subset."""
    maybe = (
        (lambda s: st.none() | s) if allow_missing else (lambda s: s)
    )
    fields = {
        "download_mbps": maybe(
            st.floats(min_value=0.0, max_value=2000.0, allow_nan=False)
        ),
        "upload_mbps": maybe(
            st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)
        ),
        "latency_ms": maybe(
            st.floats(min_value=0.1, max_value=2000.0, allow_nan=False)
        ),
        "packet_loss": maybe(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        ),
    }
    values = {name: draw(strategy) for name, strategy in fields.items()}
    if all(v is None for v in values.values()):
        values["latency_ms"] = draw(
            st.floats(min_value=0.1, max_value=2000.0, allow_nan=False)
        )
    return values


@st.composite
def batches(draw):
    """A measurement batch: 1-3 regions, ragged datasets and metrics.

    Every shape the kernel must survive is reachable: a dataset absent
    from a region (degraded mode), a metric observed by nobody (missing
    requirement → policy-dependent), single-sample columns (the
    quantile edge where lo == hi), and metric subsets per record.
    """
    records = []
    stamp = 0
    n_regions = draw(st.integers(min_value=1, max_value=3))
    for region in REGIONS[:n_regions]:
        present = draw(
            st.lists(
                st.sampled_from(DATASETS),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        for dataset in present:
            n_records = draw(st.integers(min_value=1, max_value=5))
            for _ in range(n_records):
                values = _metric_values(draw, allow_missing=True)
                records.append(
                    Measurement(
                        region=region,
                        source=dataset,
                        timestamp=float(stamp),
                        **values,
                    )
                )
                stamp += 1
    return MeasurementSet(records)


def _assert_close_trees(vec, exact):
    """Structural equality with ≤ TOLERANCE on every float tier."""
    assert set(vec) == set(exact)
    for region in vec:
        v, e = vec[region].to_dict(), exact[region].to_dict()
        assert math.isclose(
            v["score"], e["score"], rel_tol=0.0, abs_tol=TOLERANCE
        )
        assert v["degraded_datasets"] == e["degraded_datasets"]
        assert len(v["use_cases"]) == len(e["use_cases"])
        for uc_v, uc_e in zip(v["use_cases"], e["use_cases"]):
            assert uc_v["use_case"] == uc_e["use_case"]
            assert uc_v["weight"] == uc_e["weight"]
            assert math.isclose(
                uc_v["score"], uc_e["score"], rel_tol=0.0, abs_tol=TOLERANCE
            )
            for req_v, req_e in zip(
                uc_v["requirements"], uc_e["requirements"]
            ):
                assert req_v["metric"] == req_e["metric"]
                assert req_v["threshold"] == req_e["threshold"]
                assert req_v["weight"] == req_e["weight"]
                if req_e["score"] is None:
                    assert req_v["score"] is None
                else:
                    assert math.isclose(
                        req_v["score"],
                        req_e["score"],
                        rel_tol=0.0,
                        abs_tol=TOLERANCE,
                    )
                assert len(req_v["verdicts"]) == len(req_e["verdicts"])
                for ver_v, ver_e in zip(
                    req_v["verdicts"], req_e["verdicts"]
                ):
                    # Everything below the requirement tier is computed
                    # cell-local (no reductions): exact equality.
                    assert ver_v == ver_e


def _both_kernels(records, config):
    """(vectorized, exact) results, asserting DataError parity.

    Also checks the scores-only fast path (:func:`score_values`)
    against the exact composites — same errors, same values.
    """
    from repro.core.kernel import score_values
    from repro.measurements.columnar import ColumnarStore

    store = ColumnarStore(list(records))
    try:
        exact = score_regions(records, config, kernel="exact")
    except DataError as exact_error:
        with pytest.raises(DataError) as caught:
            score_regions(records, config, kernel="vectorized")
        assert str(caught.value) == str(exact_error)
        with pytest.raises(DataError) as caught_values:
            score_values(store, config)
        assert str(caught_values.value) == str(exact_error)
        return None
    vec = score_regions(records, config, kernel="vectorized")
    assert list(vec) == list(exact)
    values = score_values(store, config)
    assert list(values) == list(exact)
    for region, breakdown in vec.items():
        # Same tensor pass as the vectorized kernel: bit equality.
        assert values[region] == breakdown.value
    for region, breakdown in exact.items():
        assert math.isclose(
            values[region], breakdown.value, rel_tol=0.0, abs_tol=TOLERANCE
        )
    return vec, exact


class TestPropertyParity:
    @settings(max_examples=60, deadline=None)
    @given(records=batches())
    def test_binary_bit_equality(self, records):
        config = paper_config()
        result = _both_kernels(records, config)
        if result is not None:
            vec, exact = result
            assert vec == exact  # dataclass ==: bitwise on every float

    @settings(max_examples=40, deadline=None)
    @given(
        records=batches(),
        mode=st.sampled_from((ScoreMode.GRADED, ScoreMode.CONTINUOUS)),
    )
    def test_graded_and_continuous_within_tolerance(self, records, mode):
        config = paper_config().with_(score_mode=mode)
        result = _both_kernels(records, config)
        if result is not None:
            _assert_close_trees(*result)

    @settings(max_examples=40, deadline=None)
    @given(
        records=batches(),
        policy=st.sampled_from(tuple(MissingDataPolicy)),
        mode=st.sampled_from(tuple(ScoreMode)),
    )
    def test_missing_data_policies_and_error_parity(
        self, records, policy, mode
    ):
        config = paper_config().with_(missing_data=policy, score_mode=mode)
        result = _both_kernels(records, config)
        if result is not None:
            vec, exact = result
            if mode is ScoreMode.BINARY:
                assert vec == exact
            else:
                _assert_close_trees(vec, exact)


class TestTargetedEdges:
    def _records(self, cells):
        """Build a batch from (region, dataset, metric-values) tuples."""
        return MeasurementSet(
            [
                Measurement(
                    region=region,
                    source=dataset,
                    timestamp=float(i),
                    **values,
                )
                for i, (region, dataset, values) in enumerate(cells)
            ]
        )

    def test_degraded_region_parity(self):
        # cloudflare configured but dark in beta: degraded there only.
        records = self._records(
            [
                ("alpha", "ndt", {"download_mbps": 120.0,
                                  "upload_mbps": 30.0,
                                  "latency_ms": 20.0,
                                  "packet_loss": 0.001}),
                ("alpha", "cloudflare", {"download_mbps": 110.0,
                                         "upload_mbps": 25.0,
                                         "latency_ms": 25.0,
                                         "packet_loss": 0.002}),
                ("beta", "ndt", {"download_mbps": 8.0,
                                 "upload_mbps": 1.0,
                                 "latency_ms": 80.0,
                                 "packet_loss": 0.01}),
            ]
        )
        config = paper_config()
        vec = score_regions(records, config, kernel="vectorized")
        exact = score_regions(records, config, kernel="exact")
        assert vec == exact
        assert vec["alpha"].degraded_datasets == ("ookla",)
        assert set(vec["beta"].degraded_datasets) == {"cloudflare", "ookla"}

    def test_single_sample_columns(self):
        # One observation per column: the quantile path where lo == hi.
        records = self._records(
            [
                ("alpha", "ndt", {"download_mbps": 55.5,
                                  "upload_mbps": 7.25,
                                  "latency_ms": 33.0,
                                  "packet_loss": 0.004}),
            ]
        )
        for mode in ScoreMode:
            config = paper_config().with_(score_mode=mode)
            vec = score_regions(records, config, kernel="vectorized")
            exact = score_regions(records, config, kernel="exact")
            assert vec == exact

    def test_lower_is_better_boundary_values(self):
        # Latency/loss exactly on the paper thresholds: the inclusive
        # `<=` compare must agree between numpy and Metric.meets.
        records = self._records(
            [
                ("alpha", "ndt", {"latency_ms": 100.0,
                                  "packet_loss": 0.01}),
                ("alpha", "ndt", {"latency_ms": 100.0,
                                  "packet_loss": 0.01}),
                ("alpha", "cloudflare", {"download_mbps": 10.0,
                                         "upload_mbps": 1.0}),
            ]
        )
        for mode in ScoreMode:
            config = paper_config().with_(score_mode=mode)
            vec = score_regions(records, config, kernel="vectorized")
            exact = score_regions(records, config, kernel="exact")
            assert vec == exact

    def test_strict_policy_error_messages_match(self):
        # ookla observes no packet loss → STRICT raises; the kernel must
        # raise the scalar path's first error, verbatim.
        records = self._records(
            [
                ("alpha", "ookla", {"download_mbps": 100.0,
                                    "upload_mbps": 20.0,
                                    "latency_ms": 30.0}),
            ]
        )
        config = paper_config().with_(missing_data=MissingDataPolicy.STRICT)
        with pytest.raises(DataError) as exact_error:
            score_regions(records, config, kernel="exact")
        with pytest.raises(DataError) as vec_error:
            score_regions(records, config, kernel="vectorized")
        assert str(vec_error.value) == str(exact_error.value)

    def test_unknown_kernel_rejected(self):
        records = self._records(
            [("alpha", "ndt", {"download_mbps": 10.0})]
        )
        with pytest.raises(ValueError, match="unknown scoring kernel"):
            score_regions(records, paper_config(), kernel="numba")


class TestParallelParity:
    def test_workers_two_matches_exact_serial(self, config):
        from repro.netsim import CampaignConfig, region_preset, simulate_region
        from repro.netsim.population import REGION_PRESETS

        campaign = CampaignConfig(subscribers=12, tests_per_client=30)
        records = MeasurementSet()
        for name in sorted(REGION_PRESETS):
            records = records + simulate_region(
                region_preset(name), seed=23, config=campaign
            )
        exact = score_regions(records, config, kernel="exact")
        parallel = score_regions(
            records, config, workers=2, kernel="vectorized"
        )
        assert parallel == exact
        assert list(parallel) == list(exact)
        # And the exact kernel shards identically too.
        assert (
            score_regions(records, config, workers=2, kernel="exact")
            == exact
        )

    def test_serialization_roundtrip_of_kernel_output(self):
        records = MeasurementSet(
            [
                Measurement(
                    region="alpha",
                    source="ndt",
                    timestamp=float(i),
                    download_mbps=40.0 + i,
                    upload_mbps=9.0 + i,
                    latency_ms=25.0,
                    packet_loss=0.002,
                )
                for i in range(5)
            ]
        )
        vec = score_regions(records, paper_config(), kernel="vectorized")
        document = vec["alpha"].to_dict()
        # Kernel-built breakdowns serialize to pure-JSON types and
        # survive the strict from_dict validators bit-for-bit.
        import json

        rebuilt = ScoreBreakdown.from_dict(
            json.loads(json.dumps(document))
        )
        assert rebuilt == vec["alpha"]
