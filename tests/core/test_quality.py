"""Unit tests for repro.core.quality."""

import pytest

from repro.core.quality import (
    CREDIT_MAX,
    CREDIT_MIN,
    GRADE_BANDS,
    QualityLevel,
    credit_scale,
    describe,
    grade,
)


class TestQualityLevel:
    def test_two_levels_as_in_fig2(self):
        assert {level.value for level in QualityLevel} == {"minimum", "high"}


class TestGrade:
    @pytest.mark.parametrize(
        "score,expected",
        [
            (1.0, "A"),
            (0.80, "A"),
            (0.7999, "B"),
            (0.60, "B"),
            (0.5999, "C"),
            (0.40, "C"),
            (0.3999, "D"),
            (0.20, "D"),
            (0.1999, "E"),
            (0.0, "E"),
        ],
    )
    def test_band_boundaries(self, score, expected):
        assert grade(score) == expected

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            grade(1.01)
        with pytest.raises(ValueError):
            grade(-0.01)

    def test_bands_are_descending(self):
        bounds = [lower for _, lower in GRADE_BANDS]
        assert bounds == sorted(bounds, reverse=True)

    def test_bands_cover_zero(self):
        assert GRADE_BANDS[-1][1] == 0.0


class TestCreditScale:
    def test_endpoints(self):
        assert credit_scale(0.0) == CREDIT_MIN == 300
        assert credit_scale(1.0) == CREDIT_MAX == 850

    def test_midpoint(self):
        assert credit_scale(0.5) == 575

    def test_monotonic(self):
        values = [credit_scale(s / 20.0) for s in range(21)]
        assert values == sorted(values)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            credit_scale(2.0)


class TestDescribe:
    def test_contains_all_presentations(self):
        text = describe(0.75)
        assert "0.750" in text
        assert "grade B" in text
        assert "/850" in text
