"""Unit tests for repro.core.aggregation (the 95th-percentile rule)."""

import numpy as np
import pytest

from repro.core.aggregation import (
    AggregationPolicy,
    PercentileSemantics,
    SequenceSource,
    aggregate_metric,
    percentile_of,
)
from repro.core.exceptions import AggregationError
from repro.core.metrics import Metric


class TestPolicy:
    def test_default_is_literal_p95(self):
        policy = AggregationPolicy()
        assert policy.percentile == 95.0
        assert policy.semantics is PercentileSemantics.LITERAL

    def test_out_of_range_percentile_rejected(self):
        with pytest.raises(AggregationError):
            AggregationPolicy(percentile=101.0)
        with pytest.raises(AggregationError):
            AggregationPolicy(percentile=-1.0)

    def test_literal_applies_same_percentile_everywhere(self):
        policy = AggregationPolicy(percentile=95.0)
        for metric in Metric:
            assert policy.effective_percentile(metric) == 95.0

    def test_conservative_mirrors_for_throughput(self):
        policy = AggregationPolicy(
            percentile=95.0, semantics=PercentileSemantics.CONSERVATIVE
        )
        assert policy.effective_percentile(Metric.DOWNLOAD) == 5.0
        assert policy.effective_percentile(Metric.UPLOAD) == 5.0

    def test_conservative_keeps_percentile_for_latency_and_loss(self):
        policy = AggregationPolicy(
            percentile=95.0, semantics=PercentileSemantics.CONSERVATIVE
        )
        assert policy.effective_percentile(Metric.LATENCY) == 95.0
        assert policy.effective_percentile(Metric.PACKET_LOSS) == 95.0


class TestPercentileOf:
    def test_single_value(self):
        assert percentile_of([42.0], 95.0) == 42.0

    def test_median_of_two(self):
        assert percentile_of([10.0, 20.0], 50.0) == 15.0

    def test_matches_numpy_linear_interpolation(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for percentile in (0.0, 5.0, 50.0, 95.0, 100.0):
            assert percentile_of(values, percentile) == pytest.approx(
                float(np.percentile(values, percentile))
            )

    def test_empty_rejected(self):
        with pytest.raises(AggregationError, match="no values"):
            percentile_of([], 95.0)

    def test_out_of_range_percentile_rejected(self):
        with pytest.raises(AggregationError):
            percentile_of([1.0], 150.0)

    def test_p0_and_p100_are_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile_of(values, 0.0) == 1.0
        assert percentile_of(values, 100.0) == 9.0


class TestSequenceSource:
    def test_quantile_of_present_metric(self):
        source = SequenceSource(download_mbps=[10.0, 20.0, 30.0])
        assert source.quantile(Metric.DOWNLOAD, 50.0) == 20.0

    def test_missing_metric_returns_none(self):
        source = SequenceSource(download_mbps=[10.0])
        assert source.quantile(Metric.LATENCY, 50.0) is None

    def test_empty_sequence_counts_as_missing(self):
        source = SequenceSource(latency_ms=[])
        assert source.quantile(Metric.LATENCY, 50.0) is None
        assert source.sample_count(Metric.LATENCY) == 0

    def test_sample_count(self):
        source = SequenceSource(packet_loss=[0.0, 0.01, 0.02])
        assert source.sample_count(Metric.PACKET_LOSS) == 3


class TestAggregateMetric:
    def test_uses_effective_percentile(self):
        source = SequenceSource(download_mbps=list(map(float, range(1, 101))))
        literal = AggregationPolicy(95.0, PercentileSemantics.LITERAL)
        conservative = AggregationPolicy(95.0, PercentileSemantics.CONSERVATIVE)
        high = aggregate_metric(source, Metric.DOWNLOAD, literal)
        low = aggregate_metric(source, Metric.DOWNLOAD, conservative)
        assert high > low  # p95 of 1..100 vs p5 of 1..100

    def test_missing_metric_is_none(self):
        source = SequenceSource(download_mbps=[1.0])
        assert aggregate_metric(source, Metric.LATENCY, AggregationPolicy()) is None


class TestPercentileFastPaths:
    """assume_sorted and small-n paths must match np.percentile exactly."""

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    @pytest.mark.parametrize("p", [0.0, 5.0, 37.5, 50.0, 95.0, 100.0])
    def test_small_n_matches_numpy_bitwise(self, n, p):
        rng = np.random.default_rng(n * 1000 + int(p * 10))
        values = list(rng.uniform(-1e6, 1e6, size=n))
        assert percentile_of(values, p) == float(np.percentile(values, p))

    @pytest.mark.parametrize("p", [0.0, 5.0, 50.0, 95.0, 99.9, 100.0])
    def test_sorted_path_matches_numpy_bitwise(self, p):
        rng = np.random.default_rng(7)
        values = np.sort(rng.lognormal(mean=3.0, sigma=0.8, size=500))
        assert percentile_of(values, p, assume_sorted=True) == float(
            np.percentile(values, p)
        )

    def test_sorted_path_on_plain_list(self):
        assert percentile_of([1.0, 2.0, 3.0], 50.0, assume_sorted=True) == 2.0

    def test_sorted_path_single_value(self):
        assert percentile_of([42.0], 95.0, assume_sorted=True) == 42.0

    def test_sorted_path_rejects_empty(self):
        with pytest.raises(AggregationError):
            percentile_of([], 50.0, assume_sorted=True)

    def test_sorted_path_rejects_bad_percentile(self):
        with pytest.raises(AggregationError):
            percentile_of([1.0], 101.0, assume_sorted=True)

    def test_unsorted_input_without_flag_still_correct(self):
        # The small-n path sorts internally; order must not matter.
        assert percentile_of([3.0, 1.0, 2.0], 50.0) == 2.0
