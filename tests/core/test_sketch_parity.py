"""Exact-vs-sketch parity: the streaming quantile plane vs the oracle.

The sketch plane replaces sorted-column interpolation with t-digest
estimates, so parity is a *bounded-error* contract, not bit equality:

* **Counts and structure**: exact. Digests track true sample counts,
  so the NaN pattern, degraded-dataset sets, and every missing-data
  policy (including STRICT's error messages) behave identically on
  both planes — hypothesis asserts this over ragged random batches.
* **Percentile values**: the documented relative-error bounds at the
  IQB's aggregation rule — ≤ 1% at p50 / p95 / p99 on realistic
  measurement distributions (see ``docs/methodology.md``, "Streaming
  scoring").
* **`quantiles="exact"`**: bit-identical to the historical output —
  the override must be a no-op on scores, and `quantile_source` must
  stay out of serialized breakdowns.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregation import percentile_of
from repro.core.config import (
    MissingDataPolicy,
    QuantileMode,
    QuantilePolicy,
    ScoreMode,
    paper_config,
)
from repro.core.exceptions import DataError
from repro.core.scoring import ScoreBreakdown, score_regions
from repro.measurements.collection import MeasurementSet
from repro.measurements.columnar import ColumnarStore
from repro.measurements.record import Measurement
from repro.measurements.sketchplane import SketchPlane, sketch_records
from repro.measurements.tdigest import TDigest

from tests.core.test_kernel_parity import batches

#: Documented sketch bound at the scoring percentiles (p50/p95/p99).
REL_ERROR_BOUND = 0.01


def _spread_records(n, seed=7, region="alpha", source="ndt"):
    """Realistic per-metric distributions: lognormal speeds, latency."""
    rng = np.random.default_rng(seed)
    download = rng.lognormal(mean=4.0, sigma=0.6, size=n)
    upload = rng.lognormal(mean=2.5, sigma=0.7, size=n)
    latency = rng.lognormal(mean=3.2, sigma=0.5, size=n)
    loss = rng.beta(1.2, 90.0, size=n)
    return [
        Measurement(
            region=region,
            source=source,
            timestamp=float(i),
            download_mbps=float(download[i]),
            upload_mbps=float(upload[i]),
            latency_ms=float(latency[i]),
            packet_loss=float(loss[i]),
        )
        for i in range(n)
    ]


class TestQuantileErrorBounds:
    """The headline contract: ≤1% relative error at p50/p95/p99."""

    @pytest.mark.parametrize("percentile", [50.0, 95.0, 99.0])
    @pytest.mark.parametrize(
        "sampler",
        [
            lambda rng, n: rng.lognormal(mean=4.0, sigma=0.8, size=n),
            lambda rng, n: rng.normal(loc=50.0, scale=9.0, size=n),
            lambda rng, n: rng.uniform(1.0, 2000.0, size=n),
        ],
        ids=["lognormal", "normal", "uniform"],
    )
    def test_digest_tracks_exact_percentile(self, percentile, sampler):
        rng = np.random.default_rng(11)
        values = np.abs(sampler(rng, 20_000)) + 1e-9
        digest = TDigest()
        for value in values:
            digest.add(float(value))
        exact = percentile_of(values, percentile)
        estimate = digest.quantile(percentile)
        assert abs(estimate - exact) / abs(exact) <= REL_ERROR_BOUND

    @pytest.mark.parametrize("percentile", [50.0, 95.0, 99.0])
    def test_plane_cell_tracks_exact_percentile(self, percentile):
        records = _spread_records(8000)
        store = ColumnarStore(list(records))
        plane = sketch_records(records)
        view = plane.view("alpha", "ndt")
        from repro.core.metrics import Metric

        for metric in Metric.ordered():
            values = [
                getattr(r, metric.field_name)
                for r in records
                if getattr(r, metric.field_name) is not None
            ]
            exact = percentile_of(values, percentile)
            estimate = view.quantile(metric, percentile)
            assert estimate is not None
            assert abs(estimate - exact) / abs(exact) <= REL_ERROR_BOUND
            assert view.sample_count(metric) == len(values)
        # The kernel-facing cube carries the same estimates.
        cc = paper_config().compiled()
        sketch_cube = plane.aggregate_cube(cc.datasets, cc.percentiles)
        exact_cube = store.aggregate_cube(cc.datasets, cc.percentiles)
        assert (sketch_cube.counts == exact_cube.counts).all()


class TestCubeStructureParity:
    """Counts, NaN patterns, and policies are exact on any batch."""

    @settings(max_examples=50, deadline=None)
    @given(records=batches())
    def test_counts_and_nan_pattern_match_exact_plane(self, records):
        cc = paper_config().compiled()
        store = ColumnarStore(list(records))
        sketch_cube = store.sketch_plane().aggregate_cube(
            cc.datasets, cc.percentiles
        )
        exact_cube = store.aggregate_cube(cc.datasets, cc.percentiles)
        assert sketch_cube.regions == exact_cube.regions
        assert (sketch_cube.counts == exact_cube.counts).all()
        assert sketch_cube.cells == exact_cube.cells
        assert (
            np.isnan(sketch_cube.aggregates)
            == np.isnan(exact_cube.aggregates)
        ).all()
        # Estimates never leave the observed range, so every estimate
        # sits between the cell's true extremes (both cubes agree on
        # which cells exist; exact values bound them).
        finite = ~np.isnan(exact_cube.aggregates)
        assert np.isfinite(sketch_cube.aggregates[finite]).all()

    @settings(max_examples=40, deadline=None)
    @given(
        records=batches(),
        policy=st.sampled_from(tuple(MissingDataPolicy)),
        mode=st.sampled_from(tuple(ScoreMode)),
    )
    def test_policy_and_error_parity(self, records, policy, mode):
        """Sketch scoring raises exactly when exact scoring raises."""
        config = paper_config().with_(missing_data=policy, score_mode=mode)
        try:
            exact = score_regions(records, config, quantiles="exact")
        except DataError as exact_error:
            with pytest.raises(DataError) as caught:
                score_regions(records, config, quantiles="sketch")
            assert str(caught.value) == str(exact_error)
            return
        sketch = score_regions(records, config, quantiles="sketch")
        assert list(sketch) == list(exact)
        for region in exact:
            assert (
                sketch[region].degraded_datasets
                == exact[region].degraded_datasets
            )
            assert sketch[region].quantile_source == "sketch"
            assert exact[region].quantile_source == "exact"


class TestScoreParity:
    def _records(self, n=400):
        return MeasurementSet(
            _spread_records(n, region="alpha")
            + _spread_records(n, seed=8, region="beta")
            + _spread_records(n // 2, seed=9, region="beta", source="ookla")
        )

    def test_exact_override_is_bit_identical_to_default(self):
        records = self._records()
        config = paper_config()
        for kernel in ("vectorized", "exact"):
            default = score_regions(records, config, kernel=kernel)
            forced = score_regions(
                records, config, kernel=kernel, quantiles="exact"
            )
            assert forced == default
            for breakdown in forced.values():
                # Exact provenance stays out of serialized archives.
                assert "quantile_source" not in breakdown.to_dict()

    def test_sketch_scores_close_to_exact_both_kernels(self):
        records = self._records()
        config = paper_config().with_(score_mode=ScoreMode.CONTINUOUS)
        exact = score_regions(records, config, quantiles="exact")
        for kernel in ("vectorized", "exact"):
            sketch = score_regions(
                records, config, kernel=kernel, quantiles="sketch"
            )
            assert list(sketch) == list(exact)
            for region in exact:
                assert math.isclose(
                    sketch[region].value,
                    exact[region].value,
                    rel_tol=0.05,
                    abs_tol=0.05,
                )

    def test_vectorized_and_exact_kernels_agree_on_sketch_plane(self):
        """Both kernels read the same digests → same breakdowns."""
        records = self._records(200)
        config = paper_config()
        vec = score_regions(records, config, quantiles="sketch")
        scalar = score_regions(
            records, config, kernel="exact", quantiles="sketch"
        )
        assert list(vec) == list(scalar)
        for region in vec:
            assert vec[region].value == pytest.approx(
                scalar[region].value, abs=1e-12
            )

    def test_parallel_sketch_matches_serial_sketch(self):
        records = self._records(150)
        config = paper_config()
        serial = score_regions(records, config, quantiles="sketch")
        parallel = score_regions(
            records, config, workers=2, quantiles="sketch"
        )
        assert parallel == serial

    def test_sketch_plane_input_scores_directly(self):
        records = self._records(200)
        plane = sketch_records(list(records))
        config = paper_config()
        from_plane = score_regions(plane, config)
        from_records = score_regions(records, config, quantiles="sketch")
        assert from_plane == from_records
        for breakdown in from_plane.values():
            assert breakdown.quantile_source == "sketch"

    def test_sketch_plane_input_rejects_exact_override(self):
        plane = sketch_records(_spread_records(50))
        with pytest.raises(ValueError, match="no exact quantile plane"):
            score_regions(plane, paper_config(), quantiles="exact")
        with pytest.raises(ValueError, match="no exact quantile plane"):
            score_regions(
                plane, paper_config(), workers=2, quantiles="exact"
            )

    def test_unknown_quantile_source_rejected(self):
        records = self._records(20)
        with pytest.raises(ValueError, match="unknown quantile source"):
            score_regions(records, paper_config(), quantiles="p2")

    def test_breakdown_roundtrip_keeps_sketch_stamp(self):
        records = self._records(100)
        sketch = score_regions(records, paper_config(), quantiles="sketch")
        for breakdown in sketch.values():
            document = json.loads(json.dumps(breakdown.to_dict()))
            assert document["quantile_source"] == "sketch"
            rebuilt = ScoreBreakdown.from_dict(document)
            assert rebuilt == breakdown


class TestMixedPolicy:
    def _config(self):
        policy = QuantilePolicy(
            default=QuantileMode.EXACT,
            overrides=(("ndt", QuantileMode.SKETCH),),
        )
        return paper_config().with_(quantiles=policy)

    def test_config_policy_drives_mixed_scoring(self):
        config = self._config()
        cc = config.compiled()
        assert config.quantiles.mode_for("ndt") is QuantileMode.SKETCH
        assert config.quantiles.mode_for("ookla") is QuantileMode.EXACT
        assert config.quantiles.uses_sketch(cc.datasets)
        records = MeasurementSet(
            _spread_records(200)
            + _spread_records(100, seed=5, source="ookla")
        )
        for kernel in ("vectorized", "exact"):
            mixed = score_regions(records, config, kernel=kernel)
            assert mixed["alpha"].quantile_source == "mixed"
        # The global override still wins over the config policy.
        forced = score_regions(records, config, quantiles="exact")
        baseline = score_regions(records, paper_config())
        assert forced["alpha"].value == baseline["alpha"].value

    def test_policy_survives_config_serialization(self):
        config = self._config()
        document = json.loads(config.to_json())
        assert document["quantiles"] == {
            "default": "exact",
            "overrides": {"ndt": "sketch"},
        }
        from repro.core.config import IQBConfig

        rebuilt = IQBConfig.from_dict(document)
        assert rebuilt.quantiles == config.quantiles
        # Pre-streaming documents (no "quantiles" key) default to exact.
        document.pop("quantiles")
        legacy = IQBConfig.from_dict(document)
        assert legacy.quantiles == QuantilePolicy()
        assert not legacy.quantiles.uses_sketch(("ndt", "ookla"))


class TestPlaneStateAndMerge:
    def test_state_roundtrip_preserves_scores(self):
        records = _spread_records(300)
        plane = sketch_records(records)
        rebuilt = SketchPlane.from_state(
            json.loads(json.dumps(plane.to_state()))
        )
        config = paper_config()
        assert score_regions(rebuilt, config) == score_regions(plane, config)

    def test_sharded_merge_matches_single_pass_counts(self):
        alpha = _spread_records(120, region="alpha")
        beta = _spread_records(80, seed=3, region="beta")
        merged = sketch_records(alpha).merge(sketch_records(beta))
        single = sketch_records(alpha + beta)
        assert len(merged) == len(single) == 200
        assert merged.regions() == single.regions()
        cc = paper_config().compiled()
        merged_cube = merged.aggregate_cube(cc.datasets, cc.percentiles)
        single_cube = single.aggregate_cube(cc.datasets, cc.percentiles)
        assert (merged_cube.counts == single_cube.counts).all()
