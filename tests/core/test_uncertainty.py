"""Unit tests for repro.core.uncertainty (bootstrap)."""

import pytest

from repro.core.aggregation import SequenceSource
from repro.core.uncertainty import bootstrap_score, sample_size_curve


class TestBootstrapScore:
    def test_reproducible(self, fiber_sources, config):
        a = bootstrap_score(fiber_sources, config, replicates=25, seed=3)
        b = bootstrap_score(fiber_sources, config, replicates=25, seed=3)
        assert a.scores == b.scores

    def test_point_estimate_matches_direct_score(self, fiber_sources, config):
        from repro.core.scoring import score_region

        result = bootstrap_score(fiber_sources, config, replicates=10, seed=0)
        assert result.point_estimate == pytest.approx(
            score_region(fiber_sources, config).value
        )

    def test_interval_ordering(self, dsl_sources, config):
        result = bootstrap_score(dsl_sources, config, replicates=50, seed=0)
        lo, hi = result.interval(0.95)
        assert lo <= hi
        assert result.width95 == pytest.approx(hi - lo)
        narrow_lo, narrow_hi = result.interval(0.5)
        assert narrow_hi - narrow_lo <= hi - lo + 1e-12

    def test_interval_validation(self, fiber_sources, config):
        result = bootstrap_score(fiber_sources, config, replicates=10, seed=0)
        with pytest.raises(ValueError):
            result.interval(0.0)
        with pytest.raises(ValueError):
            result.interval(1.5)

    def test_replicate_validation(self, fiber_sources, config):
        with pytest.raises(ValueError):
            bootstrap_score(fiber_sources, config, replicates=0)

    def test_degenerate_data_has_zero_width(self, perfect_sources, config):
        # SequenceSources are not resampleable and every verdict is
        # deterministic: the bootstrap distribution collapses.
        result = bootstrap_score(perfect_sources, config, replicates=20, seed=0)
        assert result.width95 == pytest.approx(0.0)
        assert result.std == pytest.approx(0.0)

    def test_non_measurement_sources_held_fixed(self, fiber_sources, config):
        mixed = dict(fiber_sources)
        mixed["extra"] = SequenceSource(download_mbps=[500.0] * 5)
        result = bootstrap_score(mixed, config, replicates=10, seed=0)
        assert len(result.scores) == 10

    def test_scores_bounded(self, dsl_sources, config):
        result = bootstrap_score(dsl_sources, config, replicates=30, seed=0)
        assert all(0.0 <= s <= 1.0 for s in result.scores)


class TestSampleSizeCurve:
    def test_returns_requested_sizes(self, fiber_sources, config):
        curve = sample_size_curve(
            fiber_sources, config, sizes=(20, 60), replicates=20, seed=0
        )
        assert set(curve) == {20, 60}

    def test_more_data_does_not_widen_much(self, dsl_sources, config):
        # CI width should broadly shrink with sample size; allow noise.
        curve = sample_size_curve(
            dsl_sources, config, sizes=(15, 120), replicates=60, seed=0
        )
        assert curve[120].width95 <= curve[15].width95 + 0.15

    def test_size_validation(self, fiber_sources, config):
        with pytest.raises(ValueError):
            sample_size_curve(fiber_sources, config, sizes=(0,), replicates=5)
