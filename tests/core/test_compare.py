"""Unit tests for repro.core.compare (score attribution)."""

import pytest

from repro.core.aggregation import SequenceSource
from repro.core.compare import (
    attribute_difference,
    render_attribution,
    requirement_contributions,
)
from repro.core.config import paper_config
from repro.core.metrics import Metric
from repro.core.scoring import score_region
from repro.core.usecases import UseCase


def split_config():
    return paper_config(datasets={"a": tuple(Metric)})


def source(down=500.0, up=500.0, latency=5.0, loss=0.0):
    return {
        "a": SequenceSource(
            download_mbps=[down] * 10,
            upload_mbps=[up] * 10,
            latency_ms=[latency] * 10,
            packet_loss=[loss] * 10,
        )
    }


class TestContributions:
    def test_sum_equals_score(self, fiber_sources, dsl_sources, config):
        for sources in (fiber_sources, dsl_sources):
            breakdown = score_region(sources, config)
            contributions = requirement_contributions(breakdown)
            total = sum(c.value for c in contributions.values())
            assert total == pytest.approx(breakdown.value, abs=1e-12)

    def test_covers_every_cell(self, fiber_sources, config):
        contributions = requirement_contributions(
            score_region(fiber_sources, config)
        )
        assert set(contributions) == {
            (u, m) for u in UseCase for m in Metric
        }

    def test_skipped_cells_weigh_zero(self):
        config = split_config()
        sources = {
            "a": SequenceSource(
                download_mbps=[500.0] * 5,
                upload_mbps=[500.0] * 5,
                packet_loss=[0.0] * 5,
            )
        }
        contributions = requirement_contributions(score_region(sources, config))
        for use_case in UseCase:
            assert contributions[(use_case, Metric.LATENCY)].value == 0.0
        total = sum(c.value for c in contributions.values())
        assert total == pytest.approx(score_region(sources, config).value)


class TestAttribution:
    def test_deltas_sum_exactly_to_difference(
        self, fiber_sources, dsl_sources, config
    ):
        a = score_region(dsl_sources, config)
        b = score_region(fiber_sources, config)
        attribution = attribute_difference(a, b)
        assert attribution.difference == pytest.approx(b.value - a.value)
        assert attribution.check() == pytest.approx(0.0, abs=1e-12)

    def test_identical_breakdowns_have_zero_deltas(self, fiber_sources, config):
        breakdown = score_region(fiber_sources, config)
        attribution = attribute_difference(breakdown, breakdown)
        assert attribution.difference == 0.0
        assert all(entry.delta == 0.0 for entry in attribution.entries)

    def test_single_cell_change_attributed_to_that_cell(self):
        config = split_config()
        good = score_region(source(), config)
        # Only conferencing latency fails (35 ms vs 20 ms bar; every
        # other use case's high bar is <= 50 ms... actually 50 ms bars
        # pass at 35 ms, conferencing's 20 ms bar fails).
        worse = score_region(source(latency=35.0), config)
        attribution = attribute_difference(good, worse)
        movers = [e for e in attribution.entries if abs(e.delta) > 1e-12]
        assert len(movers) == 1
        assert movers[0].use_case is UseCase.VIDEO_CONFERENCING
        assert movers[0].metric is Metric.LATENCY
        assert movers[0].delta < 0

    def test_top_ranked_by_magnitude(self, fiber_sources, dsl_sources, config):
        attribution = attribute_difference(
            score_region(fiber_sources, config),
            score_region(dsl_sources, config),
        )
        top = attribution.top(24)
        magnitudes = [abs(entry.delta) for entry in top]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_works_across_configs(self, fiber_sources, config):
        from repro.core.quality import QualityLevel

        high = score_region(fiber_sources, config)
        minimum = score_region(
            fiber_sources, config.with_(quality_level=QualityLevel.MINIMUM)
        )
        attribution = attribute_difference(high, minimum)
        assert attribution.check() == pytest.approx(0.0, abs=1e-12)
        assert attribution.difference >= 0  # minimum bar is easier


class TestRender:
    def test_mentions_difference_and_movers(self, fiber_sources, dsl_sources,
                                            config):
        attribution = attribute_difference(
            score_region(fiber_sources, config),
            score_region(dsl_sources, config),
        )
        text = render_attribution(attribution)
        assert "Score difference" in text
        assert "/" in text  # at least one use_case/metric mover listed

    def test_no_difference_message(self, fiber_sources, config):
        breakdown = score_region(fiber_sources, config)
        text = render_attribution(attribute_difference(breakdown, breakdown))
        assert "no per-cell differences" in text
