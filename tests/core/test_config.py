"""Unit tests for repro.core.config."""

import pytest

from repro.core.aggregation import AggregationPolicy, PercentileSemantics
from repro.core.config import (
    DEFAULT_DATASET_CAPABILITIES,
    CONFIG_VERSION,
    IQBConfig,
    MissingDataPolicy,
    paper_config,
)
from repro.core.exceptions import ConfigurationError
from repro.core.metrics import Metric
from repro.core.quality import QualityLevel
from repro.core.thresholds import RangePolicy
from repro.core.usecases import UseCase

U, M = UseCase, Metric


class TestPaperConfig:
    def test_defaults_match_paper(self, config):
        assert config.aggregation.percentile == 95.0
        assert config.aggregation.semantics is PercentileSemantics.LITERAL
        assert config.quality_level is QualityLevel.HIGH
        assert config.range_policy is RangePolicy.LOW
        assert config.missing_data is MissingDataPolicy.SKIP

    def test_default_dataset_capabilities(self, config):
        assert config.dataset_weights.get(U.GAMING, M.DOWNLOAD, "ndt") == 1
        assert config.dataset_weights.get(U.GAMING, M.PACKET_LOSS, "ookla") == 0
        assert set(config.dataset_weights.datasets) == {
            "ndt",
            "cloudflare",
            "ookla",
        }

    def test_ookla_has_no_loss_capability(self):
        assert Metric.PACKET_LOSS not in DEFAULT_DATASET_CAPABILITIES["ookla"]

    def test_threshold_value_high_level(self, config):
        assert config.threshold_value(U.WEB_BROWSING, M.DOWNLOAD) == 100.0

    def test_threshold_value_range_cell_uses_policy(self, config):
        assert config.threshold_value(U.VIDEO_STREAMING, M.DOWNLOAD) == 50.0
        mid = config.with_(range_policy=RangePolicy.MID)
        assert mid.threshold_value(U.VIDEO_STREAMING, M.DOWNLOAD) == 75.0

    def test_threshold_value_at_minimum_level(self, config):
        minimum = config.with_(quality_level=QualityLevel.MINIMUM)
        assert minimum.threshold_value(U.WEB_BROWSING, M.DOWNLOAD) == 10.0

    def test_overrides_kwarg(self):
        config = paper_config(quality_level=QualityLevel.MINIMUM)
        assert config.quality_level is QualityLevel.MINIMUM

    def test_custom_datasets(self):
        config = paper_config(datasets={"mine": (M.DOWNLOAD,)})
        assert config.dataset_weights.datasets == ("mine",)


class TestWith:
    def test_with_returns_modified_copy(self, config):
        changed = config.with_(missing_data=MissingDataPolicy.STRICT)
        assert changed.missing_data is MissingDataPolicy.STRICT
        assert config.missing_data is MissingDataPolicy.SKIP

    def test_with_rejects_unknown_fields(self, config):
        with pytest.raises(TypeError):
            config.with_(nonsense=1)


class TestSerialization:
    def test_round_trip_dict(self, config):
        rebuilt = IQBConfig.from_dict(config.to_dict())
        assert rebuilt.thresholds == config.thresholds
        assert rebuilt.requirement_weights == config.requirement_weights
        assert rebuilt.use_case_weights == config.use_case_weights
        assert rebuilt.dataset_weights == config.dataset_weights
        assert rebuilt.aggregation == config.aggregation
        assert rebuilt.quality_level is config.quality_level
        assert rebuilt.range_policy is config.range_policy
        assert rebuilt.missing_data is config.missing_data

    def test_round_trip_json_string(self, config):
        rebuilt = IQBConfig.from_json(config.to_json())
        assert rebuilt.to_dict() == config.to_dict()

    def test_round_trip_preserves_range_and_other_cells(self, config):
        rebuilt = IQBConfig.from_json(config.to_json())
        cell = rebuilt.thresholds.get(U.VIDEO_STREAMING, M.DOWNLOAD)
        assert cell.high is not None and not isinstance(cell.high, float)
        assert not rebuilt.thresholds.get(U.GAMING, M.UPLOAD).high_published

    def test_round_trip_file(self, config, tmp_path):
        path = tmp_path / "config.json"
        config.save(path)
        assert IQBConfig.load(path).to_dict() == config.to_dict()

    def test_version_checked(self, config):
        document = config.to_dict()
        document["version"] = CONFIG_VERSION + 1
        with pytest.raises(ConfigurationError, match="version"):
            IQBConfig.from_dict(document)

    def test_missing_section_rejected(self, config):
        document = config.to_dict()
        del document["thresholds"]
        with pytest.raises(ConfigurationError, match="malformed"):
            IQBConfig.from_dict(document)

    def test_bad_enum_rejected(self, config):
        document = config.to_dict()
        document["quality_level"] = "luxurious"
        with pytest.raises(ConfigurationError):
            IQBConfig.from_dict(document)

    def test_invalid_json_text_rejected(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            IQBConfig.from_json("{nope")

    def test_non_literal_aggregation_round_trips(self, config):
        tweaked = config.with_(
            aggregation=AggregationPolicy(
                percentile=90.0, semantics=PercentileSemantics.CONSERVATIVE
            )
        )
        rebuilt = IQBConfig.from_json(tweaked.to_json())
        assert rebuilt.aggregation.percentile == 90.0
        assert rebuilt.aggregation.semantics is PercentileSemantics.CONSERVATIVE

    def test_zero_weight_datasets_omitted_from_json(self, config):
        document = config.to_dict()
        loss_row = document["dataset_weights"]["gaming"]["packet_loss"]
        assert "ookla" not in loss_row
        assert set(loss_row) == {"ndt", "cloudflare"}
