"""Unit tests for the serve follower's tailing loop — in particular the
truncate-and-rewrite case (logrotate copytruncate, an operator
regenerating the input): the follower must reset to byte zero and
re-ingest instead of silently waiting for the file to outgrow a stale
offset."""

import json
import threading
import time

from repro.cli import _follow_jsonl
from repro.obs import REGISTRY

from tests.serve.conftest import batch


class FakeService:
    """Collects ingested batches; thread-safe enough for one follower."""

    def __init__(self):
        self.batches = []

    def ingest(self, records):
        self.batches.append(list(records))

    def total(self):
        return sum(len(b) for b in self.batches)


class Follower:
    """Runs _follow_jsonl on a thread with a tight poll interval."""

    def __init__(self, path, on_error="skip"):
        self.service = FakeService()
        self.stop = threading.Event()
        self.thread = threading.Thread(
            target=_follow_jsonl,
            args=(str(path), self.service, self.stop, 0.01, on_error),
            daemon=True,
        )

    def __enter__(self):
        self.thread.start()
        # The follower snapshots its starting offset on the thread;
        # give it a moment so writes made by the test afterwards are
        # seen as appends rather than pre-existing content.
        time.sleep(0.2)
        return self

    def __exit__(self, *exc_info):
        self.stop.set()
        self.thread.join(timeout=5.0)

    def wait_for(self, predicate, timeout=10.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            if predicate():
                return True
            time.sleep(0.01)
        return False


def write_records(path, records, mode):
    with open(path, mode, encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict()) + "\n")


def test_appends_are_tailed(tmp_path):
    path = tmp_path / "data.jsonl"
    initial = batch(1)
    write_records(path, initial, "w")
    with Follower(path) as follower:
        # Existing content predates the follower; only appends count.
        appended = batch(2)
        write_records(path, appended, "a")
        assert follower.wait_for(
            lambda: follower.service.total() == len(appended)
        )


def test_truncate_and_rewrite_is_reingested(tmp_path):
    path = tmp_path / "data.jsonl"
    write_records(path, batch(3), "w")
    truncations = REGISTRY.counter("serve.follow.truncations")
    before = truncations.value
    with Follower(path) as follower:
        appended = batch(1)
        write_records(path, appended, "a")
        assert follower.wait_for(
            lambda: follower.service.total() == len(appended)
        )
        # The operator regenerates the file smaller than the follower's
        # offset — the shrink must be detected, not ignored.
        rewritten = batch(1)
        write_records(path, rewritten, "w")
        assert follower.wait_for(
            lambda: follower.service.total()
            == len(appended) + len(rewritten)
        ), "follower never re-ingested the rewritten file"
        # The rewrite arrived as fresh records, counted loudly.
        assert truncations.value == before + 1
        regions = {
            record.region for record in follower.service.batches[-1]
        }
        assert regions == {r.region for r in rewritten}


def test_truncation_drops_buffered_partial_line(tmp_path):
    path = tmp_path / "data.jsonl"
    path.write_text("")
    with Follower(path) as follower:
        # A torn line (no trailing newline) stays buffered...
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn": ')
        time.sleep(0.1)
        assert follower.service.total() == 0
        # ...then the file is truncated and rewritten. The stale
        # buffer belonged to the old file and must not be glued onto
        # the new content. Truncate first and let the follower observe
        # the shrink, so the test is deterministic even though the
        # rewritten file ends up larger than the torn fragment.
        with open(path, "w", encoding="utf-8"):
            pass
        time.sleep(0.1)
        rewritten = batch(1)
        write_records(path, rewritten, "a")
        assert follower.wait_for(
            lambda: follower.service.total() == len(rewritten)
        )
        for ingested in follower.service.batches:
            for record in ingested:
                assert record.region == "region-000"
