"""Integration tests for the /v1 endpoints (repro.serve.http)."""

import dataclasses
import json
import urllib.error
import urllib.request

import pytest

from repro.measurements.columnar import ColumnarStore
from repro.measurements.io import write_jsonl
from repro.obs.registry import MetricsRegistry
from repro.serve import ScoringService, ServeServer


def _get(url, etag=None):
    """(status, headers, body) for one GET, 3xx/4xx/5xx included."""
    request = urllib.request.Request(url)
    if etag is not None:
        request.add_header("If-None-Match", etag)
    try:
        with urllib.request.urlopen(request, timeout=5.0) as response:
            return (
                response.status,
                dict(response.headers),
                response.read().decode("utf-8"),
            )
    except urllib.error.HTTPError as error:
        return (
            error.code,
            dict(error.headers),
            error.read().decode("utf-8"),
        )


@pytest.fixture()
def registry():
    return MetricsRegistry()


@pytest.fixture()
def service(store, config):
    return ScoringService(store, config)


@pytest.fixture()
def server(service, registry):
    server = ServeServer(service, registry=registry, port=0)
    port = server.start()
    assert port > 0
    yield server
    server.stop()


class TestScoresEndpoint:
    def test_scores_document(self, server, service):
        status, headers, body = _get(server.url("/v1/scores"))
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        document = json.loads(body)
        assert document["generation"] == 0
        assert document["config_sha256"] == service.config_sha256
        assert document["quantiles"] == "exact"
        assert document["regions"] == dict(service.scores().values)

    def test_etag_roundtrip_304(self, server):
        _, headers, _ = _get(server.url("/v1/scores"))
        etag = headers["ETag"]
        status, headers304, body = _get(server.url("/v1/scores"), etag)
        assert status == 304
        assert body == ""
        assert headers304["ETag"] == etag

    def test_304_iff_generation_unchanged(self, server, service, records):
        _, headers, _ = _get(server.url("/v1/scores"))
        etag = headers["ETag"]
        # Unchanged plane: 304.
        assert _get(server.url("/v1/scores"), etag)[0] == 304
        # Ingest bumps the generation: same ETag now misses.
        service.ingest(
            [dataclasses.replace(records[0], region="region-new")]
        )
        status, fresh_headers, body = _get(server.url("/v1/scores"), etag)
        assert status == 200
        assert fresh_headers["ETag"] != etag
        assert json.loads(body)["generation"] == 1
        # And the new ETag conditions again.
        assert (
            _get(server.url("/v1/scores"), fresh_headers["ETag"])[0] == 304
        )

    def test_weak_and_star_etags_accepted(self, server):
        _, headers, _ = _get(server.url("/v1/scores"))
        etag = headers["ETag"]
        assert _get(server.url("/v1/scores"), f"W/{etag}")[0] == 304
        assert _get(server.url("/v1/scores"), "*")[0] == 304

    def test_empty_plane_is_503_not_crash(self, config, registry):
        service = ScoringService(ColumnarStore([]), config)
        with ServeServer(service, registry=registry, port=0) as server:
            status, headers, body = _get(server.url("/v1/scores"))
        assert status == 503
        assert "no measurements" in json.loads(body)["error"]
        assert headers.get("Retry-After") == "1"


class TestRegionEndpoint:
    def test_breakdown_bit_identical_to_cli_score_json(
        self, server, records, tmp_path, capsys
    ):
        from repro.cli import main

        path = tmp_path / "records.jsonl"
        write_jsonl(records, str(path))
        assert main(["score", str(path), "--json"]) == 0
        cli_document = json.loads(capsys.readouterr().out)

        status, _, body = _get(server.url("/v1/scores/region-002"))
        assert status == 200
        served = json.loads(body)
        assert served["region"] == "region-002"
        assert (
            served["breakdown"] == cli_document["regions"]["region-002"]
        )

    def test_unknown_region_404_json(self, server):
        status, _, body = _get(server.url("/v1/scores/atlantis"))
        assert status == 404
        assert json.loads(body)["error"] == "unknown region: atlantis"

    def test_url_encoded_region_names(self, server, service, records):
        service.ingest(
            [dataclasses.replace(records[0], region="east side")]
        )
        status, _, body = _get(server.url("/v1/scores/east%20side"))
        assert status == 200
        assert json.loads(body)["region"] == "east side"

    def test_conditional_get(self, server):
        _, headers, _ = _get(server.url("/v1/scores/region-000"))
        assert (
            _get(server.url("/v1/scores/region-000"), headers["ETag"])[0]
            == 304
        )


class TestNationalEndpoint:
    def test_national_document(self, server, service):
        status, _, body = _get(server.url("/v1/national"))
        assert status == 200
        document = json.loads(body)
        expected = service.national().national
        assert document["national"] == expected.value
        assert document["shortfall"] == expected.shortfall
        assert len(document["regions"]) == 4
        share = document["regions"][0]
        assert set(share) == {
            "region",
            "score",
            "population",
            "weight",
            "shortfall_contribution",
        }

    def test_bad_population_table_is_422(self, store, config, registry):
        service = ScoringService(
            store, config, populations={"region-000": 1.0}
        )
        with ServeServer(service, registry=registry, port=0) as server:
            status, _, body = _get(server.url("/v1/national"))
        assert status == 422
        assert "population" in json.loads(body)["error"]


class TestConfigEndpoint:
    def test_config_document(self, server, service):
        status, _, body = _get(server.url("/v1/config"))
        assert status == 200
        document = json.loads(body)
        assert document["config_sha256"] == service.config_sha256
        assert document["kernel"] == "vectorized"
        assert "thresholds" in document["config"]

    def test_config_etag_is_generation_independent(
        self, server, service, records
    ):
        _, headers, _ = _get(server.url("/v1/config"))
        etag = headers["ETag"]
        service.ingest(
            [dataclasses.replace(records[0], region="region-new")]
        )
        assert _get(server.url("/v1/config"), etag)[0] == 304


class TestTelemetrySurface:
    def test_base_routes_still_served(self, server):
        assert _get(server.url("/healthz"))[0] == 200
        assert _get(server.url("/metrics"))[0] == 200
        status, _, body = _get(server.url("/nope"))
        assert status == 404
        assert "/v1/scores" in body  # the 404 names the /v1 routes too

    def test_per_endpoint_metrics_families(self, server):
        _get(server.url("/v1/scores"))
        _get(server.url("/v1/scores/region-000"))
        _get(server.url("/v1/scores/region-001"))
        _, _, body = _get(server.url("/metrics"))
        # Labeled per-(path, status) counts...
        assert (
            'iqb_http_requests_total{path="/v1/scores",status="200"} 1'
            in body
        )
        # ...region paths collapse onto one label (bounded cardinality),
        assert (
            'iqb_http_requests_total{path="/v1/scores/:region",'
            'status="200"} 2' in body
        )
        # ...and per-endpoint latency timers for the SLO rules.
        assert "iqb_http_latency__v1_scores_seconds" in body

    def test_handler_exception_is_well_formed_500(
        self, server, service, monkeypatch
    ):
        def boom():
            raise RuntimeError("plane on fire")

        monkeypatch.setattr(service, "scores", boom)
        before = server.registry.counter("http.errors").value
        status, headers, body = _get(server.url("/v1/scores"))
        assert status == 500
        document = json.loads(body)
        assert document["error"] == "internal server error"
        assert document["exception"] == "RuntimeError"
        assert document["detail"] == "plane on fire"
        # Content-Length matches the body: the client never hangs.
        assert int(headers["Content-Length"]) == len(
            body.encode("utf-8")
        )
        assert server.registry.counter("http.errors").value == before + 1
        # The failure is accounted under its route, not lost.
        _, _, metrics = _get(server.url("/metrics"))
        assert (
            'iqb_http_requests_total{path="/v1/scores",status="500"} 1'
            in metrics
        )

    def test_drain_idle_server(self, server):
        assert server.drain(timeout=1.0) is True
