"""Threaded stress test: no served result may straddle an ingest.

A writer appends known batches while reader threads hammer
``ScoringService.scores``. The invariant under test is the whole
consistency model: every response's generation stamp must map
*bit-identically* onto the scores of exactly that prefix of batches —
a response that mixed a half-appended batch, or carried a stale stamp
for fresh values (or vice versa), fails the lookup.

This is the regression test for the ordering contract:
``ColumnarStore.append`` bumps the generation only after the plane is
fully consistent, and a cache-miss sweep re-reads the generation
inside the plane lock.
"""

import dataclasses
import threading

from repro.core.config import paper_config
from repro.core.kernel import score_values
from repro.measurements.columnar import ColumnarStore
from repro.serve import ScoringService

from tests.serve.conftest import batch

_N_BATCHES = 8
_N_READERS = 4


def _batches():
    """Deterministic ingest batches: one new region per generation."""
    base = batch(1)
    return [
        [
            dataclasses.replace(record, region=f"ingested-{i:03d}")
            for record in base
        ]
        for i in range(_N_BATCHES)
    ]


def test_reads_racing_ingest_stay_generation_consistent():
    config = paper_config()
    initial = batch(3)
    batches = _batches()

    # Expected scores for every prefix of batches, computed up front on
    # independent stores: expected[g] is the one true answer for
    # generation g.
    expected = {}
    accumulated = list(initial)
    for generation in range(_N_BATCHES + 1):
        expected[generation] = score_values(
            ColumnarStore(list(accumulated)), config
        )
        if generation < _N_BATCHES:
            accumulated.extend(batches[generation])

    service = ScoringService(ColumnarStore(initial), config)
    stop = threading.Event()
    observed = [[] for _ in range(_N_READERS)]
    failures = []

    def reader(slot):
        while not stop.is_set():
            result = service.scores()
            if result.values != expected.get(result.generation):
                failures.append(
                    (slot, result.generation, dict(result.values))
                )
                return
            observed[slot].append(result.generation)

    threads = [
        threading.Thread(target=reader, args=(slot,))
        for slot in range(_N_READERS)
    ]
    for thread in threads:
        thread.start()
    try:
        for generation, records in enumerate(batches):
            # Let readers chew on this generation before moving on.
            barrier_len = len(observed[0]) + 3
            deadline = threading.Event()
            while len(observed[0]) < barrier_len and not deadline.wait(
                0.005
            ):
                pass
            assert service.ingest(records) == len(records)
            assert service.generation == generation + 1
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)

    assert failures == []
    # Every reader saw real work, and the stamps only ever advanced.
    for stamps in observed:
        assert stamps, "reader made no observations"
        assert stamps == sorted(stamps)
    # The run actually exercised multiple generations end to end.
    assert service.generation == _N_BATCHES
    final = service.scores()
    assert final.generation == _N_BATCHES
    assert final.values == expected[_N_BATCHES]


def test_ingest_during_batch_window_never_mixes_generations():
    """A sweep whose leader lingers in the batch window must stamp and
    serve the generation it actually computed from — even when an
    ingest lands mid-window."""
    config = paper_config()
    initial = batch(2)
    extra = [
        dataclasses.replace(record, region="late-arrival")
        for record in batch(1)
    ]
    expected_before = score_values(ColumnarStore(list(initial)), config)
    expected_after = score_values(
        ColumnarStore(list(initial) + list(extra)), config
    )

    service = ScoringService(
        ColumnarStore(initial), config, batch_window_s=0.1
    )
    results = []

    def read():
        results.append(service.scores())

    reader = threading.Thread(target=read)
    reader.start()
    # Land the ingest while the leader is still lingering in its
    # window: the sweep must then observe the *post*-ingest plane.
    ingested = threading.Event()

    def write():
        service.ingest(extra)
        ingested.set()

    writer = threading.Thread(target=write)
    writer.start()
    writer.join(timeout=5.0)
    reader.join(timeout=10.0)
    assert ingested.is_set()
    assert len(results) == 1
    (result,) = results
    # Whichever side of the lock the sweep landed on, the stamp and the
    # values must agree with each other.
    if result.generation == 0:
        assert result.values == expected_before
    else:
        assert result.generation == 1
        assert result.values == expected_after
    # And a fresh read now reflects the ingest exactly.
    final = service.scores()
    assert final.generation == 1
    assert final.values == expected_after
