"""End-to-end tests for ``iqb serve`` as a real subprocess.

These boot the CLI the way an operator (or the CI smoke step) does:
spawn the process, read the ephemeral port off stderr, talk HTTP to
it, and shut it down with real signals. The graceful-shutdown test is
the regression test for the drain contract: a request caught in
flight by SIGTERM must still complete before the process exits 0.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.measurements.io import write_jsonl

from tests.serve.conftest import batch

_ADDRESS = re.compile(r"serve: listening on http://([0-9.]+):(\d+)")


def _spawn(arguments, cwd):
    """Launch ``iqb serve`` and return (process, base_url)."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *arguments],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        cwd=cwd,
        env=env,
        text=True,
    )
    deadline = time.time() + 30.0
    while time.time() < deadline:
        line = process.stderr.readline()
        if not line:
            break
        match = _ADDRESS.search(line)
        if match:
            return process, f"http://{match.group(1)}:{match.group(2)}"
    process.kill()
    stdout, stderr = process.communicate(timeout=10.0)
    raise AssertionError(
        f"serve never announced its address\n"
        f"stdout: {stdout}\nstderr: {stderr}"
    )


def _get(url, etag=None, timeout=10.0):
    request = urllib.request.Request(url)
    if etag is not None:
        request.add_header("If-None-Match", etag)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return (
                response.status,
                dict(response.headers),
                response.read().decode("utf-8"),
            )
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read().decode()


def _finish(process, timeout=20.0):
    """SIGTERM the process and return (exit_code, stdout, stderr)."""
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
    try:
        stdout, stderr = process.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        stdout, stderr = process.communicate(timeout=10.0)
        raise
    return process.returncode, stdout, stderr


@pytest.fixture()
def fixture_path(tmp_path):
    path = tmp_path / "records.jsonl"
    write_jsonl(batch(2), str(path))
    return path


class TestServeLifecycle:
    def test_boot_query_conditional_get_and_sigterm(
        self, fixture_path, tmp_path
    ):
        process, base = _spawn(
            ["serve", str(fixture_path), "--port", "0"], str(tmp_path)
        )
        try:
            status, headers, body = _get(f"{base}/v1/scores")
            assert status == 200
            document = json.loads(body)
            assert document["generation"] == 0
            assert set(document["regions"]) == {
                "region-000",
                "region-001",
            }
            # The ETag round-trips into a 304 on the unchanged plane.
            assert (
                _get(f"{base}/v1/scores", headers["ETag"])[0] == 304
            )
            assert _get(f"{base}/healthz")[0] == 200
        finally:
            code, stdout, _ = _finish(process)
        assert code == 0
        assert "serve: shut down after" in stdout
        assert "(drain timed out)" not in stdout

    def test_sigterm_drains_request_in_flight(
        self, fixture_path, tmp_path
    ):
        # A 0.5 s batch window makes the first (cache-miss) request
        # slow enough to be caught mid-flight by the signal.
        process, base = _spawn(
            [
                "serve",
                str(fixture_path),
                "--port",
                "0",
                "--batch-window",
                "0.5",
            ],
            str(tmp_path),
        )
        responses = []

        def request():
            responses.append(_get(f"{base}/v1/scores", timeout=20.0))

        client = threading.Thread(target=request)
        try:
            client.start()
            time.sleep(0.15)  # inside the batch window: request in flight
        finally:
            code, stdout, _ = _finish(process)
        client.join(timeout=20.0)
        assert code == 0
        # The in-flight request completed with a full, parseable body.
        assert len(responses) == 1
        status, _, body = responses[0]
        assert status == 200
        assert json.loads(body)["generation"] == 0
        assert "serve: shut down after" in stdout
        assert "(drain timed out)" not in stdout

    def test_manifest_written_on_graceful_exit(
        self, fixture_path, tmp_path
    ):
        manifest = tmp_path / "manifest.json"
        # Global flags go *before* the subcommand.
        process, base = _spawn(
            [
                "--manifest-out",
                str(manifest),
                "serve",
                str(fixture_path),
                "--port",
                "0",
            ],
            str(tmp_path),
        )
        try:
            assert _get(f"{base}/v1/scores")[0] == 200
        finally:
            code, _, _ = _finish(process)
        assert code == 0
        document = json.loads(manifest.read_text())
        assert "serve" in document["command"]


class TestServeFollow:
    def test_follow_ingests_appended_records(
        self, fixture_path, tmp_path
    ):
        process, base = _spawn(
            [
                "serve",
                str(fixture_path),
                "--port",
                "0",
                "--follow",
                "0.05",
            ],
            str(tmp_path),
        )
        try:
            status, headers, body = _get(f"{base}/v1/scores")
            assert status == 200
            assert json.loads(body)["generation"] == 0
            etag = headers["ETag"]

            # Append one new region's records; the follower must pick
            # them up, bump the generation, and retire the ETag.
            import dataclasses

            extra = [
                dataclasses.replace(record, region="region-new")
                for record in batch(1)
            ]
            with open(fixture_path, "a", encoding="utf-8") as handle:
                for record in extra:
                    handle.write(json.dumps(record.to_dict()) + "\n")

            deadline = time.time() + 15.0
            document = None
            while time.time() < deadline:
                status, fresh_headers, body = _get(
                    f"{base}/v1/scores", etag
                )
                if status == 200:
                    document = json.loads(body)
                    break
                time.sleep(0.05)
            assert document is not None, "follower never ingested"
            assert document["generation"] >= 1
            assert "region-new" in document["regions"]
            assert fresh_headers["ETag"] != etag
        finally:
            code, _, _ = _finish(process)
        assert code == 0
