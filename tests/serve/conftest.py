"""Shared fixtures for the serving-layer tests."""

import dataclasses

import pytest

from repro.core.config import paper_config
from repro.measurements.columnar import ColumnarStore
from repro.netsim import CampaignConfig, region_preset, simulate_region

_CAMPAIGN = CampaignConfig(subscribers=3, tests_per_client=3)
_SEED = 42


def batch(n_regions):
    """A national batch: one simulated region cloned across n regions."""
    base = list(
        simulate_region(
            region_preset("mixed-urban"), seed=_SEED, config=_CAMPAIGN
        )
    )
    records = []
    for i in range(n_regions):
        records.extend(
            dataclasses.replace(record, region=f"region-{i:03d}")
            for record in base
        )
    return records


@pytest.fixture()
def records():
    """A small 4-region batch (fresh list per test)."""
    return batch(4)


@pytest.fixture()
def store(records):
    return ColumnarStore(records)


@pytest.fixture()
def config():
    return paper_config()
