"""Unit tests for repro.serve.service (ScoringService)."""

import dataclasses
import threading

import pytest

from repro.core.exceptions import DataError
from repro.core.kernel import score_values
from repro.core.scoring import score_regions
from repro.measurements.columnar import ColumnarStore
from repro.measurements.sketchplane import SketchPlane
from repro.obs.registry import REGISTRY
from repro.serve import ScoringService


def _sweeps():
    return REGISTRY.counter("serve.compute.sweeps").value


class TestScores:
    def test_values_match_kernel_fast_path(self, store, config, records):
        service = ScoringService(store, config)
        result = service.scores()
        expected = score_values(ColumnarStore(list(records)), config)
        assert result.values == expected
        assert result.generation == 0
        assert result.quantile_source == "exact"

    def test_second_read_is_a_cache_hit(self, store, config):
        service = ScoringService(store, config)
        before = _sweeps()
        first = service.scores()
        assert _sweeps() == before + 1
        second = service.scores()
        assert second is first  # the very same immutable result object
        assert _sweeps() == before + 1

    def test_exact_kernel_projects_from_breakdowns(self, store, config):
        service = ScoringService(store, config, kernel="exact")
        result = service.scores()
        expected = score_regions(store, config, kernel="exact")
        assert result.values == {
            region: b.value for region, b in expected.items()
        }

    def test_unknown_kernel_rejected(self, store, config):
        with pytest.raises(ValueError):
            ScoringService(store, config, kernel="turbo")

    def test_unknown_quantiles_rejected(self, store, config):
        with pytest.raises(ValueError):
            ScoringService(store, config, quantiles="fuzzy")


class TestInvalidation:
    def test_ingest_bumps_generation_once_per_batch(
        self, store, config, records
    ):
        service = ScoringService(store, config)
        assert service.generation == 0
        added = service.ingest(
            [dataclasses.replace(records[0], region="region-new")]
        )
        assert added == 1
        assert service.generation == 1
        service.ingest([records[0], records[1]])
        assert service.generation == 2

    def test_ingest_empty_batch_changes_nothing(self, store, config):
        service = ScoringService(store, config)
        assert service.ingest([]) == 0
        assert service.generation == 0

    def test_ingest_retires_cached_scores(self, store, config, records):
        service = ScoringService(store, config)
        stale = service.scores()
        before = _sweeps()
        service.ingest(
            [dataclasses.replace(records[0], region="region-new")]
        )
        fresh = service.scores()
        assert _sweeps() == before + 1
        assert fresh.generation == 1
        assert "region-new" in fresh.values
        assert "region-new" not in stale.values

    def test_etag_tracks_generation_and_digest(self, store, config):
        service = ScoringService(store, config)
        first = service.etag()
        assert service.config_sha256[:12] in first
        assert first.endswith('-0"')
        service.ingest([store.records()[0]])
        assert service.etag() != first
        assert service.etag().endswith('-1"')
        assert service.etag(0) == first


class TestBreakdowns:
    def test_bit_identical_to_score_regions(self, store, config, records):
        service = ScoringService(store, config)
        result = service.breakdowns()
        expected = score_regions(ColumnarStore(list(records)), config)
        assert set(result.regions) == set(expected)
        for region in expected:
            assert (
                result.regions[region].to_dict()
                == expected[region].to_dict()
            )

    def test_single_region_rides_the_shared_sweep(self, store, config):
        service = ScoringService(store, config)
        before = _sweeps()
        gen_a, a = service.breakdown("region-000")
        gen_b, b = service.breakdown("region-001")
        assert _sweeps() == before + 1  # one sweep answered both
        assert gen_a == gen_b == 0
        assert a.value != b.value or a.to_dict() != {}

    def test_unknown_region_raises_keyerror(self, store, config):
        service = ScoringService(store, config)
        with pytest.raises(KeyError):
            service.breakdown("atlantis")


class TestNational:
    def test_uniform_weights_by_default(self, store, config):
        service = ScoringService(store, config)
        result = service.national()
        values = service.scores().values
        expected = sum(values.values()) / len(values)
        assert result.national.value == pytest.approx(expected, abs=1e-12)
        assert result.generation == 0

    def test_population_weighting(self, store, config):
        populations = {
            "region-000": 100.0,
            "region-001": 1.0,
            "region-002": 1.0,
            "region-003": 1.0,
        }
        service = ScoringService(store, config, populations=populations)
        result = service.national()
        values = service.scores().values
        total = sum(populations.values())
        expected = sum(
            values[region] * populations[region] / total
            for region in values
        )
        assert result.national.value == pytest.approx(expected, abs=1e-12)

    def test_missing_population_is_a_data_error(self, store, config):
        service = ScoringService(
            store, config, populations={"region-000": 1.0}
        )
        with pytest.raises(DataError):
            service.national()

    def test_cached_per_generation(self, store, config):
        service = ScoringService(store, config)
        first = service.national()
        assert service.national() is first


class TestSketchPlane:
    def test_serves_from_a_bare_sketch_plane(self, config, records):
        plane = SketchPlane()
        plane.extend(records)
        service = ScoringService(plane, config)
        result = service.scores()
        assert result.quantile_source == "sketch"
        assert set(result.values) == {f"region-{i:03d}" for i in range(4)}
        assert result.generation == len(records)

    def test_sketch_plane_rejects_exact_quantiles(self, config, records):
        plane = SketchPlane()
        plane.extend(records)
        with pytest.raises(ValueError):
            ScoringService(plane, config, quantiles="exact")

    def test_sketch_add_bumps_generation_per_record(self, config, records):
        plane = SketchPlane()
        plane.extend(records)
        service = ScoringService(plane, config)
        before = service.generation
        service.ingest([records[0]])
        assert service.generation == before + 1

    def test_columnar_with_sketch_override(self, store, config):
        service = ScoringService(store, config, quantiles="sketch")
        result = service.scores()
        assert result.quantile_source == "sketch"
        gen, breakdown = service.breakdown("region-000")
        assert breakdown.quantile_source == "sketch"


class TestCoalescing:
    def test_concurrent_misses_share_one_sweep(self, store, config):
        service = ScoringService(store, config, batch_window_s=0.05)
        before = _sweeps()
        results = []
        barrier = threading.Barrier(8)

        def read():
            barrier.wait(timeout=5.0)
            results.append(service.scores())

        threads = [threading.Thread(target=read) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert len(results) == 8
        assert _sweeps() == before + 1
        assert all(r.values == results[0].values for r in results)
        assert all(r.generation == 0 for r in results)


class TestConfigDocument:
    def test_document_shape(self, store, config):
        service = ScoringService(store, config, cache_size=8)
        document = service.config_document()
        assert document["config_sha256"] == service.config_sha256
        assert document["kernel"] == "vectorized"
        assert document["cache_size"] == 8
        assert "version" in document["config"]
        assert "thresholds" in document["config"]
