"""Unit tests for repro.serve.cache (LRU cache + single-flight)."""

import threading
import time

import pytest

from repro.obs.registry import REGISTRY
from repro.serve.cache import ScoreCache, SingleFlight


def _counter(name):
    return REGISTRY.counter(name).value


class TestScoreCache:
    def test_get_miss_then_hit(self):
        cache = ScoreCache(maxsize=4)
        assert cache.get(("values", 0)) is None
        cache.put(("values", 0), {"a": 1.0})
        assert cache.get(("values", 0)) == {"a": 1.0}

    def test_hit_miss_counters(self):
        cache = ScoreCache(maxsize=4)
        hits, misses = _counter("serve.cache.hits"), _counter(
            "serve.cache.misses"
        )
        cache.get("absent")
        cache.put("present", 1)
        cache.get("present")
        assert _counter("serve.cache.misses") == misses + 1
        assert _counter("serve.cache.hits") == hits + 1

    def test_lru_eviction_order_and_counter(self):
        cache = ScoreCache(maxsize=2)
        evictions = _counter("serve.cache.evictions")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh: b is now least-recently-used
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert _counter("serve.cache.evictions") == evictions + 1
        assert len(cache) == 2

    def test_put_refreshes_existing_key(self):
        cache = ScoreCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not a new entry
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_clear(self):
        cache = ScoreCache(maxsize=2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            ScoreCache(maxsize=0)


class TestSingleFlight:
    def test_single_caller_runs_compute(self):
        flight = SingleFlight()
        value, led = flight.run("k", lambda: 42)
        assert (value, led) is not None
        assert value == 42
        assert led is True

    def test_sequential_calls_compute_again(self):
        # SingleFlight only collapses *concurrent* calls; memory of
        # past results is the cache's job.
        flight = SingleFlight()
        calls = []
        flight.run("k", lambda: calls.append(1) or len(calls))
        flight.run("k", lambda: calls.append(1) or len(calls))
        assert len(calls) == 2

    def test_concurrent_misses_collapse_to_one_compute(self):
        flight = SingleFlight()
        computes = []
        release = threading.Event()

        def compute():
            computes.append(threading.get_ident())
            release.wait(5.0)
            return "swept"

        results = []

        def worker():
            results.append(flight.run("k", compute))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        # Let every follower reach the wait before releasing the leader.
        deadline = time.time() + 5.0
        while len(computes) == 0 and time.time() < deadline:
            time.sleep(0.01)
        time.sleep(0.1)
        release.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert len(computes) == 1
        assert len(results) == 8
        assert all(value == "swept" for value, _ in results)
        assert sum(1 for _, led in results if led) == 1

    def test_coalesced_counter_counts_followers(self):
        flight = SingleFlight()
        coalesced = _counter("serve.coalesced")
        release = threading.Event()
        started = threading.Event()

        def compute():
            started.set()
            release.wait(5.0)
            return 1

        leader = threading.Thread(target=lambda: flight.run("k", compute))
        leader.start()
        assert started.wait(5.0)
        followers = [
            threading.Thread(target=lambda: flight.run("k", compute))
            for _ in range(3)
        ]
        for thread in followers:
            thread.start()
        # Followers must have registered before the leader finishes.
        deadline = time.time() + 5.0
        while (
            _counter("serve.coalesced") < coalesced + 3
            and time.time() < deadline
        ):
            time.sleep(0.01)
        release.set()
        leader.join(timeout=5.0)
        for thread in followers:
            thread.join(timeout=5.0)
        assert _counter("serve.coalesced") == coalesced + 3

    def test_leader_error_propagates_to_followers(self):
        flight = SingleFlight()
        started = threading.Event()
        release = threading.Event()

        def compute():
            started.set()
            release.wait(5.0)
            raise RuntimeError("sweep failed")

        errors = []

        def call():
            try:
                flight.run("k", compute)
            except RuntimeError as exc:
                errors.append(str(exc))

        leader = threading.Thread(target=call)
        leader.start()
        assert started.wait(5.0)
        follower = threading.Thread(target=call)
        follower.start()
        time.sleep(0.05)
        release.set()
        leader.join(timeout=5.0)
        follower.join(timeout=5.0)
        assert errors == ["sweep failed", "sweep failed"]

    def test_distinct_keys_do_not_coalesce(self):
        flight = SingleFlight()
        release = threading.Event()
        computes = []

        def compute_for(key):
            def compute():
                computes.append(key)
                release.wait(2.0)
                return key

            return compute

        threads = [
            threading.Thread(
                target=lambda k=k: flight.run(k, compute_for(k))
            )
            for k in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        deadline = time.time() + 2.0
        while len(computes) < 2 and time.time() < deadline:
            time.sleep(0.01)
        release.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert sorted(computes) == ["a", "b"]
