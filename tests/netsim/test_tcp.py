"""Unit tests for repro.netsim.tcp (Mathis / Padhye models)."""

import pytest

from repro.netsim.tcp import (
    mathis_throughput,
    multi_stream_throughput,
    padhye_throughput,
)


class TestMathis:
    def test_inverse_sqrt_loss_law(self):
        # Quadrupling loss should halve Mathis throughput.
        fast = mathis_throughput(rtt_ms=20.0, loss=0.001)
        slow = mathis_throughput(rtt_ms=20.0, loss=0.004)
        assert fast / slow == pytest.approx(2.0, rel=1e-6)

    def test_inverse_rtt_law(self):
        near = mathis_throughput(rtt_ms=10.0, loss=0.01)
        far = mathis_throughput(rtt_ms=100.0, loss=0.01)
        assert near / far == pytest.approx(10.0, rel=1e-6)

    def test_textbook_magnitude(self):
        # 1460 B MSS, 100 ms RTT, 1 % loss → ~1.4 Mbit/s (classic value).
        value = mathis_throughput(rtt_ms=100.0, loss=0.01)
        assert value == pytest.approx(1.43, rel=0.05)

    def test_loss_floor_keeps_result_finite(self):
        assert mathis_throughput(rtt_ms=10.0, loss=0.0) < float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            mathis_throughput(rtt_ms=0.0, loss=0.01)
        with pytest.raises(ValueError):
            mathis_throughput(rtt_ms=10.0, loss=1.5)


class TestPadhye:
    def test_close_to_mathis_at_low_loss(self):
        mathis = mathis_throughput(rtt_ms=50.0, loss=0.0005)
        padhye = padhye_throughput(rtt_ms=50.0, loss=0.0005)
        assert padhye == pytest.approx(mathis, rel=0.35)

    def test_more_pessimistic_at_high_loss(self):
        # The RTO term dominates: Padhye must fall below Mathis.
        assert padhye_throughput(rtt_ms=50.0, loss=0.05) < mathis_throughput(
            rtt_ms=50.0, loss=0.05
        )

    def test_window_limit_caps_lossless_path(self):
        # At ~zero loss the receiver window bounds the rate.
        value = padhye_throughput(rtt_ms=100.0, loss=0.0)
        w_max_segments = 65535 * 8 // 1460
        cap = w_max_segments / 0.1 * 1460 * 8 / 1e6
        assert value <= cap * 1.01

    def test_monotone_in_loss(self):
        losses = [0.001, 0.005, 0.02, 0.08]
        rates = [padhye_throughput(rtt_ms=40.0, loss=p) for p in losses]
        assert rates == sorted(rates, reverse=True)


class TestMultiStream:
    def test_capacity_clips(self):
        value = multi_stream_throughput(
            capacity_mbps=50.0, rtt_ms=5.0, loss=0.0001, streams=8
        )
        assert value == 50.0

    def test_streams_scale_until_capacity(self):
        one = multi_stream_throughput(1000.0, 50.0, 0.01, streams=1)
        four = multi_stream_throughput(1000.0, 50.0, 0.01, streams=4)
        assert four == pytest.approx(4 * one)

    def test_multi_stream_masks_loss_sensitivity(self):
        # The NDT-vs-Ookla phenomenon: on a lossy link the 8-stream
        # methodology recovers far more of the capacity.
        capacity = 100.0
        single = multi_stream_throughput(capacity, 40.0, 0.001, streams=1)
        eight = multi_stream_throughput(capacity, 40.0, 0.001, streams=8)
        assert single < 0.2 * capacity
        assert eight > 0.9 * capacity

    def test_padhye_model_selectable(self):
        mathis = multi_stream_throughput(1e6, 40.0, 0.02, streams=1, model="mathis")
        padhye = multi_stream_throughput(1e6, 40.0, 0.02, streams=1, model="padhye")
        assert padhye < mathis

    def test_validation(self):
        with pytest.raises(ValueError):
            multi_stream_throughput(-1.0, 10.0, 0.01)
        with pytest.raises(ValueError):
            multi_stream_throughput(10.0, 10.0, 0.01, streams=0)
        with pytest.raises(ValueError, match="unknown TCP model"):
            multi_stream_throughput(10.0, 10.0, 0.01, model="bbr")

    def test_zero_capacity_gives_zero(self):
        assert multi_stream_throughput(0.0, 10.0, 0.01) == 0.0
