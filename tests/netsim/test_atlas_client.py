"""Unit tests for the Atlas-style latency/loss probe client."""

import pytest

from repro.core.config import paper_config
from repro.core.metrics import Metric
from repro.core.scoring import score_region
from repro.netsim.clients import AtlasPingClient, default_clients
from repro.netsim.link import SubscriberLink
from repro.netsim.population import region_preset
from repro.netsim.rng import make_rng
from repro.netsim.simulator import CampaignConfig, simulate_region


@pytest.fixture()
def link():
    return SubscriberLink(
        subscriber_id="s",
        region="r",
        isp="i",
        tech="cable",
        down_capacity_mbps=200.0,
        up_capacity_mbps=20.0,
        base_rtt_ms=18.0,
        base_loss=0.005,
        bloat_ms=100.0,
    )


class TestAtlasClient:
    def test_measures_only_latency_and_loss(self, link):
        record = AtlasPingClient().measure(link, 0.5, 0.0, make_rng(1, "a"))
        assert record.source == "atlas"
        assert record.download_mbps is None
        assert record.upload_mbps is None
        assert record.latency_ms is not None
        assert record.packet_loss is not None

    def test_not_in_default_trio(self):
        assert "atlas" not in {c.name for c in default_clients()}

    def test_sees_loaded_latency(self, link):
        rng = make_rng(2, "a")
        client = AtlasPingClient()
        idle = sum(
            client.measure(link, 0.0, 0.0, rng).latency_ms for _ in range(50)
        )
        loaded = sum(
            client.measure(link, 1.0, 0.0, rng).latency_ms for _ in range(50)
        )
        assert loaded > idle * 2  # 100 ms bloat on an 18 ms base

    def test_loss_quantized_by_probe_count(self, link):
        record = AtlasPingClient().measure(link, 0.5, 0.0, make_rng(3, "a"))
        scaled = record.packet_loss * AtlasPingClient.PROBE_COUNT
        assert scaled == pytest.approx(round(scaled))


class TestFourthDatasetScoring:
    def test_scoring_with_atlas_as_fourth_dataset(self):
        clients = tuple(default_clients()) + (AtlasPingClient(),)
        campaign = CampaignConfig(subscribers=30, tests_per_client=120)
        records = simulate_region(
            region_preset("suburban-cable"), seed=11, config=campaign,
            clients=clients,
        )
        assert "atlas" in records.sources()

        capabilities = {
            "ndt": tuple(Metric),
            "cloudflare": tuple(Metric),
            "ookla": (Metric.DOWNLOAD, Metric.UPLOAD, Metric.LATENCY),
            "atlas": (Metric.LATENCY, Metric.PACKET_LOSS),
        }
        config = paper_config(datasets=capabilities)
        breakdown = score_region(records.group_by_source(), config)
        assert 0.0 <= breakdown.value <= 1.0

        # Atlas contributes verdicts exactly where it has capability.
        from repro.core.usecases import UseCase

        gaming = breakdown.use_case(UseCase.GAMING)
        latency_datasets = {
            v.dataset for v in gaming.requirement(Metric.LATENCY).verdicts
        }
        download_datasets = {
            v.dataset for v in gaming.requirement(Metric.DOWNLOAD).verdicts
        }
        assert "atlas" in latency_datasets
        assert "atlas" not in download_datasets
