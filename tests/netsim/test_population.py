"""Unit tests for repro.netsim.population."""

import pytest

from repro.netsim.population import (
    ISPProfile,
    REGION_PRESETS,
    RegionProfile,
    build_links,
    region_preset,
)


class TestISPProfile:
    def test_valid_profile(self):
        isp = ISPProfile("X", {"fiber": 0.5, "cable": 0.5}, 1.0)
        assert isp.name == "X"

    def test_tech_mix_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sums to"):
            ISPProfile("X", {"fiber": 0.5, "cable": 0.4}, 1.0)

    def test_unknown_tech_rejected(self):
        with pytest.raises(KeyError):
            ISPProfile("X", {"quantum": 1.0}, 1.0)

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ISPProfile("X", {}, 1.0)

    def test_share_bounds(self):
        with pytest.raises(ValueError, match="share"):
            ISPProfile("X", {"fiber": 1.0}, 0.0)
        with pytest.raises(ValueError, match="share"):
            ISPProfile("X", {"fiber": 1.0}, 1.5)


class TestRegionProfile:
    def test_isp_shares_must_sum_to_one(self):
        with pytest.raises(ValueError, match="shares sum"):
            RegionProfile(
                name="bad",
                description="",
                isps=(
                    ISPProfile("A", {"fiber": 1.0}, 0.5),
                    ISPProfile("B", {"cable": 1.0}, 0.4),
                ),
            )

    def test_no_isps_rejected(self):
        with pytest.raises(ValueError, match="no ISPs"):
            RegionProfile(name="bad", description="", isps=())

    def test_load_factor_positive(self):
        with pytest.raises(ValueError, match="load factor"):
            RegionProfile(
                name="bad",
                description="",
                isps=(ISPProfile("A", {"fiber": 1.0}, 1.0),),
                load_factor=0.0,
            )


class TestPresets:
    def test_six_presets(self):
        assert len(REGION_PRESETS) == 6

    def test_lookup(self):
        assert region_preset("metro-fiber").name == "metro-fiber"

    def test_unknown_preset_lists_known(self):
        with pytest.raises(KeyError, match="metro-fiber"):
            region_preset("narnia")

    def test_presets_span_load_spectrum(self):
        loads = [p.load_factor for p in REGION_PRESETS.values()]
        assert min(loads) < 1.0 < max(loads)


class TestRandomRegion:
    def test_deterministic(self):
        from repro.netsim.population import random_region

        assert random_region("x", 3) == random_region("x", 3)

    def test_name_and_seed_both_matter(self):
        from repro.netsim.population import random_region

        assert random_region("x", 3) != random_region("x", 4)
        assert random_region("x", 3) != random_region("y", 3)

    def test_structurally_valid(self):
        from repro.netsim.population import random_region

        for i in range(20):
            profile = random_region(f"r{i}", seed=7)
            assert 1 <= len(profile.isps) <= 3
            assert 0.8 <= profile.load_factor <= 1.3
            total = sum(isp.subscriber_share for isp in profile.isps)
            assert total == pytest.approx(1.0)

    def test_buildable_and_simulatable(self):
        from repro.netsim.population import random_region
        from repro.netsim.simulator import CampaignConfig, simulate_region

        profile = random_region("sim-check", seed=11)
        records = simulate_region(
            profile,
            seed=11,
            config=CampaignConfig(subscribers=15, tests_per_client=20),
        )
        assert len(records) == 60

    def test_diversity_across_names(self):
        from repro.netsim.population import random_region

        profiles = [random_region(f"d{i}", seed=5) for i in range(15)]
        isp_counts = {len(profile.isps) for profile in profiles}
        assert len(isp_counts) >= 2  # not all identical structures


class TestBuildLinks:
    def test_exact_count(self):
        links = build_links(region_preset("mixed-urban"), 100, seed=1)
        assert len(links) == 100

    def test_deterministic(self):
        a = build_links(region_preset("rural-dsl"), 50, seed=3)
        b = build_links(region_preset("rural-dsl"), 50, seed=3)
        assert a == b

    def test_seed_changes_population(self):
        a = build_links(region_preset("rural-dsl"), 50, seed=3)
        b = build_links(region_preset("rural-dsl"), 50, seed=4)
        assert a != b

    def test_isp_allocation_proportional(self):
        links = build_links(region_preset("suburban-cable"), 100, seed=1)
        by_isp = {}
        for link in links:
            by_isp[link.isp] = by_isp.get(link.isp, 0) + 1
        assert by_isp == {"CoaxCo": 70, "FiberNow": 30}

    def test_tech_mix_respected(self):
        links = build_links(region_preset("rural-dsl"), 200, seed=2)
        techs = {link.tech for link in links}
        assert techs == {"dsl", "fixed_wireless"}

    def test_subscriber_ids_unique(self):
        links = build_links(region_preset("mixed-urban"), 150, seed=5)
        assert len({l.subscriber_id for l in links}) == 150

    def test_region_stamped(self):
        links = build_links(region_preset("metro-fiber"), 10, seed=1)
        assert all(link.region == "metro-fiber" for link in links)

    def test_count_validation(self):
        with pytest.raises(ValueError):
            build_links(region_preset("metro-fiber"), 0, seed=1)

    def test_single_subscriber(self):
        links = build_links(region_preset("metro-fiber"), 1, seed=1)
        assert len(links) == 1

    def test_fiber_population_faster_than_dsl(self):
        fiber = build_links(region_preset("metro-fiber"), 100, seed=6)
        dsl = build_links(region_preset("rural-dsl"), 100, seed=6)
        median = lambda links: sorted(l.down_capacity_mbps for l in links)[50]
        assert median(fiber) > 3 * median(dsl)
