"""Unit tests for repro.netsim.access (technology envelopes)."""

import pytest

from repro.netsim.access import (
    CABLE,
    DSL,
    FIBER,
    SATELLITE_GEO,
    TECHNOLOGIES,
    technology,
    technology_names,
)
from repro.netsim.rng import make_rng


class TestRegistry:
    def test_lookup_by_name(self):
        assert technology("fiber") is FIBER

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="fiber"):
            technology("carrier-pigeon")

    def test_names_sorted(self):
        names = technology_names()
        assert list(names) == sorted(names)
        assert "satellite_geo" in names

    def test_registry_keys_match_profile_names(self):
        for name, tech in TECHNOLOGIES.items():
            assert tech.name == name


class TestEnvelopeShape:
    """Relative technology characteristics measurement folklore expects."""

    def test_fiber_is_fastest_median(self):
        assert FIBER.down_median_mbps > CABLE.down_median_mbps > DSL.down_median_mbps

    def test_fiber_is_symmetric_cable_is_not(self):
        assert FIBER.up_ratio_low >= 0.8
        assert CABLE.up_ratio_high <= 0.2

    def test_geo_satellite_rtt_is_physics_bound(self):
        assert SATELLITE_GEO.rtt_floor_ms >= 500.0

    def test_fiber_lowest_loss(self):
        assert FIBER.loss_median == min(
            tech.loss_median for tech in TECHNOLOGIES.values()
        )

    def test_cable_bloats_more_than_fiber(self):
        assert CABLE.bloat_high_ms > FIBER.bloat_high_ms


class TestDraws:
    @pytest.mark.parametrize("tech", list(TECHNOLOGIES.values()), ids=lambda t: t.name)
    def test_draws_respect_envelopes(self, tech):
        rng = make_rng(11, "draws", tech.name)
        for _ in range(100):
            down = tech.draw_down_capacity(rng)
            assert tech.down_floor_mbps <= down <= tech.down_ceiling_mbps
            ratio = tech.draw_up_ratio(rng)
            assert tech.up_ratio_low <= ratio <= tech.up_ratio_high
            rtt = tech.draw_base_rtt(rng)
            assert tech.rtt_floor_ms <= rtt <= tech.rtt_ceiling_ms
            loss = tech.draw_loss(rng)
            assert 0.0 < loss <= 0.2
            bloat = tech.draw_bloat(rng)
            assert tech.bloat_low_ms <= bloat <= tech.bloat_high_ms

    def test_draws_deterministic_under_seed(self):
        a = FIBER.draw_down_capacity(make_rng(1, "d"))
        b = FIBER.draw_down_capacity(make_rng(1, "d"))
        assert a == b

    def test_dsl_ceiling_caps_capacity(self):
        rng = make_rng(2, "dsl")
        assert all(DSL.draw_down_capacity(rng) <= 100.0 for _ in range(200))
