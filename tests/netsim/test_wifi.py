"""Unit tests for WiFi confounding (netsim.link.apply_wifi + simulator)."""

import pytest

from repro.core import score_region
from repro.core.metrics import Metric
from repro.netsim.link import SubscriberLink, apply_wifi
from repro.netsim.population import region_preset
from repro.netsim.rng import make_rng
from repro.netsim.simulator import CampaignConfig, simulate_region


@pytest.fixture()
def fast_link():
    return SubscriberLink(
        subscriber_id="s",
        region="r",
        isp="i",
        tech="fiber",
        down_capacity_mbps=1000.0,
        up_capacity_mbps=1000.0,
        base_rtt_ms=5.0,
        base_loss=0.0005,
        bloat_ms=10.0,
    )


class TestApplyWifi:
    def test_never_improves_the_link(self, fast_link):
        rng = make_rng(1, "wifi")
        for _ in range(100):
            degraded = apply_wifi(fast_link, rng)
            assert degraded.down_capacity_mbps <= fast_link.down_capacity_mbps
            assert degraded.up_capacity_mbps <= fast_link.up_capacity_mbps
            assert degraded.base_rtt_ms >= fast_link.base_rtt_ms
            assert degraded.base_loss >= fast_link.base_loss

    def test_caps_gigabit_plans_hard(self, fast_link):
        rng = make_rng(2, "wifi")
        capped = [apply_wifi(fast_link, rng).down_capacity_mbps
                  for _ in range(200)]
        assert max(capped) <= 400.0

    def test_slow_links_keep_their_capacity(self):
        slow = SubscriberLink(
            subscriber_id="s",
            region="r",
            isp="i",
            tech="dsl",
            down_capacity_mbps=15.0,
            up_capacity_mbps=3.0,
            base_rtt_ms=30.0,
            base_loss=0.003,
            bloat_ms=100.0,
        )
        rng = make_rng(3, "wifi")
        degraded = apply_wifi(slow, rng)
        # WiFi caps above 30 Mb/s never bind on a 15 Mb/s plan.
        assert degraded.down_capacity_mbps == 15.0

    def test_identity_fields_preserved(self, fast_link):
        degraded = apply_wifi(fast_link, make_rng(4, "wifi"))
        assert degraded.subscriber_id == fast_link.subscriber_id
        assert degraded.region == fast_link.region
        assert degraded.tech == fast_link.tech


class TestWifiConfounding:
    def simulate(self, wifi_share, seed=13):
        campaign = CampaignConfig(
            subscribers=40, tests_per_client=200, wifi_share=wifi_share
        )
        return simulate_region(
            region_preset("metro-fiber"), seed=seed, config=campaign
        )

    def test_wifi_lowers_measured_throughput(self):
        clean = self.simulate(0.0)
        confounded = self.simulate(0.8)
        assert confounded.median(Metric.DOWNLOAD) < clean.median(
            Metric.DOWNLOAD
        )

    def test_wifi_lowers_the_score_without_touching_the_network(self, config):
        # Same ground-truth population (same seed), different test
        # environment: the confounder moves the barometer.
        clean = score_region(self.simulate(0.0).group_by_source(), config)
        confounded = score_region(
            self.simulate(0.8).group_by_source(), config
        )
        assert confounded.value < clean.value

    def test_share_validation(self):
        with pytest.raises(ValueError, match="wifi_share"):
            CampaignConfig(wifi_share=1.5)

    def test_zero_share_is_exactly_the_old_behaviour(self):
        # wifi_share=0 must not consume RNG draws: byte-identical runs.
        campaign_a = CampaignConfig(subscribers=20, tests_per_client=50)
        campaign_b = CampaignConfig(
            subscribers=20, tests_per_client=50, wifi_share=0.0
        )
        a = simulate_region(region_preset("rural-dsl"), 7, campaign_a)
        b = simulate_region(region_preset("rural-dsl"), 7, campaign_b)
        assert list(a) == list(b)
