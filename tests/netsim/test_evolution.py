"""Unit tests for repro.netsim.evolution."""

import pytest

from repro.netsim.evolution import (
    EvolutionStage,
    fiber_buildout,
    simulate_evolution,
    stage_boundaries,
)
from repro.netsim.population import region_preset

DAY = 86400.0


class TestFiberBuildout:
    def test_shares_ramp_linearly(self):
        stages = fiber_buildout(periods=5)
        mixes = [
            stage.profile.isps[0].tech_mix.get("fiber", 0.0)
            for stage in stages
        ]
        assert mixes == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])

    def test_first_stage_is_pure_dsl(self):
        stage = fiber_buildout()[0]
        assert stage.profile.isps[0].tech_mix == {"dsl": 1.0}

    def test_final_stage_reaches_target(self):
        stages = fiber_buildout(final_fiber_share=0.6, periods=4)
        final = stages[-1].profile.isps[0].tech_mix
        assert final["fiber"] == pytest.approx(0.6)
        assert final["dsl"] == pytest.approx(0.4)

    def test_load_relaxes_toward_one(self):
        stages = fiber_buildout(periods=4, initial_load_factor=1.2)
        loads = [stage.profile.load_factor for stage in stages]
        assert loads[0] == pytest.approx(1.2)
        assert loads[-1] == pytest.approx(1.0)
        assert loads == sorted(loads, reverse=True)

    def test_shared_region_name(self):
        stages = fiber_buildout(region_name="upgrade-town")
        assert {stage.profile.name for stage in stages} == {"upgrade-town"}

    def test_validation(self):
        with pytest.raises(ValueError):
            fiber_buildout(periods=1)


class TestStageBoundaries:
    def test_contiguous(self):
        stages = fiber_buildout(periods=3, days_per_period=10.0)
        bounds = stage_boundaries(stages)
        assert bounds == [
            (0.0, 10 * DAY),
            (10 * DAY, 20 * DAY),
            (20 * DAY, 30 * DAY),
        ]


class TestSimulateEvolution:
    def test_records_span_all_stages(self):
        stages = fiber_buildout(periods=3, days_per_period=5.0)
        records = simulate_evolution(
            stages, seed=1, tests_per_client_per_stage=50, subscribers=30
        )
        assert len(records) == 3 * 3 * 50  # stages x clients x tests
        for (start, end), stage in zip(stage_boundaries(stages), stages):
            window = records.between(start, end)
            assert len(window) == 150

    def test_technology_shift_visible_in_records(self):
        stages = fiber_buildout(periods=3, days_per_period=5.0)
        records = simulate_evolution(
            stages, seed=2, tests_per_client_per_stage=80, subscribers=40
        )
        bounds = stage_boundaries(stages)
        first = records.between(*bounds[0])
        last = records.between(*bounds[-1])
        assert {r.access_tech for r in first} == {"dsl"}
        assert {r.access_tech for r in last} == {"fiber"}

    def test_deterministic(self):
        stages = fiber_buildout(periods=2, days_per_period=3.0)
        a = simulate_evolution(stages, seed=5, tests_per_client_per_stage=20,
                               subscribers=10)
        b = simulate_evolution(stages, seed=5, tests_per_client_per_stage=20,
                               subscribers=10)
        assert list(a) == list(b)

    def test_mismatched_regions_rejected(self):
        stages = [
            EvolutionStage(profile=region_preset("metro-fiber")),
            EvolutionStage(profile=region_preset("rural-dsl")),
        ]
        with pytest.raises(ValueError, match="share one region"):
            simulate_evolution(stages, seed=1)

    def test_empty_stages_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            simulate_evolution([], seed=1)

    def test_stage_length_validated(self):
        with pytest.raises(ValueError, match="positive"):
            EvolutionStage(profile=region_preset("metro-fiber"), days=0.0)
