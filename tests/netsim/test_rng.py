"""Unit tests for repro.netsim.rng (deterministic stream plumbing)."""

import pytest

from repro.netsim.rng import bounded_lognormal, make_rng


class TestMakeRng:
    def test_same_keys_same_stream(self):
        a = make_rng(7, "region", "x", 3)
        b = make_rng(7, "region", "x", 3)
        assert [float(a.random()) for _ in range(5)] == [
            float(b.random()) for _ in range(5)
        ]

    def test_different_seed_different_stream(self):
        assert float(make_rng(1, "k").random()) != float(make_rng(2, "k").random())

    def test_different_keys_different_stream(self):
        assert float(make_rng(1, "a").random()) != float(make_rng(1, "b").random())

    def test_key_order_matters(self):
        assert float(make_rng(1, "a", "b").random()) != float(
            make_rng(1, "b", "a").random()
        )

    def test_int_keys_supported(self):
        assert float(make_rng(1, 5).random()) == float(make_rng(1, 5).random())

    def test_negative_seed_handled(self):
        # Seeds are masked to 64 bits rather than rejected.
        assert float(make_rng(-1, "k").random()) == float(
            make_rng(-1, "k").random()
        )

    def test_bad_key_type_rejected(self):
        with pytest.raises(TypeError):
            make_rng(1, 3.14)
        with pytest.raises(TypeError):
            make_rng(1, True)

    def test_streams_are_independent_of_consumption(self):
        # Consuming one stream must not perturb a sibling stream.
        probe = make_rng(9, "sibling")
        expected = float(probe.random())
        other = make_rng(9, "consumed")
        for _ in range(100):
            other.random()
        assert float(make_rng(9, "sibling").random()) == expected


class TestBoundedLognormal:
    def test_within_bounds(self):
        rng = make_rng(3, "ln")
        for _ in range(200):
            value = bounded_lognormal(rng, median=50.0, sigma=1.0, low=10.0, high=90.0)
            assert 10.0 <= value <= 90.0

    def test_median_roughly_respected(self):
        rng = make_rng(4, "ln")
        values = sorted(
            bounded_lognormal(rng, median=100.0, sigma=0.3, low=1.0, high=10000.0)
            for _ in range(2000)
        )
        assert values[1000] == pytest.approx(100.0, rel=0.1)

    def test_non_positive_median_rejected(self):
        rng = make_rng(5, "ln")
        with pytest.raises(ValueError):
            bounded_lognormal(rng, median=0.0, sigma=1.0, low=0.0, high=1.0)
