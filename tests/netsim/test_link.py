"""Unit tests for repro.netsim.link."""

import pytest

from repro.netsim.access import FIBER
from repro.netsim.link import SubscriberLink, draw_link
from repro.netsim.rng import make_rng


@pytest.fixture()
def link():
    return SubscriberLink(
        subscriber_id="r/isp/0",
        region="r",
        isp="isp",
        tech="fiber",
        down_capacity_mbps=100.0,
        up_capacity_mbps=50.0,
        base_rtt_ms=10.0,
        base_loss=0.001,
        bloat_ms=100.0,
    )


class TestLoadModel:
    def test_idle_link_matches_base_values(self, link):
        assert link.rtt_under_load(0.0) == 10.0
        assert link.loss_under_load(0.0) == 0.001
        assert link.down_available_mbps(0.0) == 100.0
        assert link.up_available_mbps(0.0) == 50.0

    def test_rtt_grows_linearly_with_bloat(self, link):
        assert link.rtt_under_load(0.5) == pytest.approx(60.0)
        assert link.rtt_under_load(1.0) == pytest.approx(110.0)

    def test_loss_grows_superlinearly(self, link):
        mild = link.loss_under_load(0.25) - link.base_loss
        heavy = link.loss_under_load(1.0) - link.base_loss
        assert heavy > 16 * mild * 0.9  # u^4 law

    def test_loss_capped_at_one(self):
        lossy = SubscriberLink(
            subscriber_id="x",
            region="r",
            isp="i",
            tech="dsl",
            down_capacity_mbps=10.0,
            up_capacity_mbps=1.0,
            base_rtt_ms=30.0,
            base_loss=0.999,
            bloat_ms=10.0,
        )
        assert lossy.loss_under_load(1.0) == 1.0

    def test_capacity_shrinks_with_cross_traffic(self, link):
        assert link.down_available_mbps(1.0) < link.down_capacity_mbps
        assert link.down_available_mbps(0.5) > link.down_available_mbps(1.0)

    def test_utilization_clamped_above_one(self, link):
        assert link.rtt_under_load(1.2) == link.rtt_under_load(1.0)

    def test_invalid_utilization_rejected(self, link):
        with pytest.raises(ValueError):
            link.rtt_under_load(-0.1)
        with pytest.raises(ValueError):
            link.loss_under_load(2.0)

    def test_monotone_in_utilization(self, link):
        grid = [i / 10.0 for i in range(11)]
        rtts = [link.rtt_under_load(u) for u in grid]
        losses = [link.loss_under_load(u) for u in grid]
        downs = [link.down_available_mbps(u) for u in grid]
        assert rtts == sorted(rtts)
        assert losses == sorted(losses)
        assert downs == sorted(downs, reverse=True)


class TestDrawLink:
    def test_fields_populated(self):
        link = draw_link(make_rng(1, "l"), "sub", "region", "isp", FIBER)
        assert link.subscriber_id == "sub"
        assert link.tech == "fiber"
        assert link.up_capacity_mbps <= link.down_capacity_mbps
        assert link.base_rtt_ms > 0
        assert 0 < link.base_loss <= 0.2

    def test_deterministic(self):
        a = draw_link(make_rng(1, "l"), "s", "r", "i", FIBER)
        b = draw_link(make_rng(1, "l"), "s", "r", "i", FIBER)
        assert a == b
