"""Unit tests for repro.netsim.congestion (diurnal model)."""

import pytest

from repro.netsim.congestion import (
    DEFAULT_PROFILE,
    DiurnalProfile,
    hour_of_day,
)
from repro.netsim.rng import make_rng


class TestHourOfDay:
    def test_midnight(self):
        assert hour_of_day(0.0) == 0.0

    def test_noon(self):
        assert hour_of_day(12 * 3600.0) == 12.0

    def test_wraps_across_days(self):
        assert hour_of_day(86400.0 + 3600.0) == 1.0

    def test_fractional_hours(self):
        assert hour_of_day(90 * 60.0) == 1.5


class TestUtilizationCurve:
    def test_bounded(self):
        for hour in range(24):
            value = DEFAULT_PROFILE.utilization(float(hour))
            assert 0.0 <= value <= 1.0

    def test_evening_peak_dominates(self):
        evening = DEFAULT_PROFILE.utilization(20.5)
        night = DEFAULT_PROFILE.utilization(4.0)
        midday = DEFAULT_PROFILE.utilization(14.0)
        assert evening > midday > night

    def test_peak_is_at_configured_hour(self):
        values = {h / 2.0: DEFAULT_PROFILE.utilization(h / 2.0) for h in range(48)}
        peak_hour = max(values, key=values.get)
        assert peak_hour == pytest.approx(DEFAULT_PROFILE.evening_hour, abs=0.5)

    def test_load_factor_scales(self):
        base = DEFAULT_PROFILE.utilization(20.5, load_factor=1.0)
        loaded = DEFAULT_PROFILE.utilization(20.5, load_factor=1.4)
        assert loaded == pytest.approx(min(1.0, base * 1.4))

    def test_saturation_clamped(self):
        profile = DiurnalProfile(evening_peak=0.9)
        assert profile.utilization(20.5, load_factor=5.0) == 1.0

    def test_hours_wrap(self):
        assert DEFAULT_PROFILE.utilization(25.0) == pytest.approx(
            DEFAULT_PROFILE.utilization(1.0)
        )

    def test_circular_continuity_at_midnight(self):
        before = DEFAULT_PROFILE.utilization(23.999)
        after = DEFAULT_PROFILE.utilization(0.001)
        assert before == pytest.approx(after, abs=0.01)


class TestWeekend:
    def test_weekend_daytime_runs_hotter(self):
        weekday = DEFAULT_PROFILE.utilization(14.0, weekend=False)
        weekend = DEFAULT_PROFILE.utilization(14.0, weekend=True)
        assert weekend > weekday + 0.05

    def test_weekend_night_unchanged(self):
        weekday = DEFAULT_PROFILE.utilization(3.0, weekend=False)
        weekend = DEFAULT_PROFILE.utilization(3.0, weekend=True)
        assert weekend == pytest.approx(weekday, abs=0.01)

    def test_sampling_uses_calendar(self):
        from repro.timeutil import SECONDS_PER_DAY

        rng_a = make_rng(9, "wk")
        rng_b = make_rng(9, "wk")
        noon = 12 * 3600.0
        weekday_samples = [
            DEFAULT_PROFILE.sample_utilization(rng_a, 2 * SECONDS_PER_DAY + noon)
            for _ in range(500)
        ]
        weekend_samples = [
            DEFAULT_PROFILE.sample_utilization(rng_b, 5 * SECONDS_PER_DAY + noon)
            for _ in range(500)
        ]
        weekday_mean = sum(weekday_samples) / len(weekday_samples)
        weekend_mean = sum(weekend_samples) / len(weekend_samples)
        assert weekend_mean > weekday_mean

    def test_day_of_week_helpers(self):
        from repro.timeutil import SECONDS_PER_DAY, day_of_week, is_weekend

        assert day_of_week(0.0) == 0
        assert day_of_week(6.5 * SECONDS_PER_DAY) == 6
        assert day_of_week(7 * SECONDS_PER_DAY) == 0
        assert not is_weekend(4.9 * SECONDS_PER_DAY)
        assert is_weekend(5.0 * SECONDS_PER_DAY)
        assert is_weekend(6.9 * SECONDS_PER_DAY)


class TestSampling:
    def test_noise_centred_on_curve(self):
        rng = make_rng(5, "diurnal")
        timestamp = 20.5 * 3600.0
        samples = [
            DEFAULT_PROFILE.sample_utilization(rng, timestamp) for _ in range(2000)
        ]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(DEFAULT_PROFILE.utilization(20.5), abs=0.02)

    def test_samples_bounded(self):
        rng = make_rng(6, "diurnal")
        for i in range(500):
            value = DEFAULT_PROFILE.sample_utilization(rng, i * 977.0, 1.3)
            assert 0.0 <= value <= 1.0
