"""Unit tests for repro.netsim.clients (dataset methodologies)."""

import pytest

from repro.core.metrics import Metric
from repro.netsim.clients import (
    DEFAULT_CLIENTS,
    CloudflareClient,
    NDTClient,
    OoklaClient,
    default_clients,
)
from repro.netsim.link import SubscriberLink
from repro.netsim.rng import make_rng


@pytest.fixture()
def lossy_link():
    """A high-capacity but lossy, bloated link (cable-at-peak style)."""
    return SubscriberLink(
        subscriber_id="s",
        region="r",
        isp="i",
        tech="cable",
        down_capacity_mbps=300.0,
        up_capacity_mbps=30.0,
        base_rtt_ms=15.0,
        base_loss=0.008,
        bloat_ms=120.0,
    )


def measure(client, link, utilization=0.5, seed=1):
    return client.measure(link, utilization, timestamp=1000.0, rng=make_rng(seed, "m"))


class TestRegistry:
    def test_trio_registered(self):
        assert set(DEFAULT_CLIENTS) == {"ndt", "cloudflare", "ookla"}

    def test_default_clients_sorted(self):
        assert [c.name for c in default_clients()] == [
            "cloudflare",
            "ndt",
            "ookla",
        ]

    def test_declared_metrics(self):
        assert Metric.PACKET_LOSS in NDTClient.metrics
        assert Metric.PACKET_LOSS in CloudflareClient.metrics
        assert Metric.PACKET_LOSS not in OoklaClient.metrics


class TestRecordShape:
    @pytest.mark.parametrize(
        "client", [NDTClient(), CloudflareClient(), OoklaClient()],
        ids=lambda c: c.name,
    )
    def test_record_fields(self, client, lossy_link):
        record = measure(client, lossy_link)
        assert record.source == client.name
        assert record.region == "r"
        assert record.isp == "i"
        assert record.access_tech == "cable"
        assert record.timestamp == 1000.0
        assert record.download_mbps is not None and record.download_mbps >= 0
        assert record.latency_ms is not None and record.latency_ms > 0

    def test_ookla_publishes_no_loss(self, lossy_link):
        assert measure(OoklaClient(), lossy_link).packet_loss is None

    def test_ndt_and_cloudflare_publish_loss(self, lossy_link):
        assert measure(NDTClient(), lossy_link).packet_loss is not None
        assert measure(CloudflareClient(), lossy_link).packet_loss is not None

    def test_deterministic_under_seed(self, lossy_link):
        a = measure(NDTClient(), lossy_link, seed=9)
        b = measure(NDTClient(), lossy_link, seed=9)
        assert a == b


class TestMethodologyBiases:
    """The systematic differences the corroboration argument rests on."""

    def average(self, client, link, utilization, attr, n=60):
        rng = make_rng(33, "avg", client.name, attr)
        total = 0.0
        for _ in range(n):
            record = client.measure(link, utilization, 0.0, rng)
            total += getattr(record, attr)
        return total / n

    def test_ookla_reports_more_throughput_than_ndt_on_lossy_link(
        self, lossy_link
    ):
        ndt = self.average(NDTClient(), lossy_link, 0.6, "download_mbps")
        ookla = self.average(OoklaClient(), lossy_link, 0.6, "download_mbps")
        assert ookla > 2.0 * ndt

    def test_cloudflare_sits_between(self, lossy_link):
        ndt = self.average(NDTClient(), lossy_link, 0.6, "download_mbps")
        cf = self.average(CloudflareClient(), lossy_link, 0.6, "download_mbps")
        ookla = self.average(OoklaClient(), lossy_link, 0.6, "download_mbps")
        assert ndt < cf < ookla

    def test_ookla_idle_ping_below_loaded_latency(self, lossy_link):
        ookla = self.average(OoklaClient(), lossy_link, 0.8, "latency_ms")
        cloudflare = self.average(CloudflareClient(), lossy_link, 0.8, "latency_ms")
        assert ookla < cloudflare

    def test_ndt_retransmission_overstates_loss(self, lossy_link):
        true_loss = lossy_link.loss_under_load(0.5)
        ndt = self.average(NDTClient(), lossy_link, 0.5, "packet_loss")
        assert ndt > true_loss

    def test_cloudflare_loss_unbiased(self, lossy_link):
        true_loss = lossy_link.loss_under_load(0.5)
        cf = self.average(CloudflareClient(), lossy_link, 0.5, "packet_loss", n=200)
        assert cf == pytest.approx(true_loss, rel=0.25)

    def test_cloudflare_loss_quantized_by_probe_count(self, lossy_link):
        record = measure(CloudflareClient(), lossy_link)
        assert (record.packet_loss * CloudflareClient.PROBE_COUNT) == pytest.approx(
            round(record.packet_loss * CloudflareClient.PROBE_COUNT)
        )

    def test_throughput_never_exceeds_capacity_much(self, lossy_link):
        # Noise is multiplicative but peak selection can't invent capacity
        # beyond noise headroom.
        for client in default_clients():
            rng = make_rng(44, "cap", client.name)
            for _ in range(50):
                record = client.measure(lossy_link, 0.0, 0.0, rng)
                assert record.download_mbps < lossy_link.down_capacity_mbps * 1.5
