"""Unit tests for repro.netsim.simulator."""

import pytest

from repro.core.metrics import Metric
from repro.netsim.congestion import hour_of_day
from repro.netsim.clients import NDTClient
from repro.netsim.population import region_preset
from repro.netsim.simulator import (
    CampaignConfig,
    ground_truth,
    simulate_region,
    simulate_regions,
)


class TestCampaignConfig:
    def test_defaults(self):
        config = CampaignConfig()
        assert config.subscribers == 150
        assert config.days == 7.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"subscribers": 0},
            {"tests_per_client": 0},
            {"days": 0.0},
            {"evening_bias": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CampaignConfig(**kwargs)


class TestSimulateRegion:
    def test_record_count(self):
        config = CampaignConfig(subscribers=20, tests_per_client=50)
        records = simulate_region(region_preset("metro-fiber"), 1, config)
        assert len(records) == 150  # 3 clients x 50

    def test_all_three_datasets_present(self):
        config = CampaignConfig(subscribers=20, tests_per_client=30)
        records = simulate_region(region_preset("metro-fiber"), 1, config)
        assert records.sources() == ("cloudflare", "ndt", "ookla")

    def test_deterministic(self):
        config = CampaignConfig(subscribers=10, tests_per_client=20)
        a = simulate_region(region_preset("rural-dsl"), 5, config)
        b = simulate_region(region_preset("rural-dsl"), 5, config)
        assert list(a) == list(b)

    def test_seed_matters(self):
        config = CampaignConfig(subscribers=10, tests_per_client=20)
        a = simulate_region(region_preset("rural-dsl"), 5, config)
        b = simulate_region(region_preset("rural-dsl"), 6, config)
        assert list(a) != list(b)

    def test_timestamps_inside_window(self):
        config = CampaignConfig(subscribers=10, tests_per_client=100, days=3.0)
        records = simulate_region(region_preset("metro-fiber"), 2, config)
        for record in records:
            assert 0.0 <= record.timestamp < 3.0 * 86400.0

    def test_evening_bias_shapes_timestamps(self):
        config = CampaignConfig(
            subscribers=10, tests_per_client=400, evening_bias=0.9
        )
        records = simulate_region(region_preset("metro-fiber"), 3, config)
        evening = sum(
            1 for r in records if 18.0 <= hour_of_day(r.timestamp) <= 23.0
        )
        assert evening / len(records) > 0.8

    def test_custom_client_subset(self):
        config = CampaignConfig(subscribers=10, tests_per_client=10)
        records = simulate_region(
            region_preset("metro-fiber"), 1, config, clients=[NDTClient()]
        )
        assert records.sources() == ("ndt",)

    def test_records_carry_isp_and_tech(self):
        config = CampaignConfig(subscribers=10, tests_per_client=10)
        records = simulate_region(region_preset("suburban-cable"), 1, config)
        assert all(r.isp for r in records)
        assert {r.access_tech for r in records} <= {"cable", "fiber"}


class TestSimulateRegions:
    def test_combines_regions(self):
        config = CampaignConfig(subscribers=10, tests_per_client=10)
        records = simulate_regions(
            [region_preset("metro-fiber"), region_preset("rural-dsl")],
            seed=1,
            config=config,
        )
        assert records.regions() == ("metro-fiber", "rural-dsl")
        assert len(records) == 60

    def test_regions_independent_of_order(self):
        config = CampaignConfig(subscribers=10, tests_per_client=10)
        ab = simulate_regions(
            [region_preset("metro-fiber"), region_preset("rural-dsl")],
            seed=1,
            config=config,
        )
        ba = simulate_regions(
            [region_preset("rural-dsl"), region_preset("metro-fiber")],
            seed=1,
            config=config,
        )
        assert sorted(
            ab.for_region("metro-fiber"), key=lambda r: (r.source, r.timestamp)
        ) == sorted(
            ba.for_region("metro-fiber"), key=lambda r: (r.source, r.timestamp)
        )


class TestGroundTruth:
    def test_medians_reported(self):
        truth = ground_truth(region_preset("metro-fiber"), seed=1, subscribers=50)
        assert truth.region == "metro-fiber"
        assert truth.median_down_mbps > truth.median_up_mbps * 0.5
        assert len(truth.links) == 50

    def test_fiber_truth_beats_satellite(self):
        fiber = ground_truth(region_preset("metro-fiber"), seed=1)
        satellite = ground_truth(region_preset("satellite-remote"), seed=1)
        assert fiber.median_rtt_ms < satellite.median_rtt_ms / 5.0

    def test_measured_medians_track_truth(self):
        # Ookla's peak methodology should land near true capacity medians.
        profile = region_preset("metro-fiber")
        truth = ground_truth(profile, seed=9, subscribers=60)
        config = CampaignConfig(subscribers=60, tests_per_client=300)
        records = simulate_region(profile, 9, config).for_source("ookla")
        measured = records.median(Metric.DOWNLOAD)
        assert measured == pytest.approx(truth.median_down_mbps, rel=0.45)
