"""Chaos suite: seeded fault injection through the resilience stack.

Every test here is deterministic — the chaos schedule is a pure
function of (seed, call sequence) — so assertions are exact, not
probabilistic. The per-test timeout only bites when pytest-timeout is
installed (CI); without the plugin the marker is inert.
"""

import dataclasses

import pytest

from repro.core.config import paper_config
from repro.core.exceptions import BackendError
from repro.core.scoring import score_regions
from repro.measurements.collection import MeasurementSet
from repro.measurements.record import Measurement
from repro.obs import REGISTRY
from repro.probing.backends import ProbeRequest
from repro.probing.runner import ProbeRunner, backend_name
from repro.probing.sinks import MemorySink
from repro.resilience import (
    BreakerBoard,
    CampaignJournal,
    ChaosBackend,
    ChaosConfig,
    ChaosSink,
    RetryPolicy,
    strip_metrics,
)

pytestmark = pytest.mark.timeout(60)


class PureBackend:
    """A stateless backend: each measurement is a function of its request.

    This is the backend shape the crash-resume parity contract needs —
    re-running any subset of the schedule reproduces identical records
    (unlike SimulatedBackend, whose per-client RNG streams are stateful
    across probes).
    """

    name = "pure"

    def run(self, request):
        base = 50.0 + (request.timestamp % 7.0)
        return Measurement(
            region=request.region,
            source=request.client,
            timestamp=request.timestamp,
            download_mbps=base,
            upload_mbps=base / 4,
            latency_ms=20.0 + (request.timestamp % 3.0),
            packet_loss=0.001,
        )

    def regions(self):
        return ("r",)

    def clients(self):
        return ("ndt", "cloudflare", "ookla")


def schedule(n, client="ndt", region="r"):
    return [
        ProbeRequest(client=client, region=region, timestamp=float(i))
        for i in range(n)
    ]


def sink_records(sink):
    """A sink's measurements in deterministic order, for comparison."""
    return sorted(
        sink.as_set(), key=lambda m: (m.source, m.region, m.timestamp)
    )


def outcomes(backend, n):
    """success/failure sequence of n probes against a chaos backend."""
    result = []
    for request in schedule(n):
        try:
            backend.run(request)
            result.append(True)
        except BackendError:
            result.append(False)
    return result


class TestChaosConfig:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            ChaosConfig(failure_rate=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(stall_rate=-0.1)
        with pytest.raises(ValueError):
            ChaosConfig(burst_length=0)
        with pytest.raises(ValueError):
            ChaosConfig(stall_s=-1.0)


class TestChaosBackend:
    def test_schedule_is_deterministic_per_seed(self):
        config = ChaosConfig(seed=42, failure_rate=0.3, burst_length=2)
        first = outcomes(ChaosBackend(PureBackend(), config), 200)
        second = outcomes(ChaosBackend(PureBackend(), config), 200)
        assert first == second
        assert False in first and True in first

    def test_different_seeds_differ(self):
        base = dict(failure_rate=0.3, burst_length=2)
        first = outcomes(
            ChaosBackend(PureBackend(), ChaosConfig(seed=1, **base)), 200
        )
        second = outcomes(
            ChaosBackend(PureBackend(), ChaosConfig(seed=2, **base)), 200
        )
        assert first != second

    def test_failures_come_in_bursts(self):
        config = ChaosConfig(seed=3, failure_rate=0.1, burst_length=3)
        sequence = outcomes(ChaosBackend(PureBackend(), config), 400)
        runs = []
        length = 0
        for ok in sequence:
            if not ok:
                length += 1
            elif length:
                runs.append(length)
                length = 0
        # A burst truncated by the end of the sequence is dropped.
        assert runs  # chaos actually fired
        # Each burst fails exactly burst_length consecutive probes;
        # adjacent bursts concatenate, so run lengths are multiples.
        assert all(run % 3 == 0 for run in runs)

    def test_stalls_are_recorded_not_slept_by_default(self):
        config = ChaosConfig(seed=0, stall_rate=1.0, stall_s=0.5)
        backend = ChaosBackend(PureBackend(), config)
        for request in schedule(4):
            backend.run(request)
        assert backend.injected_stalls == 4
        assert backend.stalled_s == pytest.approx(2.0)

    def test_stalls_use_injected_sleep(self):
        slept = []
        config = ChaosConfig(seed=0, stall_rate=1.0, stall_s=0.25)
        backend = ChaosBackend(PureBackend(), config, sleep=slept.append)
        backend.run(schedule(1)[0])
        assert slept == [0.25]

    def test_corruption_strips_every_metric(self):
        config = ChaosConfig(seed=0, corrupt_rate=1.0)
        backend = ChaosBackend(PureBackend(), config)
        request = schedule(1)[0]
        measurement = backend.run(request)
        assert measurement.region == "r"
        assert measurement.source == "ndt"
        assert measurement.timestamp == request.timestamp
        assert measurement.download_mbps is None
        assert measurement.upload_mbps is None
        assert measurement.latency_ms is None
        assert measurement.packet_loss is None
        assert backend.injected_corruptions == 1

    def test_delegates_topology(self):
        backend = ChaosBackend(PureBackend(), ChaosConfig())
        assert backend.regions() == ("r",)
        assert backend.clients() == ("ndt", "cloudflare", "ookla")


class TestChaosSink:
    def test_injects_oserror_and_drops_the_write(self):
        inner = MemorySink()
        sink = ChaosSink(inner, seed=0, failure_rate=1.0)
        with pytest.raises(OSError, match="chaos: injected sink"):
            sink.accept(PureBackend().run(schedule(1)[0]))
        assert len(inner) == 0
        assert sink.injected_failures == 1

    def test_failure_rate_validated(self):
        with pytest.raises(ValueError):
            ChaosSink(MemorySink(), failure_rate=2.0)


class TestRunnerUnderChaos:
    def run_campaign(self, n=120, **chaos):
        config = ChaosConfig(seed=9, **chaos)
        backend = ChaosBackend(PureBackend(), config)
        sink = MemorySink()
        runner = ProbeRunner(
            backend, sink, retry_policy=RetryPolicy(max_attempts=3, seed=9)
        )
        return runner.run(schedule(n)), sink, backend

    def test_accounting_is_exact(self):
        report, sink, backend = self.run_campaign(
            failure_rate=0.2, burst_length=2
        )
        assert report.scheduled == 120
        assert report.succeeded + len(report.abandoned) == 120
        assert len(sink) == report.succeeded
        assert backend.injected_failures > 0
        for failed in report.abandoned:
            assert failed.attempts == 3
            assert "chaos: injected failure" in failed.last_error

    def test_chaotic_campaign_is_reproducible(self):
        first, first_sink, _ = self.run_campaign(
            failure_rate=0.2, burst_length=2
        )
        second, second_sink, _ = self.run_campaign(
            failure_rate=0.2, burst_length=2
        )
        # Identical outcomes; only the wall-clock stamps may differ.
        assert dataclasses.replace(
            first, started_unix=0.0, finished_unix=0.0
        ) == dataclasses.replace(
            second, started_unix=0.0, finished_unix=0.0
        )
        assert sink_records(first_sink) == sink_records(second_sink)

    def test_sink_failures_consume_attempts(self):
        backend = PureBackend()
        sink = ChaosSink(MemorySink(), seed=1, failure_rate=1.0)
        runner = ProbeRunner(backend, sink, max_attempts=2)
        report = runner.run(schedule(5))
        assert report.succeeded == 0
        assert len(report.abandoned) == 5
        assert all(
            "sink write failed" in failed.last_error
            for failed in report.abandoned
        )
        assert report.retried == 5  # one retry per probe


class TestBreakersUnderChaos:
    def test_dead_dataset_trips_and_short_circuits(self):
        config = ChaosConfig(seed=0, failure_rate=1.0)
        backend = ChaosBackend(PureBackend(), config)
        breakers = BreakerBoard(failure_threshold=5)
        runner = ProbeRunner(
            backend, MemorySink(), max_attempts=1, breakers=breakers
        )
        report = runner.run(schedule(40))
        key = (backend_name(backend), "ndt")
        assert breakers.breaker(key).state == "open"
        # 5 real failures trip the breaker; everything after is skipped
        # without touching the backend.
        assert len(report.abandoned) == 5
        assert report.short_circuited == 35
        assert backend.injected_failures == 5
        assert REGISTRY.snapshot()["gauges"]["probe.circuit.open"] == 1.0

    def test_chaos_breaker_keys_follow_the_wrapped_backend(self):
        backend = ChaosBackend(PureBackend(), ChaosConfig())
        # The wrapper delegates the inner backend's name, keeping
        # breaker keys stable whether or not chaos is interposed.
        assert backend_name(backend) == "pure"


class TestDegradedScoringFromChaos:
    def build_records(self):
        records = []
        for source in ("ndt", "cloudflare", "ookla"):
            for i in range(24):
                records.append(
                    Measurement(
                        region="metro",
                        source=source,
                        timestamp=float(i),
                        download_mbps=200.0,
                        upload_mbps=40.0,
                        latency_ms=15.0,
                        packet_loss=0.001,
                    )
                )
        return records

    def test_fully_corrupted_dataset_degrades_the_region(self):
        records = [
            strip_metrics(m) if m.source == "ookla" else m
            for m in self.build_records()
        ]
        breakdowns = score_regions(MeasurementSet(records), paper_config())
        breakdown = breakdowns["metro"]
        assert breakdown.degraded
        assert breakdown.degraded_datasets == ("ookla",)
        assert 0.0 < breakdown.value <= 1.0
        gauges = REGISTRY.snapshot()["gauges"]
        assert gauges["score.degraded.regions"] == 1.0

    def test_clean_batch_is_not_degraded(self):
        breakdowns = score_regions(
            MeasurementSet(self.build_records()), paper_config()
        )
        assert not breakdowns["metro"].degraded
        assert breakdowns["metro"].degraded_datasets == ()
        assert REGISTRY.snapshot()["gauges"]["score.degraded.regions"] == 0.0

    def test_degraded_score_matches_renormalized_subset(self):
        # Eq. 1 renormalization: scoring without ookla must equal
        # scoring a batch that never had ookla records at all.
        records = self.build_records()
        corrupted = [
            strip_metrics(m) if m.source == "ookla" else m for m in records
        ]
        without = [m for m in records if m.source != "ookla"]
        config = paper_config()
        degraded = score_regions(MeasurementSet(corrupted), config)["metro"]
        subset = score_regions(MeasurementSet(without), config)["metro"]
        assert degraded.value == pytest.approx(subset.value)


class InterruptingSink:
    """Accepts ``allow`` measurements, then dies like an operator Ctrl-C."""

    def __init__(self, inner, allow):
        self.inner = inner
        self.allow = allow

    def accept(self, measurement):
        if self.allow <= 0:
            raise KeyboardInterrupt
        self.allow -= 1
        self.inner.accept(measurement)


class TestCrashResumeParity:
    def test_interrupted_campaign_resumes_bit_identical(self, tmp_path):
        journal_path = tmp_path / "campaign.journal"
        full_schedule = schedule(30)

        # The uninterrupted reference run.
        reference = MemorySink()
        ProbeRunner(PureBackend(), reference).run(full_schedule)

        # Run 1: killed mid-campaign after 11 deliveries.
        sink = MemorySink()
        journal = CampaignJournal(journal_path)
        runner = ProbeRunner(
            PureBackend(), InterruptingSink(sink, 11), journal=journal
        )
        with pytest.raises(KeyboardInterrupt):
            runner.run(full_schedule)
        journal.close()
        assert len(sink) == 11

        # Run 2: same schedule, same journal path, fresh process state.
        journal = CampaignJournal(journal_path)
        report = ProbeRunner(
            PureBackend(), InterruptingSink(sink, 10**9), journal=journal
        ).run(full_schedule)
        journal.close()

        assert report.resumed == 11  # completed work never re-ran
        assert report.succeeded == 30 - 11
        combined = sink_records(sink)
        assert combined == sink_records(reference)  # bit-identical
        timestamps = [m.timestamp for m in combined]
        assert len(timestamps) == len(set(timestamps))  # zero duplicates

    def test_resume_under_chaos_never_duplicates(self, tmp_path):
        journal_path = tmp_path / "campaign.journal"
        full_schedule = schedule(40)
        sink = MemorySink()

        def runner(accepts):
            return ProbeRunner(
                ChaosBackend(
                    PureBackend(),
                    ChaosConfig(seed=5, failure_rate=0.2, burst_length=2),
                ),
                InterruptingSink(sink, accepts),
                retry_policy=RetryPolicy(max_attempts=3, seed=5),
                journal=CampaignJournal(journal_path),
            )

        with pytest.raises(KeyboardInterrupt):
            runner(7).run(full_schedule)
        runner(10**9).run(full_schedule)
        timestamps = [m.timestamp for m in sink_records(sink)]
        assert len(timestamps) == len(set(timestamps))

    def test_deadline_stops_new_work(self):
        clock_value = [0.0]

        def clock():
            clock_value[0] += 0.4  # every clock read advances time
            return clock_value[0]

        policy = RetryPolicy(max_attempts=1, deadline_s=1.0, clock=clock)
        report = ProbeRunner(
            PureBackend(), MemorySink(), retry_policy=policy
        ).run(schedule(50))
        assert report.deadline_expired
        assert report.succeeded < 50
