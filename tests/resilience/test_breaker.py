"""Unit tests for repro.resilience.breaker (state machine + board)."""

import pytest

from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    BreakerOpenError,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def breaker(**kwargs):
    kwargs.setdefault("clock", FakeClock())
    return CircuitBreaker(**kwargs)


class TestConsecutiveTrip:
    def test_starts_closed_and_allows(self):
        guard = breaker()
        assert guard.state == CLOSED
        assert guard.allow()
        assert guard.trips == 0

    def test_trips_on_consecutive_failures(self):
        guard = breaker(failure_threshold=3)
        for _ in range(2):
            guard.record_failure()
        assert guard.state == CLOSED
        guard.record_failure()
        assert guard.state == OPEN
        assert not guard.allow()
        assert guard.trips == 1

    def test_success_resets_the_consecutive_run(self):
        guard = breaker(failure_threshold=3)
        guard.record_failure()
        guard.record_failure()
        guard.record_success()
        guard.record_failure()
        guard.record_failure()
        assert guard.state == CLOSED


class TestRateTrip:
    def test_trips_on_failure_rate_over_window(self):
        guard = breaker(
            failure_threshold=100,  # consecutive trip out of the way
            failure_rate_threshold=0.5,
            window=10,
            min_calls=10,
        )
        # Alternating outcomes: 50% failure rate once 10 calls land.
        for index in range(10):
            if index % 2:
                guard.record_failure()
            else:
                guard.record_success()
        assert guard.state == OPEN

    def test_rate_needs_min_calls(self):
        guard = breaker(
            failure_threshold=100,
            failure_rate_threshold=0.5,
            window=10,
            min_calls=10,
        )
        for _ in range(4):
            guard.record_failure()
            guard.record_success()
        assert guard.state == CLOSED  # 8 calls < min_calls

    def test_rate_threshold_validated(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_rate_threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(failure_rate_threshold=1.5)


class TestRecovery:
    def trip(self, clock, **kwargs):
        kwargs.setdefault("failure_threshold", 1)
        kwargs.setdefault("recovery_s", 30.0)
        guard = CircuitBreaker(clock=clock, **kwargs)
        guard.record_failure()
        assert guard.state == OPEN
        return guard

    def test_half_open_after_cooldown(self):
        clock = FakeClock()
        guard = self.trip(clock)
        assert guard.retry_in_s() == pytest.approx(30.0)
        clock.advance(29.9)
        assert guard.state == OPEN
        clock.advance(0.1)
        assert guard.state == HALF_OPEN
        assert guard.retry_in_s() == 0.0

    def test_half_open_success_closes(self):
        clock = FakeClock()
        guard = self.trip(clock)
        clock.advance(30.0)
        assert guard.allow()
        guard.record_success()
        assert guard.state == CLOSED
        assert guard.allow()

    def test_half_open_failure_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        guard = self.trip(clock)
        clock.advance(30.0)
        assert guard.allow()
        guard.record_failure()
        assert guard.state == OPEN
        assert guard.trips == 2
        clock.advance(29.0)
        assert guard.state == OPEN

    def test_half_open_admits_limited_trials(self):
        clock = FakeClock()
        guard = self.trip(clock, half_open_max=2)
        clock.advance(30.0)
        assert guard.allow()
        assert guard.allow()
        assert not guard.allow()  # third trial blocked


class TestBreakerBoard:
    def test_lazily_creates_one_breaker_per_key(self):
        board = BreakerBoard(failure_threshold=2)
        assert len(board) == 0
        first = board.breaker(("sim", "ndt"))
        assert board.breaker(("sim", "ndt")) is first
        board.breaker(("sim", "ookla"))
        assert len(board) == 2

    def test_check_raises_actionable_error_when_open(self):
        clock = FakeClock()
        board = BreakerBoard(
            failure_threshold=1, recovery_s=30.0, clock=clock
        )
        key = ("sim", "ndt")
        board.check(key)  # closed: no raise
        board.breaker(key).record_failure()
        with pytest.raises(BreakerOpenError) as excinfo:
            board.check(key)
        assert excinfo.value.key == key
        assert excinfo.value.retry_in_s == pytest.approx(30.0)
        message = str(excinfo.value)
        assert "circuit open" in message
        assert "ndt" in message

    def test_open_count_excludes_half_open(self):
        clock = FakeClock()
        board = BreakerBoard(
            failure_threshold=1, recovery_s=30.0, clock=clock
        )
        board.breaker("a").record_failure()
        board.breaker("b").record_failure()
        board.breaker("c").record_success()
        assert board.open_count() == 2
        clock.advance(30.0)
        assert board.open_count() == 0  # both now half-open

    def test_states_normalizes_keys_to_tuples(self):
        board = BreakerBoard(failure_threshold=1)
        board.breaker(("sim", "ndt")).record_failure()
        board.breaker("solo").record_success()
        assert board.states() == {
            ("sim", "ndt"): OPEN,
            ("solo",): CLOSED,
        }
