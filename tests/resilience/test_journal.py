"""Unit tests for repro.resilience.journal (WAL + atomic snapshots)."""

import json

import pytest

from repro.fsutil import atomic_write
from repro.resilience import CampaignJournal, probe_key, window_key
from repro.resilience.journal import SNAPSHOT_SUFFIX, SNAPSHOT_VERSION


@pytest.fixture()
def path(tmp_path):
    return tmp_path / "campaign.journal"


class TestRecording:
    def test_record_and_membership(self, path):
        with CampaignJournal(path) as journal:
            journal.record("a")
            journal.record("b")
            assert "a" in journal
            assert "c" not in journal
            assert len(journal) == 2
            assert journal.completed_keys() == ("a", "b")

    def test_record_is_idempotent(self, path):
        with CampaignJournal(path) as journal:
            journal.record("a")
            journal.record("a")
            assert len(journal) == 1
        assert sum(1 for _ in open(path)) == 1

    def test_records_are_durable_lines(self, path):
        with CampaignJournal(path) as journal:
            journal.record("a", data={"score": 0.5})
            # Flushed before record() returns — visible to a reader now.
            lines = [json.loads(line) for line in open(path)]
        assert lines == [{"key": "a", "data": {"score": 0.5}}]


class TestResume:
    def test_reopen_resumes_completed_set(self, path):
        with CampaignJournal(path) as journal:
            journal.record("a")
            journal.record("b", data=[1, 2])
        with CampaignJournal(path) as journal:
            assert journal.completed_keys() == ("a", "b")
            assert list(journal.replay()) == [("a", None), ("b", [1, 2])]

    def test_torn_final_line_is_ignored(self, path):
        with CampaignJournal(path) as journal:
            journal.record("a")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "b"')  # crash mid-write: no newline
        with CampaignJournal(path) as journal:
            assert journal.completed_keys() == ("a",)

    def test_missing_journal_starts_empty(self, path):
        with CampaignJournal(path) as journal:
            assert len(journal) == 0
            assert journal.state is None


class TestCheckpoint:
    def test_checkpoint_compacts_wal_into_snapshot(self, path):
        with CampaignJournal(path) as journal:
            journal.record("a", data={"x": 1})
            journal.record("b")
            journal.checkpoint({"history": [1, 2]})
            assert list(journal.replay()) == []
        snapshot = json.loads(
            open(str(path) + SNAPSHOT_SUFFIX, encoding="utf-8").read()
        )
        assert snapshot == {
            "snapshot_version": SNAPSHOT_VERSION,
            "keys": ["a", "b"],
            "state": {"history": [1, 2]},
        }
        assert open(path).read() == ""  # WAL truncated

    def test_reopen_after_checkpoint_restores_state(self, path):
        with CampaignJournal(path) as journal:
            journal.record("a")
            journal.checkpoint({"n": 1})
            journal.record("b", data="redo-b")
        with CampaignJournal(path) as journal:
            assert journal.completed_keys() == ("a", "b")
            assert journal.state == {"n": 1}
            # Only the post-snapshot entry needs redo.
            assert list(journal.replay()) == [("b", "redo-b")]

    def test_checkpoint_none_keeps_previous_state(self, path):
        with CampaignJournal(path) as journal:
            journal.checkpoint({"n": 1})
            journal.record("a")
            journal.checkpoint()
            assert journal.state == {"n": 1}

    def test_auto_checkpoint_for_key_only_records(self, path):
        with CampaignJournal(path, snapshot_every=3) as journal:
            for index in range(7):
                journal.record(f"k{index}")
            # 7 records, snapshot_every=3: two auto checkpoints; one
            # entry left in the WAL.
            assert len(list(journal.replay())) == 1
        assert (path.parent / (path.name + SNAPSHOT_SUFFIX)).exists()

    def test_data_records_disable_auto_checkpoint(self, path):
        with CampaignJournal(path, snapshot_every=2) as journal:
            for index in range(6):
                journal.record(f"k{index}", data={"i": index})
            # Redo data must never be compacted under a stale state, so
            # every entry is still replayable.
            assert len(list(journal.replay())) == 6

    def test_snapshot_every_zero_disables_auto_checkpoint(self, path):
        with CampaignJournal(path, snapshot_every=0) as journal:
            for index in range(10):
                journal.record(f"k{index}")
            assert len(list(journal.replay())) == 10

    def test_snapshot_every_validated(self, path):
        with pytest.raises(ValueError):
            CampaignJournal(path, snapshot_every=-1)

    def test_redundant_wal_lines_after_snapshot_replay_harmlessly(
        self, path
    ):
        # A crash between snapshot write and WAL truncation leaves both.
        with CampaignJournal(path) as journal:
            journal.record("a")
            journal.record("b")
        snapshot = {
            "snapshot_version": SNAPSHOT_VERSION,
            "keys": ["a", "b"],
            "state": None,
        }
        atomic_write(
            str(path) + SNAPSHOT_SUFFIX, json.dumps(snapshot) + "\n"
        )
        with CampaignJournal(path) as journal:
            assert journal.completed_keys() == ("a", "b")
            assert len(journal) == 2


class TestKeys:
    def test_probe_key_preserves_float_precision(self):
        key = probe_key("ndt", "metro-fiber", 0.30000000000000004)
        assert key == "probe|ndt|metro-fiber|0.30000000000000004"
        assert probe_key("ndt", "r", 1.0) != probe_key("ndt", "r", 1.5)

    def test_window_key_distinct_per_window(self):
        assert window_key(0.0, 86400.0) == "window|0.0|86400.0"
        assert window_key(0.0, 1.0) != window_key(1.0, 2.0)
