"""Unit tests for repro.resilience.retry (policy, jitter, deadlines)."""

import pytest

from repro.resilience import Deadline, RetryPolicy


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestDeadline:
    def test_unbounded_never_expires(self):
        clock = FakeClock()
        deadline = Deadline(None, clock=clock)
        clock.advance(1e9)
        assert not deadline.expired()
        assert deadline.remaining() is None
        assert deadline.seconds is None

    def test_expires_after_budget(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        assert not deadline.expired()
        assert deadline.remaining() == 5.0
        clock.advance(4.0)
        assert deadline.remaining() == pytest.approx(1.0)
        clock.advance(1.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_remaining_never_negative(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(10.0)
        assert deadline.remaining() == 0.0
        assert deadline.elapsed() == pytest.approx(10.0)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)


class TestRetryPolicyValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_rejects_negative_base(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_s=-0.1)

    def test_rejects_cap_below_base(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_s=2.0, cap_s=1.0)

    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0.0)


class TestDelays:
    def test_default_policy_never_sleeps(self):
        # base_s=0 is the historical runner behavior: retry immediately.
        delays = list(RetryPolicy(max_attempts=5).delays())
        assert delays == [0.0] * 4

    def test_yields_max_attempts_minus_one(self):
        policy = RetryPolicy(max_attempts=4, base_s=0.1, seed=3)
        assert len(list(policy.delays())) == 3
        assert list(RetryPolicy(max_attempts=1).delays()) == []

    def test_same_seed_same_delays(self):
        first = list(RetryPolicy(max_attempts=6, base_s=0.1, seed=7).delays())
        second = list(RetryPolicy(max_attempts=6, base_s=0.1, seed=7).delays())
        assert first == second

    def test_different_seeds_diverge(self):
        first = list(RetryPolicy(max_attempts=6, base_s=0.1, seed=1).delays())
        second = list(RetryPolicy(max_attempts=6, base_s=0.1, seed=2).delays())
        assert first != second

    def test_delays_bounded_by_base_and_cap(self):
        policy = RetryPolicy(
            max_attempts=50, base_s=0.5, cap_s=2.0, seed=11
        )
        for delay in policy.delays():
            assert 0.5 <= delay <= 2.0

    def test_decorrelated_jitter_envelope(self):
        # Each delay is drawn from [base, 3 * previous] (capped), with
        # "previous" starting at base.
        policy = RetryPolicy(
            max_attempts=10, base_s=1.0, cap_s=1000.0, seed=5
        )
        previous = 1.0
        for delay in policy.delays():
            assert 1.0 <= delay <= 3 * previous
            previous = delay


class TestBackoff:
    def test_backoff_sleeps_positive_delays_only(self):
        slept = []
        policy = RetryPolicy(base_s=0.1, sleep=slept.append)
        policy.backoff(0.25)
        policy.backoff(0.0)
        assert slept == [0.25]

    def test_deadline_uses_policy_clock(self):
        clock = FakeClock()
        policy = RetryPolicy(deadline_s=3.0, clock=clock)
        deadline = policy.deadline()
        clock.advance(3.0)
        assert deadline.expired()

    def test_deadline_unbounded_by_default(self):
        assert RetryPolicy().deadline().seconds is None
