"""Run the docstring examples scattered through the public modules.

Doctests double as documentation smoke tests: if an example in a
docstring drifts from the code, these fail.
"""

import doctest

import pytest

import repro.analysis.tables
import repro.core.quality
import repro.measurements.adapters
import repro.netsim.rng

MODULES = [
    repro.analysis.tables,
    repro.core.quality,
    repro.measurements.adapters,
    repro.netsim.rng,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctests"
    assert results.failed == 0
