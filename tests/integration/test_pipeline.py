"""Integration tests: the full simulate → collect → score → report path."""

import pytest

from repro.core import IQBFramework, paper_config, score_region
from repro.core.scoring import flat_score
from repro.measurements import aggregate_measurements, read_jsonl, write_jsonl
from repro.netsim import CampaignConfig, REGION_PRESETS, region_preset, simulate_region
from repro.probing import (
    DiurnalSchedule,
    FanOutSink,
    MemorySink,
    ProbeRunner,
    SimulatedBackend,
    StreamingQuantileSink,
)

CAMPAIGN = CampaignConfig(subscribers=30, tests_per_client=150)


class TestSimulateScorePipeline:
    @pytest.fixture(scope="class")
    def scores(self):
        framework = IQBFramework()
        out = {}
        for name in REGION_PRESETS:
            records = simulate_region(region_preset(name), seed=21, config=CAMPAIGN)
            out[name] = framework.score_measurements(records, name)
        return out

    def test_quality_gradient_across_presets(self, scores):
        # The central sanity check: IQB resolves the designed-in quality
        # spectrum of the region presets.
        assert scores["metro-fiber"].value > scores["suburban-cable"].value
        assert scores["suburban-cable"].value > scores["rural-dsl"].value
        assert scores["metro-fiber"].value > scores["satellite-remote"].value

    def test_fiber_earns_a_decent_grade(self, scores):
        assert scores["metro-fiber"].grade in ("A", "B")

    def test_satellite_fails_interactive_use_cases(self, scores):
        from repro.core import UseCase

        breakdown = scores["satellite-remote"]
        conferencing = breakdown.use_case(UseCase.VIDEO_CONFERENCING)
        assert conferencing.value < 0.3

    def test_eq5_expansion_on_real_campaigns(self, scores):
        for breakdown in scores.values():
            assert flat_score(breakdown) == pytest.approx(breakdown.value)


class TestRoundTripThroughDisk:
    def test_jsonl_round_trip_preserves_scores(self, tmp_path):
        records = simulate_region(region_preset("mixed-urban"), seed=5, config=CAMPAIGN)
        framework = IQBFramework()
        direct = framework.score_measurements(records, "mixed-urban")
        path = tmp_path / "campaign.jsonl"
        write_jsonl(records, path)
        loaded = read_jsonl(path)
        reloaded = framework.score_measurements(loaded, "mixed-urban")
        assert reloaded.value == pytest.approx(direct.value)


class TestProbingToScore:
    def test_probing_framework_matches_streaming_sink(self):
        regions = ("metro-fiber", "rural-dsl")
        backend = SimulatedBackend(
            profiles=[region_preset(r) for r in regions],
            seed=3,
            subscribers=30,
            failure_rate=0.05,
        )
        memory = MemorySink()
        streaming = StreamingQuantileSink()
        runner = ProbeRunner(backend, FanOutSink(memory, streaming), max_attempts=4)
        schedule = DiurnalSchedule(
            regions=regions,
            clients=backend.clients(),
            tests_per_pair=200,
            seed=3,
        )
        report = runner.run(schedule)
        assert report.success_rate > 0.95  # retries recover most transients

        config = paper_config()
        records = memory.as_set()
        for region in regions:
            exact = score_region(
                records.for_region(region).group_by_source(), config
            ).value
            streamed = score_region(streaming.sources_for(region), config).value
            assert streamed == pytest.approx(exact, abs=0.15)


class TestAggregatePath:
    def test_mixed_raw_and_aggregate_scores_close(self):
        records = simulate_region(
            region_preset("suburban-cable"), seed=8, config=CAMPAIGN
        )
        config = paper_config()
        raw_sources = records.group_by_source()
        published = aggregate_measurements(records, "suburban-cable", "ookla")
        mixed = dict(raw_sources)
        mixed["ookla"] = published
        raw_score = score_region(raw_sources, config).value
        mixed_score = score_region(mixed, config).value
        # The p95 knot is published exactly: scores must agree exactly
        # under literal semantics.
        assert mixed_score == pytest.approx(raw_score)
