"""Integration tests for the analysis CLI commands (trend/peak/equity/compare)."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def campaign_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-analysis") / "campaign.jsonl"
    code = main(
        [
            "simulate",
            str(path),
            "--regions",
            "mixed-urban",
            "rural-dsl",
            "--tests",
            "200",
            "--subscribers",
            "50",
            "--seed",
            "23",
        ]
    )
    assert code == 0
    return path


class TestTrend:
    def test_daily_series(self, campaign_file, capsys):
        assert main(["trend", str(campaign_file), "mixed-urban"]) == 0
        out = capsys.readouterr().out
        assert "Window start" in out
        assert "Trend:" in out
        assert "IQB/day" in out

    def test_custom_window(self, campaign_file, capsys):
        assert main(
            ["trend", str(campaign_file), "mixed-urban", "--window-days", "3.5"]
        ) == 0
        out = capsys.readouterr().out
        # 7-day campaign / 3.5-day windows = 2-3 rows + header + trend.
        assert out.count("d ") >= 2

    def test_sparse_data_reports_na(self, campaign_file, capsys):
        assert main(
            ["trend", str(campaign_file), "mixed-urban", "--window-days", "0.01"]
        ) == 0
        assert "n/a" in capsys.readouterr().out


class TestPeak:
    def test_contrast_printed(self, campaign_file, capsys):
        assert main(["peak", str(campaign_file), "mixed-urban"]) == 0
        out = capsys.readouterr().out
        assert "Peak (18-23h)" in out
        assert "Off-peak" in out
        assert "Degradation" in out


class TestEquity:
    def test_by_isp_default(self, campaign_file, capsys):
        assert main(["equity", str(campaign_file), "mixed-urban"]) == 0
        out = capsys.readouterr().out
        assert "ISP" in out
        assert "UrbanFiber" in out
        assert "Equity gap" in out

    def test_by_tech(self, campaign_file, capsys):
        assert main(
            ["equity", str(campaign_file), "mixed-urban", "--by", "tech"]
        ) == 0
        out = capsys.readouterr().out
        assert "TECH" in out
        assert "fiber" in out

    def test_rejects_unknown_dimension(self, campaign_file):
        with pytest.raises(SystemExit):
            main(["equity", str(campaign_file), "mixed-urban", "--by", "age"])


class TestLabel:
    def test_scorecard_rendered(self, campaign_file, capsys):
        assert main(["label", str(campaign_file), "mixed-urban"]) == 0
        out = capsys.readouterr().out
        assert "INTERNET QUALITY BAROMETER" in out
        assert "mixed-urban" in out
        assert "Gaming" in out
        assert "tests from:" in out


class TestAdaptiveCommand:
    def test_comparison_table_printed(self, capsys):
        assert main(
            [
                "adaptive",
                "--regions",
                "metro-fiber",
                "rural-dsl",
                "--budget",
                "200",
                "--pilot",
                "25",
                "--subscribers",
                "20",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Adaptive tests" in out
        assert "Worst-case CI" in out
        assert "metro-fiber" in out


class TestTrendSparkline:
    def test_series_line_printed(self, campaign_file, capsys):
        assert main(["trend", str(campaign_file), "mixed-urban"]) == 0
        out = capsys.readouterr().out
        assert "Series: " in out
        assert "(scaled 0..1)" in out


class TestMonitorCommand:
    def test_quiet_campaign_reports_no_alerts(self, campaign_file, capsys):
        assert main(["monitor", str(campaign_file)]) == 0
        out = capsys.readouterr().out
        assert "0 alert(s)" in out

    def test_verbose_prints_windows(self, campaign_file, capsys):
        assert main(["monitor", str(campaign_file), "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "window +0.0d" in out
        assert "mixed-urban=" in out

    def test_incident_file_raises_alert(self, tmp_path, capsys):
        from repro.measurements.io import write_jsonl
        from repro.netsim import region_preset
        from repro.netsim.evolution import (
            EvolutionStage,
            simulate_evolution,
            with_incident,
        )

        profile = region_preset("suburban-cable")
        stages = [
            EvolutionStage(profile, days=4.0),
            EvolutionStage(with_incident(profile, severity=1.2), days=2.0),
        ]
        records = simulate_evolution(
            stages, seed=37, tests_per_client_per_stage=200, subscribers=50
        )
        path = tmp_path / "incident.jsonl"
        write_jsonl(records, path)
        assert main(["monitor", str(path), "--min-drop", "0.08"]) == 0
        out = capsys.readouterr().out
        assert "ALERT suburban-cable" in out

    def test_empty_file_handled(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["monitor", str(path)]) == 0
        assert "no measurements" in capsys.readouterr().out


class TestCompare:
    def test_attribution_printed(self, campaign_file, capsys):
        assert main(
            ["compare", str(campaign_file), "rural-dsl", "mixed-urban"]
        ) == 0
        out = capsys.readouterr().out
        assert "rural-dsl:" in out
        assert "mixed-urban:" in out
        assert "Score difference" in out
        # The gap must be explained by named cells.
        assert "/" in out

    def test_top_limits_movers(self, campaign_file, capsys):
        assert main(
            [
                "compare",
                str(campaign_file),
                "rural-dsl",
                "mixed-urban",
                "--top",
                "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        mover_lines = [l for l in out.splitlines() if l.startswith("  +")
                       or l.startswith("  -")]
        assert len(mover_lines) <= 2
