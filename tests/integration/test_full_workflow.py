"""Integration test: the complete operator workflow, end to end.

Exercises the composition the national_barometer example demonstrates:
simulate → lint → calibrate → score → archive → national roll-up →
publication → scorecards → period-over-period attribution — asserting
the cross-module contracts rather than any single module's behaviour.
"""

import pytest

from repro.analysis.history import ScoreArchive
from repro.analysis.national import national_score
from repro.analysis.publish import build_publication
from repro.analysis.scorecard import scorecard_from_breakdown
from repro.core import paper_config, score_region
from repro.core.lint import lint_config
from repro.measurements.calibration import estimate_biases
from repro.netsim import CampaignConfig, region_preset, simulate_regions

REGIONS = ("metro-fiber", "suburban-cable", "rural-dsl")
POPULATIONS = {"metro-fiber": 3e6, "suburban-cable": 2e6, "rural-dsl": 1e6}


@pytest.fixture(scope="module")
def periods():
    """Two reporting periods of measurements, the second slightly shifted."""
    campaign = CampaignConfig(subscribers=40, tests_per_client=150)
    profiles = [region_preset(name) for name in REGIONS]
    return {
        "2026-05": simulate_regions(profiles, seed=71, config=campaign),
        "2026-06": simulate_regions(profiles, seed=72, config=campaign),
    }


class TestOperatorWorkflow:
    def test_full_period_cycle(self, periods, tmp_path, config):
        archive = ScoreArchive(tmp_path / "archive.jsonl")
        publications = {}
        for period, records in sorted(periods.items()):
            # 1. lint: the paper config matches the simulated datasets.
            assert lint_config(config, records) == []
            # 2. calibrate on the period's own data.
            model = estimate_biases(records)
            # 3. score every region from calibrated sources; archive.
            scores = {}
            for region in records.regions():
                sources = model.calibrate(
                    records.for_region(region).group_by_source()
                )
                breakdown = score_region(sources, config)
                archive.append(period, region, breakdown)
                scores[region] = breakdown.value
            # 4. national roll-up is population-bounded by its regions.
            national = national_score(scores, POPULATIONS)
            assert min(scores.values()) <= national.value <= max(
                scores.values()
            )
            # 5. the publication contains every region and the headline.
            publications[period] = build_publication(
                records, config, populations=POPULATIONS
            )
            for region in REGIONS:
                assert f"## {region}" in publications[period]

        # 6. cross-period: archive answers what changed, exactly.
        assert archive.periods() == ("2026-05", "2026-06")
        for region in REGIONS:
            attribution = archive.compare(region, "2026-05", "2026-06")
            assert attribution.check() == pytest.approx(0.0, abs=1e-12)

    def test_scorecards_consistent_with_archive(self, periods, tmp_path, config):
        records = periods["2026-05"]
        region = "suburban-cable"
        breakdown = score_region(
            records.for_region(region).group_by_source(), config
        )
        card = scorecard_from_breakdown(breakdown, region=region)
        assert card.score == pytest.approx(breakdown.value)
        assert card.grade == breakdown.grade
        # The label's use-case grades agree with the breakdown's values.
        for line in card.lines:
            assert line.score == pytest.approx(
                breakdown.use_case(line.use_case).value
            )

    def test_calibration_is_period_stable(self, periods):
        # The methodology biases are properties of the clients, not of
        # the period: two independent periods estimate similar factors.
        from repro.core.metrics import Metric

        model_a = estimate_biases(periods["2026-05"])
        model_b = estimate_biases(periods["2026-06"])
        for dataset in ("ndt", "cloudflare", "ookla"):
            assert model_a.factor(dataset, Metric.DOWNLOAD) == pytest.approx(
                model_b.factor(dataset, Metric.DOWNLOAD), rel=0.25
            )
