"""Integration tests for `iqb health` and `monitor --slo-rules`.

The subcommand replays a measurement file through the sketch-backed
monitor with a HealthMonitor installed, so these tests cover the whole
wire: arrival hooks -> window closes -> burn-rate evaluation -> table /
JSON / manifest surfaces and exit codes.
"""

import json

import pytest

from repro.cli import main
from repro.obs.manifest import RunManifest


@pytest.fixture(scope="module")
def campaign_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("health") / "campaign.jsonl"
    code = main(
        [
            "simulate",
            str(path),
            "--regions",
            "metro-fiber",
            "rural-dsl",
            "--tests",
            "40",
            "--subscribers",
            "20",
            "--seed",
            "7",
        ]
    )
    assert code == 0
    return path


@pytest.fixture()
def paging_rules(tmp_path):
    # A 1s freshness bound against day-wide windows: every evaluation
    # tick is bad, so the rule pages by the end of any replay.
    path = tmp_path / "rules.json"
    path.write_text(
        json.dumps(
            [
                {
                    "name": "fresh-tight",
                    "signal": "freshness",
                    "target": 0.9,
                    "threshold_s": 1.0,
                }
            ]
        )
    )
    return path


class TestHealthSubcommand:
    def test_table_lists_default_rules_per_dataset(
        self, campaign_file, capsys
    ):
        code = main(["health", str(campaign_file)])
        out = capsys.readouterr().out
        assert code == 0  # warn at worst on a healthy simulation
        for column in ("Rule", "Signal", "State", "Burn (fast)"):
            assert column in out
        # One freshness rule per dataset present in the file, plus the
        # pipeline-level rules.
        for rule in (
            "freshness-ndt",
            "freshness-ookla",
            "freshness-cloudflare",
            "completeness",
            "ingest-errors",
            "scoring-latency",
        ):
            assert rule in out
        assert "health: " in out

    def test_json_report_is_deterministic(self, campaign_file, capsys):
        assert main(["health", str(campaign_file), "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["health", str(campaign_file), "--json"]) == 0
        second = capsys.readouterr().out
        # Data-time evaluation: same file, byte-identical report.
        assert first == second
        report = json.loads(first)
        assert report["status"] in ("ok", "warn", "page")
        names = [rule["name"] for rule in report["rules"]]
        assert names == sorted(names)
        quality = report["quality"]
        assert quality["freshness_s"]["metro-fiber"]["ndt"] > 0.0
        assert 0.0 <= quality["completeness"]["rural-dsl"]["ndt"] <= 1.0

    def test_page_sets_exit_code_one(
        self, campaign_file, paging_rules, capsys
    ):
        code = main(
            [
                "health",
                str(campaign_file),
                "--rules",
                str(paging_rules),
                "--json",
            ]
        )
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == "page"
        (rule,) = report["rules"]
        assert rule["name"] == "fresh-tight"
        assert rule["state"] == "page"

    def test_invalid_rules_file_is_a_usage_error(
        self, campaign_file, tmp_path, capsys
    ):
        path = tmp_path / "rules.json"
        document = {
            "name": "typo",
            "signal": "freshness",
            "thresold_s": 1.0,
        }
        path.write_text(json.dumps([document]))
        code = main(
            ["health", str(campaign_file), "--rules", str(path)]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "iqb: error:" in err
        assert "thresold_s" in err

    def test_manifest_carries_the_health_report(
        self, campaign_file, tmp_path, capsys
    ):
        manifest_path = tmp_path / "health.manifest.json"
        code = main(
            [
                "--manifest-out",
                str(manifest_path),
                "health",
                str(campaign_file),
                "--json",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        manifest = RunManifest.load(manifest_path)
        assert manifest.health is not None
        assert manifest.health["status"] == report["status"]
        assert manifest.health["rules"] == report["rules"]

    def test_watch_prints_one_line_per_window(
        self, campaign_file, capsys
    ):
        code = main(
            [
                "health",
                str(campaign_file),
                "--watch",
                "--cycles",
                "2",
                "--interval",
                "0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "window +0.0d:" in out
        assert "window +1.0d:" in out
        assert "window +2.0d:" not in out  # --cycles capped the replay
        assert "health: " in out  # the final table still prints

    def test_empty_input_is_a_clean_noop(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["health", str(empty)]) == 0
        assert "no measurements" in capsys.readouterr().out


class TestMonitorSLORules:
    def test_monitor_reports_health_and_manifest(
        self, campaign_file, paging_rules, tmp_path, capsys
    ):
        manifest_path = tmp_path / "monitor.manifest.json"
        code = main(
            [
                "--manifest-out",
                str(manifest_path),
                "monitor",
                str(campaign_file),
                "--slo-rules",
                str(paging_rules),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0  # monitor reports; only `health` gates exit
        assert "health: page" in out
        manifest = RunManifest.load(manifest_path)
        assert manifest.health["status"] == "page"

    def test_monitor_without_flag_records_no_health(
        self, campaign_file, tmp_path, capsys
    ):
        manifest_path = tmp_path / "plain.manifest.json"
        code = main(
            [
                "--manifest-out",
                str(manifest_path),
                "monitor",
                str(campaign_file),
            ]
        )
        assert code == 0
        assert "health:" not in capsys.readouterr().out
        assert RunManifest.load(manifest_path).health is None
