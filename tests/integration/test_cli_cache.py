"""Integration tests for the ``iqb cache`` subcommands and the
``--from-cache`` scoring path — the full operator loop: build tiles,
verify, push to a remote, pull into a fresh cache, score from it, and
recover loudly when artifacts are damaged."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def campaign_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-cache") / "campaign.jsonl"
    code = main(
        [
            "simulate",
            str(path),
            "--regions",
            "metro-fiber",
            "rural-dsl",
            "--tests",
            "60",
            "--subscribers",
            "20",
            "--seed",
            "17",
        ]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def built_cache(campaign_file, tmp_path_factory):
    root = tmp_path_factory.mktemp("cli-cache-store") / "cache"
    assert (
        main(
            [
                "cache",
                "build",
                str(campaign_file),
                "--cache",
                str(root),
            ]
        )
        == 0
    )
    return root


def corrupt_one_artifact(cache_root):
    """Damage a single published tile; return its v1-relative path."""
    victim = sorted((cache_root / "v1").rglob("*.json"))[0]
    victim.write_bytes(victim.read_bytes()[:-2] + b"!\n")
    return victim.relative_to(cache_root).as_posix()


class TestCacheBuild:
    def test_json_report_shape(self, campaign_file, tmp_path, capsys):
        root = tmp_path / "cache"
        assert (
            main(
                [
                    "cache",
                    "build",
                    str(campaign_file),
                    "--cache",
                    str(root),
                    "--json",
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert len(report["built"]) >= 1
        assert report["tiles"] >= 1
        assert len(report["manifest_sha256"]) == 64
        assert report["periods"]

    def test_rebuild_is_idempotent(self, campaign_file, built_cache, capsys):
        capsys.readouterr()  # drain the fixture's build output
        manifest = json.loads(
            (built_cache / "MANIFEST.json").read_text()
        )
        assert (
            main(
                [
                    "cache",
                    "build",
                    str(campaign_file),
                    "--cache",
                    str(built_cache),
                    "--json",
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["built"] == []  # every tile already published
        assert report["manifest_sha256"] == manifest["manifest_sha256"]


class TestCacheVerify:
    def test_clean_cache_verifies(self, built_cache, capsys):
        assert main(["cache", "verify", "--cache", str(built_cache)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_corrupt_artifact_exits_one_and_is_named(
        self, campaign_file, tmp_path, capsys
    ):
        root = tmp_path / "cache"
        assert (
            main(
                ["cache", "build", str(campaign_file), "--cache", str(root)]
            )
            == 0
        )
        damaged = corrupt_one_artifact(root)
        assert main(["cache", "verify", "--cache", str(root)]) == 1
        out = capsys.readouterr().out
        assert "corrupt" in out
        assert damaged in out
        assert "FAILED" in out


class TestCachePushPull:
    def test_round_trip_and_from_cache_parity(
        self, campaign_file, built_cache, tmp_path, capsys
    ):
        remote = tmp_path / "remote"
        assert (
            main(
                [
                    "cache",
                    "push",
                    str(remote),
                    "--cache",
                    str(built_cache),
                ]
            )
            == 0
        )
        capsys.readouterr()

        clone = tmp_path / "clone"
        assert (
            main(
                ["cache", "pull", str(remote), "--cache", str(clone), "--json"]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["fetched"]
        assert not report["quarantined"]
        assert main(["cache", "verify", "--cache", str(clone)]) == 0
        capsys.readouterr()

        # Scoring the pulled cache matches scoring the raw records
        # through the same sketch pipeline, byte for byte.
        assert main(["--quantiles", "sketch", "score", str(campaign_file)]) == 0
        direct = capsys.readouterr().out
        assert main(["score", "--from-cache", str(clone)]) == 0
        warmed = capsys.readouterr().out
        assert warmed == direct

    def test_pull_self_heals_local_damage(
        self, campaign_file, built_cache, tmp_path, capsys
    ):
        remote = tmp_path / "remote"
        assert (
            main(
                ["cache", "push", str(remote), "--cache", str(built_cache)]
            )
            == 0
        )
        clone = tmp_path / "clone"
        assert main(["cache", "pull", str(remote), "--cache", str(clone)]) == 0
        corrupt_one_artifact(clone)
        assert main(["score", "--from-cache", str(clone)]) == 1
        capsys.readouterr()
        assert (
            main(["cache", "pull", str(remote), "--cache", str(clone), "--json"])
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert len(report["fetched"]) == 1
        assert main(["cache", "verify", "--cache", str(clone)]) == 0
        assert main(["score", "--from-cache", str(clone)]) == 0

    def test_pull_from_missing_remote_exits_one(self, tmp_path, capsys):
        assert (
            main(
                [
                    "cache",
                    "pull",
                    str(tmp_path / "nowhere"),
                    "--cache",
                    str(tmp_path / "clone"),
                ]
            )
            == 1
        )
        assert "iqb cache: error:" in capsys.readouterr().err


class TestCacheGC:
    def test_gc_reports_and_removes_strays(
        self, campaign_file, tmp_path, capsys
    ):
        root = tmp_path / "cache"
        assert (
            main(
                ["cache", "build", str(campaign_file), "--cache", str(root)]
            )
            == 0
        )
        capsys.readouterr()
        stray = root / "v1" / "000000" / ("f" * 64 + ".json")
        stray.parent.mkdir(parents=True, exist_ok=True)
        stray.write_bytes(b"orphan\n")
        assert main(["cache", "gc", "--cache", str(root), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["removed"]
        assert not stray.exists()
        assert main(["cache", "verify", "--cache", str(root)]) == 0


class TestGuards:
    def test_score_requires_input_or_cache(self, capsys):
        assert main(["score"]) == 2
        assert "error" in capsys.readouterr().err

    def test_score_rejects_input_and_cache_together(
        self, campaign_file, built_cache, capsys
    ):
        assert (
            main(
                [
                    "score",
                    str(campaign_file),
                    "--from-cache",
                    str(built_cache),
                ]
            )
            == 2
        )
        assert "error" in capsys.readouterr().err

    def test_from_cache_rejects_exact_quantiles(self, built_cache, capsys):
        assert (
            main(
                [
                    "--quantiles",
                    "exact",
                    "score",
                    "--from-cache",
                    str(built_cache),
                ]
            )
            == 2
        )
        assert "error" in capsys.readouterr().err

    def test_serve_rejects_follow_with_cache(self, built_cache, capsys):
        assert (
            main(
                [
                    "serve",
                    "--from-cache",
                    str(built_cache),
                    "--follow",
                    "1",
                ]
            )
            == 2
        )
        assert "error" in capsys.readouterr().err

    def test_empty_cache_scores_loudly(self, tmp_path, capsys):
        assert main(["score", "--from-cache", str(tmp_path / "empty")]) == 1
        assert "iqb: error:" in capsys.readouterr().err
