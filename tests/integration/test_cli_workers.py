"""Integration tests for the global ``--workers`` flag.

The contract: any worker count produces byte-identical command output,
and worker-side telemetry (quantile-cache counters, ingest counters)
merges back so ``iqb metrics`` reports a truthful pipeline picture.
"""

import json

import pytest

from repro.cli import main
from repro.parallel import fork_available

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform has no fork start method"
)


@pytest.fixture(scope="module")
def campaign_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("workers") / "campaign.jsonl"
    code = main(
        [
            "simulate",
            str(path),
            "--tests",
            "40",
            "--subscribers",
            "20",
            "--seed",
            "13",
        ]
    )
    assert code == 0
    return path


class TestSimulate:
    @needs_fork
    def test_parallel_simulation_writes_identical_file(
        self, campaign_file, tmp_path
    ):
        parallel_path = tmp_path / "parallel.jsonl"
        code = main(
            [
                "--workers",
                "4",
                "simulate",
                str(parallel_path),
                "--tests",
                "40",
                "--subscribers",
                "20",
                "--seed",
                "13",
            ]
        )
        assert code == 0
        assert parallel_path.read_bytes() == campaign_file.read_bytes()


class TestScore:
    @needs_fork
    @pytest.mark.parametrize("workers", ["2", "4"])
    def test_json_output_identical_to_serial(
        self, campaign_file, capsys, workers
    ):
        assert main(["score", str(campaign_file), "--json"]) == 0
        serial = capsys.readouterr().out
        assert (
            main(
                ["--workers", workers, "score", str(campaign_file), "--json"]
            )
            == 0
        )
        parallel = capsys.readouterr().out
        assert parallel == serial
        assert json.loads(parallel)  # and it is real JSON

    @needs_fork
    def test_table_output_identical_to_serial(self, campaign_file, capsys):
        assert main(["score", str(campaign_file)]) == 0
        serial = capsys.readouterr().out
        assert main(["--workers", "4", "score", str(campaign_file)]) == 0
        assert capsys.readouterr().out == serial

    def test_workers_one_is_the_serial_path(self, campaign_file, capsys):
        assert main(["score", str(campaign_file)]) == 0
        serial = capsys.readouterr().out
        assert main(["--workers", "1", "score", str(campaign_file)]) == 0
        assert capsys.readouterr().out == serial


class TestPublish:
    @needs_fork
    def test_publication_identical_to_serial(self, campaign_file, capsys):
        assert main(["publish", str(campaign_file)]) == 0
        serial = capsys.readouterr().out
        assert main(["--workers", "3", "publish", str(campaign_file)]) == 0
        assert capsys.readouterr().out == serial


@needs_fork
class TestMetricsMerge:
    def test_metrics_reports_merged_worker_counters(
        self, campaign_file, capsys
    ):
        """After a --workers run, the snapshot still shows the scoring
        hot path's cache activity — shipped home from the workers."""
        code = main(
            ["--workers", "4", "metrics", str(campaign_file), "--probes", "5"]
        )
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        counters = snapshot["counters"]
        assert counters["quantile_cache.columnar.hits"] > 0
        assert counters["quantile_cache.columnar.sorts"] > 0
        # The parallel ingest's per-line counters merged too.
        assert counters["ingest.jsonl.lines"] == sum(
            1 for _ in open(campaign_file)
        )
        assert counters["parallel.shards.completed"] > 0

    def test_prometheus_rendering_includes_merged_counters(
        self, campaign_file, capsys
    ):
        code = main(
            [
                "--workers",
                "4",
                "metrics",
                str(campaign_file),
                "--probes",
                "5",
                "--format",
                "prom",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "quantile_cache_columnar_hits" in out


class TestErrorPaths:
    def test_missing_input_exits_2(self, tmp_path, capsys):
        code = main(
            ["--workers", "4", "score", str(tmp_path / "missing.jsonl")]
        )
        assert code == 2
        assert "iqb: error:" in capsys.readouterr().err

    @needs_fork
    def test_malformed_input_exits_2(self, campaign_file, tmp_path, capsys):
        dirty = tmp_path / "dirty.jsonl"
        lines = campaign_file.read_text().splitlines()
        lines[len(lines) // 2] = "{broken"
        dirty.write_text("\n".join(lines) + "\n")
        code = main(["--workers", "4", "score", str(dirty)])
        assert code == 2
        err = capsys.readouterr().err
        assert "iqb: error:" in err
        assert "Traceback" not in err
