"""Integration test: sharded collection with mergeable digest sinks.

Models the distributed reality of real measurement fleets: several
collector shards each see a disjoint slice of the probe stream, build
bounded-memory t-digest state, and a coordinator merges the shards and
scores regions — with no raw measurement ever centralized.
"""

import pytest

from repro.core import paper_config, score_region
from repro.core.metrics import Metric
from repro.netsim import CampaignConfig, region_preset, simulate_region
from repro.probing.sinks import TDigestSink


@pytest.fixture(scope="module")
def campaign():
    config = CampaignConfig(subscribers=50, tests_per_client=400)
    return simulate_region(region_preset("suburban-cable"), seed=47, config=config)


class TestShardedCollection:
    def shard(self, records, shards=4):
        sinks = [TDigestSink() for _ in range(shards)]
        for i, record in enumerate(records):
            sinks[i % shards].accept(record)
        return sinks

    def test_merged_shards_match_exact_scoring(self, campaign, config):
        sinks = self.shard(campaign)
        merged = sinks[0]
        for sink in sinks[1:]:
            merged = merged.merge(sink)
        assert merged.accepted == len(campaign)

        exact = score_region(campaign.group_by_source(), config).value
        sketched = score_region(
            merged.sources_for("suburban-cable"), config
        ).value
        # Binary thresholding amplifies tiny quantile errors only when
        # an aggregate sits exactly on a bar; allow one verdict of slack.
        assert sketched == pytest.approx(exact, abs=0.12)

    def test_merged_quantiles_close_to_exact(self, campaign):
        sinks = self.shard(campaign)
        merged = sinks[0]
        for sink in sinks[1:]:
            merged = merged.merge(sink)
        view = merged.sources_for("suburban-cable")["ndt"]
        exact_source = campaign.for_source("ndt")
        for metric in (Metric.DOWNLOAD, Metric.LATENCY):
            exact = exact_source.quantile(metric, 95.0)
            sketched = view.quantile(metric, 95.0)
            assert sketched == pytest.approx(exact, rel=0.05)

    def test_shards_unchanged_by_merge(self, campaign):
        sinks = self.shard(campaign, shards=2)
        before = sinks[0].accepted
        sinks[0].merge(sinks[1])
        assert sinks[0].accepted == before

    def test_single_shard_equals_unsharded(self, campaign, config):
        whole = TDigestSink()
        for record in campaign:
            whole.accept(record)
        sharded = self.shard(campaign, shards=1)[0]
        whole_score = score_region(
            whole.sources_for("suburban-cable"), config
        ).value
        shard_score = score_region(
            sharded.sources_for("suburban-cable"), config
        ).value
        assert whole_score == pytest.approx(shard_score)

    def test_missing_metric_stays_missing_through_merge(self, campaign):
        sinks = self.shard(campaign)
        merged = sinks[0].merge(sinks[1])
        ookla = merged.sources_for("suburban-cable")["ookla"]
        assert ookla.quantile(Metric.PACKET_LOSS, 95.0) is None
        assert ookla.sample_count(Metric.PACKET_LOSS) == 0
