"""Subprocess tests for the CLI error paths and the metrics snapshot.

These run ``python -m repro`` as a real child process: the contract
under test is the *process* one — exit status, one-line stderr, no
traceback — which in-process ``main()`` calls cannot fully pin down.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

GOOD_LINE = (
    '{"region": "r1", "source": "ndt", "timestamp": 1.0, '
    '"download_mbps": 50.0, "upload_mbps": 10.0, "latency_ms": 20.0, '
    '"packet_loss": 0.01}'
)


def run_cli(*args):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=120,
    )


@pytest.fixture()
def dirty_file(tmp_path):
    path = tmp_path / "dirty.jsonl"
    path.write_text(GOOD_LINE + "\n{broken\n" + GOOD_LINE + "\n")
    return path


class TestMissingInput:
    def test_exit_2_one_line_no_traceback(self, tmp_path):
        result = run_cli("score", str(tmp_path / "nonexistent.jsonl"))
        assert result.returncode == 2
        assert result.stderr.startswith("iqb: error:")
        assert len(result.stderr.strip().splitlines()) == 1
        assert "Traceback" not in result.stderr

    def test_other_readers_share_the_handler(self, tmp_path):
        result = run_cli("report", str(tmp_path / "gone.jsonl"), "r1")
        assert result.returncode == 2
        assert "iqb: error:" in result.stderr
        assert "Traceback" not in result.stderr


class TestMalformedInput:
    def test_raise_mode_exits_2_with_location(self, dirty_file):
        result = run_cli("score", str(dirty_file))
        assert result.returncode == 2
        assert result.stderr.startswith("iqb: error:")
        assert "dirty.jsonl:2" in result.stderr
        assert "Traceback" not in result.stderr

    def test_skip_mode_succeeds_and_warns_on_stderr(self, dirty_file):
        result = run_cli("score", str(dirty_file), "--on-error", "skip")
        assert result.returncode == 0
        assert "r1" in result.stdout
        assert "skipped 1 malformed line(s)" in result.stderr

    def test_skip_warning_in_jsonl_mode_is_parseable(self, dirty_file):
        result = run_cli(
            "--log-json", "score", str(dirty_file), "--on-error", "skip"
        )
        assert result.returncode == 0
        events = [
            json.loads(line)
            for line in result.stderr.splitlines()
            if line.startswith("{")
        ]
        skip_events = [
            e for e in events if "skipped" in e["event"]
        ]
        assert skip_events
        assert skip_events[0]["level"] == "warning"
        assert skip_events[0]["ctx"] == {"read": 2, "skipped": 1}


class TestMetricsCommand:
    def test_snapshot_covers_the_whole_pipeline(self, dirty_file):
        result = run_cli(
            "metrics", str(dirty_file), "--probes", "20",
            "--failure-rate", "0.3", "--seed", "7",
        )
        assert result.returncode == 0
        snapshot = json.loads(result.stdout)
        counters = snapshot["counters"]
        # Probe infrastructure health.
        assert counters["probe.runner.scheduled"] > 0
        assert counters["probe.runner.retried"] > 0
        assert "probe.runner.abandoned" in counters
        # Ingest accounting from the dirty input file.
        assert counters["ingest.jsonl.lines"] == 2
        assert counters["ingest.jsonl.skipped"] == 1
        # Quantile-cache effectiveness (PR 1's memoization, verified
        # from a production-style run).
        assert counters["quantile_cache.columnar.misses"] > 0
        assert counters["quantile_cache.columnar.hits"] > 0
        # Per-backend latency histogram and pipeline spans.
        timers = snapshot["timers"]
        assert timers["probe.latency.SimulatedBackend"]["count"] > 0
        for stage in ("pipeline", "probe", "ingest", "score"):
            assert timers[f"span.{stage}"]["count"] == 1

    def test_text_rendering(self):
        result = run_cli("metrics", "--probes", "5", "--text")
        assert result.returncode == 0
        assert "counter probe.runner.scheduled" in result.stdout
        assert "timer   span.pipeline" in result.stdout

    def test_debug_logging_emits_span_events(self):
        result = run_cli(
            "--log-level", "debug", "--log-json", "metrics", "--probes", "5"
        )
        assert result.returncode == 0
        events = [
            json.loads(line)
            for line in result.stderr.splitlines()
            if line.startswith("{")
        ]
        span_paths = {
            e["ctx"]["span"]
            for e in events
            if e["event"] == "span exit" and "span" in e.get("ctx", {})
        }
        assert "pipeline" in span_paths
        assert "pipeline/score/score_regions" in span_paths
