"""Integration tests for the ``iqb`` CLI."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def campaign_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "campaign.jsonl"
    code = main(
        [
            "simulate",
            str(path),
            "--regions",
            "metro-fiber",
            "rural-dsl",
            "--tests",
            "80",
            "--subscribers",
            "25",
            "--seed",
            "9",
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_region_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "out.jsonl", "--regions", "oz"])


class TestSimulate(object):
    def test_writes_jsonl(self, campaign_file):
        lines = campaign_file.read_text().strip().splitlines()
        assert len(lines) == 2 * 3 * 80  # regions x clients x tests
        record = json.loads(lines[0])
        assert record["region"] in ("metro-fiber", "rural-dsl")


class TestScore:
    def test_prints_table(self, campaign_file, capsys):
        assert main(["score", str(campaign_file)]) == 0
        out = capsys.readouterr().out
        assert "metro-fiber" in out
        assert "rural-dsl" in out
        assert "Grade" in out

    def test_custom_config(self, campaign_file, capsys, tmp_path):
        config_path = tmp_path / "config.json"
        assert main(["config", "--output", str(config_path)]) == 0
        assert main(["score", str(campaign_file), "--config", str(config_path)]) == 0
        assert "metro-fiber" in capsys.readouterr().out


class TestReport:
    def test_full_report(self, campaign_file, capsys):
        assert main(["report", str(campaign_file), "rural-dsl"]) == 0
        out = capsys.readouterr().out
        assert "IQB report: rural-dsl" in out
        assert "Requirement detail" in out


class TestConfig:
    def test_prints_json(self, capsys):
        assert main(["config"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 1
        assert document["aggregation"]["percentile"] == 95.0

    def test_written_file_loads(self, tmp_path):
        from repro.core import IQBConfig

        path = tmp_path / "c.json"
        assert main(["config", "--output", str(path)]) == 0
        assert IQBConfig.load(path).aggregation.percentile == 95.0


class TestTiers:
    def test_renders_structure(self, capsys):
        assert main(["tiers"]) == 0
        out = capsys.readouterr().out
        assert "web_browsing" in out
        assert "ookla" in out


class TestSweep:
    def test_prints_percentile_table(self, campaign_file, capsys):
        assert main(
            [
                "sweep",
                str(campaign_file),
                "metro-fiber",
                "--percentiles",
                "50",
                "95",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "p50" in out and "p95" in out


class TestErrorHandling:
    def test_malformed_input_fails_cleanly_by_default(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{broken\n")
        assert main(["score", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "iqb: error:" in err
        assert "bad.jsonl:1" in err

    def test_missing_input_exits_2(self, tmp_path, capsys):
        assert main(["score", str(tmp_path / "nope.jsonl")]) == 2
        assert "iqb: error:" in capsys.readouterr().err

    def test_malformed_input_skippable(self, campaign_file, tmp_path, capsys):
        mixed = tmp_path / "mixed.jsonl"
        mixed.write_text(campaign_file.read_text() + "{broken\n")
        assert main(["score", str(mixed), "--on-error", "skip"]) == 0
        assert "metro-fiber" in capsys.readouterr().out


class TestQuantilesFlag:
    def test_exact_override_matches_default_json(self, campaign_file, capsys):
        assert main(["score", str(campaign_file), "--json"]) == 0
        default = json.loads(capsys.readouterr().out)
        assert (
            main(
                ["--quantiles", "exact", "score", str(campaign_file), "--json"]
            )
            == 0
        )
        forced = json.loads(capsys.readouterr().out)
        assert forced["quantiles"] == "exact"
        assert forced["regions"] == default["regions"]
        assert "quantiles" not in default

    def test_sketch_scoring_stamps_provenance(self, campaign_file, capsys):
        assert (
            main(
                ["--quantiles", "sketch", "score", str(campaign_file), "--json"]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["quantiles"] == "sketch"
        for breakdown in document["regions"].values():
            assert breakdown["quantile_source"] == "sketch"

    def test_sketch_table_output(self, campaign_file, capsys):
        assert (
            main(["--quantiles", "sketch", "score", str(campaign_file)]) == 0
        )
        out = capsys.readouterr().out
        assert "metro-fiber" in out

    def test_monitor_accepts_sketch(self, campaign_file, capsys):
        assert (
            main(
                [
                    "--quantiles",
                    "sketch",
                    "monitor",
                    str(campaign_file),
                    "--window-days",
                    "2",
                ]
            )
            == 0
        )
        assert "alert(s)" in capsys.readouterr().out

    def test_manifest_records_quantiles(
        self, campaign_file, capsys, tmp_path
    ):
        manifest_path = tmp_path / "run.json"
        assert (
            main(
                [
                    "--quantiles",
                    "sketch",
                    "--manifest-out",
                    str(manifest_path),
                    "score",
                    str(campaign_file),
                ]
            )
            == 0
        )
        capsys.readouterr()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["quantiles"] == "sketch"
        assert manifest["kernel"] == "vectorized"

    def test_unknown_quantiles_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--quantiles", "p2", "score", "x"])
