"""CLI failure handling: monitor resume, interrupts, atomic artifacts."""

import json
import re

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def campaign_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("resilience") / "campaign.jsonl"
    code = main(
        [
            "simulate",
            str(path),
            "--regions",
            "metro-fiber",
            "rural-dsl",
            "--tests",
            "4",
            "--subscribers",
            "10",
            "--days",
            "6",
            "--seed",
            "5",
        ]
    )
    assert code == 0
    return path


def monitor(campaign_file, capsys, *extra):
    code = main(
        [
            "monitor",
            str(campaign_file),
            "--window-days",
            "1",
            "--verbose",
            *extra,
        ]
    )
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def window_lines(text):
    return [line for line in text.splitlines() if line.startswith("window ")]


class TestMonitorJournal:
    def test_journaled_run_matches_plain_run(
        self, campaign_file, capsys, tmp_path
    ):
        code, plain_out, _ = monitor(campaign_file, capsys)
        assert code == 0
        journal = tmp_path / "campaign.journal"
        code, journaled_out, _ = monitor(
            campaign_file, capsys, "--journal", str(journal)
        )
        assert code == 0
        assert journaled_out == plain_out
        # The campaign checkpointed on exit: compacted snapshot, empty WAL.
        assert journal.exists()
        snapshot = json.loads((tmp_path / "campaign.journal.snap").read_text())
        assert len(snapshot["keys"]) == len(window_lines(plain_out))
        assert journal.read_text() == ""

    def test_resume_skips_completed_windows(
        self, campaign_file, capsys, tmp_path
    ):
        journal = tmp_path / "campaign.journal"
        code, full_out, _ = monitor(
            campaign_file, capsys, "--journal", str(journal)
        )
        assert code == 0
        windows = len(window_lines(full_out))
        code, resumed_out, resumed_err = monitor(
            campaign_file, capsys, "--resume", str(journal)
        )
        assert code == 0
        assert window_lines(resumed_out) == []  # nothing recomputed
        assert f"{windows} window(s) resumed from journal" in resumed_out
        assert f"resuming: {windows} window(s) already complete" in resumed_err

    def test_partial_journal_resumes_the_remaining_windows(
        self, campaign_file, capsys, tmp_path
    ):
        # Emulate a campaign killed partway: journal only the windows
        # covered by the first three days of measurements, then resume
        # against the full file. (Window boundaries derive from the
        # minimum timestamp, which the time-based split preserves.)
        lines = campaign_file.read_text().splitlines(keepends=True)
        stamps = [json.loads(line)["timestamp"] for line in lines]
        cutoff = min(stamps) + 3 * 86400.0
        partial_file = tmp_path / "partial.jsonl"
        partial_file.write_text(
            "".join(
                line
                for line, stamp in zip(lines, stamps)
                if stamp < cutoff
            )
        )
        journal = tmp_path / "campaign.journal"

        code, partial_out, _ = monitor(
            partial_file, capsys, "--journal", str(journal)
        )
        assert code == 0
        code, resumed_out, _ = monitor(
            campaign_file, capsys, "--resume", str(journal)
        )
        assert code == 0
        code, reference_out, _ = monitor(campaign_file, capsys)
        assert code == 0

        done = window_lines(partial_out)
        resumed = window_lines(resumed_out)
        reference = window_lines(reference_out)
        assert done and resumed  # the split actually exercised both runs
        assert done + resumed == reference  # union covers every window once

    def test_resume_requires_an_existing_journal(
        self, campaign_file, capsys, tmp_path
    ):
        code, _, err = monitor(
            campaign_file,
            capsys,
            "--resume",
            str(tmp_path / "missing.journal"),
        )
        assert code == 2
        assert "iqb: error: --resume journal not found" in err


class TestKeyboardInterrupt:
    def test_interrupt_exits_130_with_one_line(
        self, campaign_file, capsys, monkeypatch
    ):
        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.cli.read_jsonl", interrupted)
        code = main(["score", str(campaign_file)])
        captured = capsys.readouterr()
        assert code == 130
        assert "iqb: interrupted" in captured.err
        assert "Traceback" not in captured.err

    def test_interrupt_flushes_partial_manifest(
        self, campaign_file, capsys, monkeypatch, tmp_path
    ):
        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(
            "repro.core.scoring.score_regions", interrupted
        )
        manifest_path = tmp_path / "run.manifest.json"
        code = main(
            [
                "--manifest-out",
                str(manifest_path),
                "score",
                str(campaign_file),
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert code == 130
        assert "(interrupted run)" in captured.err
        manifest = json.loads(manifest_path.read_text())
        # The run's provenance up to the interrupt survived: the input
        # file registration happened before the crash point.
        assert any(
            str(campaign_file) in str(entry.get("path", ""))
            for entry in manifest.get("inputs", [])
        )

    def test_interrupt_flushes_partial_trace(
        self, campaign_file, capsys, monkeypatch, tmp_path
    ):
        # Ctrl-C used to be the one exit path that dropped the spans
        # recorded so far; the trace must flush next to the manifest.
        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(
            "repro.core.kernel.score_store", interrupted
        )
        trace_path = tmp_path / "trace.json"
        manifest_path = tmp_path / "run.manifest.json"
        code = main(
            [
                "--trace-out",
                str(trace_path),
                "--manifest-out",
                str(manifest_path),
                "score",
                str(campaign_file),
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert code == 130
        assert re.search(
            r"trace: wrote \d+ span\(s\) to .* \(interrupted run\)",
            captured.err,
        )
        document = json.loads(trace_path.read_text())
        spans = [
            event
            for event in document["traceEvents"]
            if event.get("ph") == "X"
        ]
        # The grouping stage completed before the interrupt hit the
        # kernel, and the enclosing scoring span closed on the way up.
        names = {event["name"] for event in spans}
        assert {"columnar_group", "score_regions"} <= names
        assert manifest_path.exists()
