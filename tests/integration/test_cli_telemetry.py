"""Integration tests for the observability export surface of the CLI:
``metrics --format prom``, ``--trace-out``/``--manifest-out``,
``iqb runs``, and a live ``monitor --telemetry-port`` campaign.
"""

import json
import re
import threading
import time
import urllib.request

import pytest

import repro.cli as cli
from repro.cli import main
from repro.obs.manifest import RunManifest

# Prometheus text-format line grammar (same shape as the unit-level
# check in tests/obs/test_exposition.py, restated here because the
# acceptance bar is "CLI output parses", not "module output parses").
_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_PROM_LINE = re.compile(
    rf"^(# HELP {_NAME} .+"
    rf"|# TYPE {_NAME} (counter|gauge|summary|histogram|untyped)"
    rf"|{_NAME}(\{{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"\}})? "
    r"[-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|[0-9]+))$"
)


@pytest.fixture(scope="module")
def campaign_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("telemetry") / "campaign.jsonl"
    code = main(
        [
            "simulate",
            str(path),
            "--regions",
            "metro-fiber",
            "rural-dsl",
            "--tests",
            "60",
            "--subscribers",
            "20",
            "--seed",
            "3",
        ]
    )
    assert code == 0
    return path


class TestMetricsPromFormat:
    def test_output_is_valid_prometheus_exposition(self, capsys):
        assert main(["metrics", "--probes", "5", "--format", "prom"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines, "prom exposition must not be empty"
        for line in lines:
            assert _PROM_LINE.match(line), f"invalid line: {line!r}"
        # The instrumented pipeline's own counters made it through.
        assert any(
            line.startswith("iqb_probe_runner_scheduled_total ")
            for line in lines
        )

    def test_text_flag_still_works_as_alias(self, capsys):
        assert main(["metrics", "--probes", "5", "--text"]) == 0
        assert "counter probe.runner.scheduled" in capsys.readouterr().out


class TestTraceAndManifest:
    def test_score_trace_matches_manifest_span_timers(
        self, campaign_file, tmp_path, capsys
    ):
        trace_path = tmp_path / "trace.json"
        manifest_path = tmp_path / "score.manifest.json"
        code = main(
            [
                "--trace-out",
                str(trace_path),
                "--manifest-out",
                str(manifest_path),
                "score",
                str(campaign_file),
                "--json",
            ]
        )
        assert code == 0
        json.loads(capsys.readouterr().out)  # stdout stayed clean JSON

        trace = json.loads(trace_path.read_text())
        span_events = [
            event
            for event in trace["traceEvents"]
            if event.get("ph") == "X"
        ]
        assert span_events, "a scoring run must produce spans"
        manifest = RunManifest.load(manifest_path)
        timers = manifest.metrics["timers"]
        # Every traced span has its span.<name> timer in the manifest's
        # snapshot, with at least as many observations as trace events.
        for name in {event["name"] for event in span_events}:
            assert f"span.{name}" in timers
            observed = sum(
                1 for event in span_events if event["name"] == name
            )
            assert timers[f"span.{name}"]["count"] >= observed
        # Nesting survived: the root scoring span contains its stages.
        paths = {event["args"]["path"] for event in span_events}
        assert "score_regions" in paths
        assert any(path.startswith("score_regions/") for path in paths)

    def test_manifest_records_input_provenance(
        self, campaign_file, tmp_path
    ):
        manifest_path = tmp_path / "m.manifest.json"
        assert (
            main(
                [
                    "--manifest-out",
                    str(manifest_path),
                    "score",
                    str(campaign_file),
                ]
            )
            == 0
        )
        manifest = RunManifest.load(manifest_path)
        assert manifest.command[-1] == str(campaign_file)
        (entry,) = manifest.inputs
        assert entry["path"] == str(campaign_file)
        assert entry["records_read"] == entry["lines"] == 360
        assert entry["records_skipped"] == 0
        assert len(entry["sha256"]) == 64
        assert manifest.config_sha256 is not None
        assert manifest.config["aggregation"]["percentile"] == 95.0

    def test_publish_output_writes_manifest_alongside(
        self, campaign_file, tmp_path
    ):
        report = tmp_path / "report.md"
        assert (
            main(["publish", str(campaign_file), "--output", str(report)])
            == 0
        )
        sidecar = tmp_path / "report.md.manifest.json"
        assert sidecar.exists()
        manifest = RunManifest.load(sidecar)
        assert manifest.outputs == (str(report),)
        assert "span.publish" in manifest.metrics["timers"]

    def test_failed_run_writes_no_artifacts(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        manifest_path = tmp_path / "m.json"
        code = main(
            [
                "--trace-out",
                str(trace_path),
                "--manifest-out",
                str(manifest_path),
                "score",
                str(tmp_path / "missing.jsonl"),
            ]
        )
        assert code == 2
        assert not trace_path.exists()
        assert not manifest_path.exists()


class TestRunsSubcommand:
    @pytest.fixture()
    def two_manifests(self, campaign_file, tmp_path):
        paths = []
        for name, extra in (
            ("a.manifest.json", []),
            ("b.manifest.json", ["--json"]),
        ):
            path = tmp_path / name
            assert (
                main(
                    ["--manifest-out", str(path), "score",
                     str(campaign_file)] + extra
                )
                == 0
            )
            paths.append(path)
        return paths

    def test_list_tabulates_directory(
        self, two_manifests, tmp_path, capsys
    ):
        capsys.readouterr()
        assert main(["runs", "list", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "a.manifest.json" in out
        assert "b.manifest.json" in out
        assert "Duration" in out

    def test_diff_reports_config_and_counter_deltas(
        self, two_manifests, capsys
    ):
        capsys.readouterr()
        a, b = two_manifests
        assert main(["runs", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        # Same config both runs: the identical digest is called out.
        assert "config: identical" in out
        assert "run A:" in out and "run B:" in out

    def test_diff_on_divergent_configs(
        self, campaign_file, tmp_path, capsys
    ):
        custom = tmp_path / "custom.json"
        assert main(["config", "--output", str(custom)]) == 0
        document = json.loads(custom.read_text())
        document["aggregation"]["percentile"] = 90.0
        custom.write_text(json.dumps(document))
        a = tmp_path / "paper.manifest.json"
        b = tmp_path / "custom.manifest.json"
        assert (
            main(["--manifest-out", str(a), "score", str(campaign_file)])
            == 0
        )
        assert (
            main(
                ["--manifest-out", str(b), "score", str(campaign_file),
                 "--config", str(custom)]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["runs", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "aggregation.percentile: 95.0 -> 90.0" in out

    def test_diff_rejects_non_manifest(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("not json at all")
        code = main(["runs", "diff", str(bogus), str(bogus)])
        assert code == 2
        assert "iqb: error:" in capsys.readouterr().err

    def test_list_empty_directory(self, tmp_path, capsys):
        empty = tmp_path / "void"
        empty.mkdir()
        assert main(["runs", "list", str(empty)]) == 0
        assert "no manifests" in capsys.readouterr().out


class TestLiveTelemetry:
    """curl /metrics, /metrics.json, /healthz against a live campaign."""

    def _get(self, url):
        with urllib.request.urlopen(url, timeout=5.0) as response:
            return response.status, response.read().decode("utf-8")

    def test_monitor_with_telemetry_port(self, campaign_file):
        result = {}

        def run_campaign():
            result["code"] = main(
                [
                    "--telemetry-port",
                    "0",
                    "monitor",
                    str(campaign_file),
                    "--window-days",
                    "0.5",
                    "--cycle-sleep",
                    "0.15",
                ]
            )

        campaign = threading.Thread(target=run_campaign)
        campaign.start()
        try:
            # Wait for the ephemeral-port server to come up mid-run.
            deadline = time.time() + 10.0
            server = None
            while time.time() < deadline:
                server = cli._TELEMETRY
                if server is not None and server.port:
                    break
                time.sleep(0.02)
            assert server is not None and server.port, (
                "telemetry server never came up"
            )
            base = f"http://127.0.0.1:{server.port}"

            status, body = self._get(f"{base}/metrics")
            assert status == 200
            for line in body.splitlines():
                assert _PROM_LINE.match(line), f"invalid line: {line!r}"
            assert "iqb_monitor_cycles" in body

            status, body = self._get(f"{base}/metrics.json")
            assert status == 200
            snapshot = json.loads(body)
            assert "monitor.last_cycle_unix" in snapshot["gauges"]

            status, body = self._get(f"{base}/healthz")
            assert status == 200
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["last_cycle_unix"] is not None
        finally:
            campaign.join(timeout=60.0)
        assert not campaign.is_alive()
        assert result["code"] == 0
        # The endpoint is torn down with the campaign.
        assert cli._TELEMETRY is None
