"""Shared fixtures for the IQB reproduction test suite."""

import pytest

from repro.core import paper_config
from repro.core.aggregation import SequenceSource
from repro.netsim import CampaignConfig, region_preset, simulate_region


@pytest.fixture(scope="session")
def config():
    """The canonical paper configuration."""
    return paper_config()


@pytest.fixture(scope="session")
def small_campaign():
    """A small but realistic simulated campaign over two regions."""
    campaign = CampaignConfig(subscribers=40, tests_per_client=120)
    records = simulate_region(
        region_preset("metro-fiber"), seed=7, config=campaign
    ) + simulate_region(region_preset("rural-dsl"), seed=7, config=campaign)
    return records


@pytest.fixture(scope="session")
def fiber_sources(small_campaign):
    """Per-dataset sources for the metro-fiber region."""
    return small_campaign.for_region("metro-fiber").group_by_source()


@pytest.fixture(scope="session")
def dsl_sources(small_campaign):
    """Per-dataset sources for the rural-dsl region."""
    return small_campaign.for_region("rural-dsl").group_by_source()


def perfect_source():
    """A source whose metrics pass every paper threshold at any percentile."""
    return SequenceSource(
        download_mbps=[500.0] * 20,
        upload_mbps=[500.0] * 20,
        latency_ms=[5.0] * 20,
        packet_loss=[0.0] * 20,
    )


def terrible_source():
    """A source whose metrics fail every paper threshold at any percentile."""
    return SequenceSource(
        download_mbps=[1.0] * 20,
        upload_mbps=[0.5] * 20,
        latency_ms=[900.0] * 20,
        packet_loss=[0.15] * 20,
    )


@pytest.fixture()
def perfect_sources():
    """Three perfect datasets (every requirement passes)."""
    return {name: perfect_source() for name in ("ndt", "cloudflare", "ookla")}


@pytest.fixture()
def terrible_sources():
    """Three terrible datasets (every requirement fails)."""
    return {name: terrible_source() for name in ("ndt", "cloudflare", "ookla")}
