"""Unit tests for repro.baselines (speed, FCC, ablations)."""

import pytest

from repro.baselines.fcc import FCCVerdict, fcc_verdict
from repro.baselines.naive import (
    all_single_dataset_scores,
    single_dataset_score,
    unweighted_config,
    unweighted_score,
)
from repro.baselines.speed import mean_speed_score, median_speed_score
from repro.core.aggregation import SequenceSource
from repro.core.exceptions import DataError
from repro.core.metrics import Metric
from repro.core.scoring import score_region
from repro.core.usecases import UseCase


def source(down, up=None, latency=None, loss=None, n=20):
    return SequenceSource(
        download_mbps=[down] * n,
        upload_mbps=None if up is None else [up] * n,
        latency_ms=None if latency is None else [latency] * n,
        packet_loss=None if loss is None else [loss] * n,
    )


class TestSpeedScores:
    def test_reference_speed_scores_one(self):
        sources = {"a": source(150.0, up=150.0)}
        assert median_speed_score(sources) == 1.0

    def test_blend_weighting(self):
        # 80/20 blend of down=100, up=0 → 80 / 100 reference.
        sources = {"a": source(100.0, up=0.0)}
        assert median_speed_score(sources) == pytest.approx(0.8)

    def test_upload_falls_back_to_download(self):
        sources = {"a": source(50.0)}
        assert median_speed_score(sources) == pytest.approx(0.5)

    def test_sample_weighted_combination(self):
        sources = {
            "big": SequenceSource(
                download_mbps=[100.0] * 90, upload_mbps=[100.0] * 90
            ),
            "small": SequenceSource(
                download_mbps=[0.0] * 10, upload_mbps=[0.0] * 10
            ),
        }
        assert median_speed_score(sources) == pytest.approx(0.9)

    def test_no_throughput_anywhere_raises(self):
        sources = {"a": SequenceSource(latency_ms=[10.0] * 5)}
        with pytest.raises(DataError):
            median_speed_score(sources)

    def test_mean_score_at_least_median_for_right_skew(self):
        skewed = SequenceSource(
            download_mbps=[10.0] * 90 + [500.0] * 10,
            upload_mbps=[10.0] * 90 + [500.0] * 10,
        )
        assert mean_speed_score({"a": skewed}) >= median_speed_score({"a": skewed})

    def test_parameter_validation(self):
        sources = {"a": source(50.0)}
        with pytest.raises(ValueError):
            median_speed_score(sources, reference_mbps=0.0)
        with pytest.raises(ValueError):
            median_speed_score(sources, download_share=1.5)


class TestFCC:
    def test_served_region(self):
        sources = {"a": source(200.0, up=50.0)}
        verdict = fcc_verdict(sources)
        assert verdict.served
        assert verdict.score == 1.0

    def test_upload_shortfall_unserves(self):
        sources = {"a": source(500.0, up=5.0)}
        verdict = fcc_verdict(sources)
        assert verdict.download_ok and not verdict.upload_ok
        assert not verdict.served
        assert verdict.score == 0.0

    def test_worst_dataset_governs(self):
        sources = {
            "optimist": source(500.0, up=100.0),
            "pessimist": source(50.0, up=100.0),
        }
        verdict = fcc_verdict(sources)
        assert verdict.download_mbps == pytest.approx(50.0)
        assert not verdict.served

    def test_missing_direction_raises(self):
        with pytest.raises(DataError):
            fcc_verdict({"a": source(100.0)})

    def test_custom_bar(self):
        sources = {"a": source(30.0, up=10.0)}
        verdict = fcc_verdict(sources, down_mbps=25.0, up_mbps=3.0)
        assert verdict.served


class TestAblations:
    @pytest.fixture()
    def mixed_sources(self, fiber_sources):
        return fiber_sources

    def test_single_dataset_score(self, mixed_sources, config):
        breakdown = single_dataset_score(mixed_sources, config, "ndt")
        assert 0.0 <= breakdown.value <= 1.0

    def test_unknown_dataset_rejected(self, mixed_sources, config):
        with pytest.raises(DataError, match="mystery"):
            single_dataset_score(mixed_sources, config, "mystery")

    def test_all_single_dataset_scores(self, mixed_sources, config):
        scores = all_single_dataset_scores(mixed_sources, config)
        assert set(scores) == set(mixed_sources)

    def test_corroborated_score_within_single_dataset_envelope(
        self, mixed_sources, config
    ):
        singles = all_single_dataset_scores(mixed_sources, config)
        combined = score_region(mixed_sources, config).value
        values = [b.value for b in singles.values()]
        assert min(values) - 1e-9 <= combined <= max(values) + 1e-9

    def test_unweighted_config_flattens_everything(self, config):
        flat = unweighted_config(config)
        for use_case in UseCase:
            for metric in Metric:
                assert flat.requirement_weights.get(use_case, metric) == 1
            assert flat.use_case_weights.get(use_case) == 1

    def test_unweighted_preserves_capabilities(self, config):
        flat = unweighted_config(config)
        assert flat.dataset_weights.get(
            UseCase.GAMING, Metric.PACKET_LOSS, "ookla"
        ) == 0
        assert flat.dataset_weights.get(
            UseCase.GAMING, Metric.PACKET_LOSS, "ndt"
        ) == 1

    def test_unweighted_score_differs_from_weighted(
        self, dsl_sources, config
    ):
        weighted = score_region(dsl_sources, config).value
        flat = unweighted_score(dsl_sources, config).value
        assert 0.0 <= flat <= 1.0
        # Table 1 is not flat, so on a partially-failing region the two
        # scores should differ (they agree only by coincidence).
        assert flat != pytest.approx(weighted, abs=1e-6)
