"""Unit tests for the cache layout: paths, entries, signed manifests."""

import json

import pytest

from repro.cache.layout import (
    CacheEntry,
    CacheManifest,
    artifact_path,
    empty_manifest,
    entries_digest,
    period_key,
    plane_name,
    sha256_hex,
)
from repro.core.exceptions import IntegrityError

SHA_A = sha256_hex(b"alpha")
SHA_B = sha256_hex(b"bravo")
SHA_C = sha256_hex(b"charlie")


def entry(sha=SHA_A, period="000100", plane="ndt_by_region", **kwargs):
    return CacheEntry(
        path=artifact_path(period, plane, sha),
        sha256=sha,
        bytes=kwargs.pop("bytes", 5),
        period=period,
        plane=plane,
        **kwargs,
    )


class TestPaths:
    def test_period_key_is_zero_padded_and_chronological(self):
        week = 7 * 86400.0
        keys = [period_key(t * week + 1.0) for t in range(3)]
        assert keys == ["000000", "000001", "000002"]
        assert keys == sorted(keys)

    def test_period_key_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            period_key(0.0, period_s=0.0)

    def test_plane_name_joins_source_and_granularity(self):
        assert plane_name("ndt", "region") == "ndt_by_region"

    def test_plane_name_rejects_traversal(self):
        with pytest.raises(IntegrityError):
            plane_name("../evil", "region")
        with pytest.raises(IntegrityError):
            plane_name("ndt", "a/b")

    def test_artifact_path_shape(self):
        assert (
            artifact_path("000001", "ndt_by_region", SHA_A)
            == f"v1/000001/ndt_by_region/{SHA_A}.json"
        )

    def test_artifact_path_rejects_bad_digest(self):
        with pytest.raises(IntegrityError):
            artifact_path("000001", "ndt_by_region", "nothex")
        with pytest.raises(IntegrityError):
            artifact_path("000001", "ndt_by_region", SHA_A.upper())


class TestCacheEntry:
    def test_path_must_match_identity(self):
        with pytest.raises(IntegrityError):
            CacheEntry(
                path=f"v1/000009/ndt_by_region/{SHA_A}.json",
                sha256=SHA_A,
                bytes=5,
                period="000100",  # disagrees with the path
                plane="ndt_by_region",
            )

    def test_negative_sizes_rejected(self):
        with pytest.raises(IntegrityError):
            entry(bytes=-1)

    def test_dict_roundtrip(self):
        original = entry(records=7)
        assert CacheEntry.from_dict(original.to_dict()) == original

    def test_malformed_dict_raises_integrity_error(self):
        with pytest.raises(IntegrityError):
            CacheEntry.from_dict({"path": "x"})


class TestManifest:
    def test_entries_digest_is_order_independent(self):
        a, b = entry(SHA_A), entry(SHA_B)
        assert entries_digest([a, b]) == entries_digest([b, a])

    def test_entries_digest_changes_with_content(self):
        assert entries_digest([entry(SHA_A)]) != entries_digest(
            [entry(SHA_B)]
        )

    def test_json_roundtrip_preserves_signature(self):
        manifest = empty_manifest().merged([entry(SHA_A), entry(SHA_B)])
        again = CacheManifest.from_json(manifest.to_json().encode("utf-8"))
        assert again.entries == manifest.entries
        assert again.manifest_sha256 == manifest.manifest_sha256

    def test_tampered_manifest_fails_signature(self):
        manifest = empty_manifest().merged([entry(SHA_A)])
        document = manifest.to_document()
        document["entries"][0]["records"] = 999_999
        with pytest.raises(IntegrityError, match="signature"):
            CacheManifest.from_document(document)

    def test_torn_manifest_is_not_json(self):
        manifest = empty_manifest().merged([entry(SHA_A)])
        torn = manifest.to_json().encode("utf-8")[:-40]
        with pytest.raises(IntegrityError):
            CacheManifest.from_json(torn)

    def test_unsupported_cache_version_rejected(self):
        document = empty_manifest().to_document()
        document["cache_version"] = 99
        with pytest.raises(IntegrityError, match="cache_version"):
            CacheManifest.from_document(document)

    def test_duplicate_paths_rejected(self):
        duplicated = entry(SHA_A)
        document = {
            "cache_version": 1,
            "entries": [duplicated.to_dict(), duplicated.to_dict()],
            "manifest_sha256": entries_digest([duplicated, duplicated]),
        }
        with pytest.raises(IntegrityError, match="duplicate"):
            CacheManifest.from_document(document)

    def test_missing_from_plans_the_delta(self):
        local = empty_manifest().merged([entry(SHA_A)])
        remote = empty_manifest().merged([entry(SHA_A), entry(SHA_B)])
        delta = remote.missing_from(local)
        assert [e.sha256 for e in delta] == [entry(SHA_B).sha256]
        assert remote.missing_from(remote) == []

    def test_merged_dedupes_by_path_with_later_winning(self):
        manifest = empty_manifest().merged([entry(SHA_A, records=1)])
        refreshed = manifest.merged([entry(SHA_A, records=42)])
        assert len(refreshed) == 1
        assert refreshed.entries[0].records == 42

    def test_merged_keeps_entries_sorted_by_path(self):
        manifest = empty_manifest().merged(
            [entry(SHA_C), entry(SHA_A), entry(SHA_B)]
        )
        paths = [e.path for e in manifest.entries]
        assert paths == sorted(paths)

    def test_periods_are_chronological(self):
        manifest = empty_manifest().merged(
            [entry(SHA_A, period="000002"), entry(SHA_B, period="000001")]
        )
        assert manifest.periods() == ("000001", "000002")

    def test_document_is_json_serializable(self):
        manifest = empty_manifest().merged([entry(SHA_A)])
        json.dumps(manifest.to_document())
