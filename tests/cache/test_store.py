"""Unit tests for the local store: atomic puts, verify-on-read,
quarantine, whole-cache verify/gc."""

import pytest

from repro.cache.layout import sha256_hex
from repro.cache.store import LocalCache, publish_entries
from repro.core.exceptions import IntegrityError
from repro.obs import REGISTRY


@pytest.fixture()
def cache(tmp_path):
    return LocalCache(tmp_path / "cache")


def put_one(cache, payload=b'{"n":1}\n', period="000001", plane="ndt_by_region"):
    entry = cache.put(payload, period=period, plane=plane, records=1)
    publish_entries(cache, [entry])
    return entry


class TestPut:
    def test_put_lands_content_addressed(self, cache):
        payload = b'{"n":1}\n'
        entry = put_one(cache, payload)
        assert entry.sha256 == sha256_hex(payload)
        assert (cache.root / entry.path).read_bytes() == payload

    def test_put_is_idempotent(self, cache):
        first = put_one(cache)
        second = cache.put(b'{"n":1}\n', period="000001", plane="ndt_by_region", records=1)
        assert first.path == second.path
        assert len(cache.manifest()) == 1

    def test_distinct_payloads_coexist(self, cache):
        a = put_one(cache, b'{"n":1}\n')
        b = put_one(cache, b'{"n":2}\n')
        assert a.path != b.path
        assert len(cache.manifest()) == 2


class TestRead:
    def test_read_returns_verified_bytes(self, cache):
        entry = put_one(cache)
        assert cache.read(entry) == b'{"n":1}\n'

    def test_corrupt_read_quarantines_and_raises(self, cache):
        entry = put_one(cache)
        target = cache.root / entry.path
        target.write_bytes(b'{"n":1} tampered\n')
        before = REGISTRY.counter("cache.corrupt").value
        with pytest.raises(IntegrityError, match=entry.path):
            cache.read(entry)
        assert REGISTRY.counter("cache.corrupt").value == before + 1
        # Bytes moved out of the trusted tree, preserved as evidence.
        assert not target.exists()
        quarantined = list(cache.quarantine_dir.iterdir())
        assert len(quarantined) == 1
        assert quarantined[0].read_bytes() == b'{"n":1} tampered\n'

    def test_missing_artifact_raises(self, cache):
        entry = put_one(cache)
        (cache.root / entry.path).unlink()
        with pytest.raises(IntegrityError, match="missing"):
            cache.read(entry)

    def test_quarantine_collisions_keep_earlier_evidence(self, cache):
        entry = put_one(cache)
        (cache.root / entry.path).write_bytes(b"bad1")
        with pytest.raises(IntegrityError):
            cache.read(entry)
        # Same artifact goes bad again after a re-put.
        cache.put(b'{"n":1}\n', period="000001", plane="ndt_by_region")
        (cache.root / entry.path).write_bytes(b"bad2")
        with pytest.raises(IntegrityError):
            cache.read(entry)
        contents = sorted(
            p.read_bytes() for p in cache.quarantine_dir.iterdir()
        )
        assert contents == [b"bad1", b"bad2"]


class TestPathHardening:
    def test_hostile_manifest_path_rejected(self, cache):
        for hostile in (
            "../../etc/passwd",
            "v1/../../x/aa.json",
            "v1/p/plane/extra/aa.json",
            "v1/p/plane/notahash.json",
        ):
            with pytest.raises(IntegrityError):
                cache.artifact_abspath(hostile)

    def test_valid_path_resolves_under_root(self, cache):
        entry = put_one(cache)
        resolved = cache.artifact_abspath(entry.path)
        assert resolved == cache.root / entry.path


class TestVerify:
    def test_clean_cache_verifies(self, cache):
        put_one(cache, b'{"n":1}\n')
        put_one(cache, b'{"n":2}\n')
        report = cache.verify()
        assert report.ok
        assert report.verified == 2
        assert report.findings == ()

    def test_verify_names_all_damage_in_one_pass(self, cache):
        good = put_one(cache, b'{"n":1}\n')
        corrupt = put_one(cache, b'{"n":2}\n')
        missing = put_one(cache, b'{"n":3}\n')
        (cache.root / corrupt.path).write_bytes(b"garbage")
        (cache.root / missing.path).unlink()
        stray = cache.root / "v1" / "000001" / "ndt_by_region" / (
            "f" * 64 + ".json"
        )
        stray.write_bytes(b"stray")
        report = cache.verify()
        assert not report.ok
        kinds = {(f.kind, f.path) for f in report.findings}
        assert ("corrupt", corrupt.path) in kinds
        assert ("missing", missing.path) in kinds
        assert any(kind == "unreferenced" for kind, _ in kinds)
        assert report.verified == 1
        # The corrupt artifact was quarantined by the sweep.
        assert not (cache.root / corrupt.path).exists()
        assert list(cache.quarantine_dir.iterdir())
        assert (cache.root / good.path).exists()

    def test_unreferenced_alone_is_not_a_failure(self, cache):
        put_one(cache)
        stray = cache.root / "v1" / "000001" / "ndt_by_region" / (
            "e" * 64 + ".json"
        )
        stray.write_bytes(b"stray")
        report = cache.verify()
        assert report.ok
        assert [f.kind for f in report.findings] == ["unreferenced"]

    def test_tampered_manifest_raises_before_artifacts_are_trusted(
        self, cache
    ):
        put_one(cache)
        raw = cache.manifest_path.read_text()
        cache.manifest_path.write_text(raw.replace('"records": 1', '"records": 9'))
        with pytest.raises(IntegrityError, match="signature"):
            cache.manifest()

    def test_fresh_root_has_empty_manifest(self, tmp_path):
        assert len(LocalCache(tmp_path / "nowhere").manifest()) == 0


class TestGC:
    def test_gc_removes_unreferenced_and_partials_only(self, cache):
        kept = put_one(cache)
        stray = cache.root / "v1" / "000009" / "ndt_by_region" / (
            "d" * 64 + ".json"
        )
        stray.parent.mkdir(parents=True)
        stray.write_bytes(b"stray")
        cache.partial_dir.mkdir(parents=True)
        (cache.partial_dir / ("a" * 64 + ".part")).write_bytes(b"half")
        cache.quarantine_dir.mkdir(parents=True)
        evidence = cache.quarantine_dir / "old_evidence.json"
        evidence.write_bytes(b"bad")
        report = cache.gc()
        assert list(report.removed) == [
            f"v1/000009/ndt_by_region/{'d' * 64}.json"
        ]
        assert len(report.partials) == 1
        assert not stray.exists()
        assert not stray.parent.exists()  # empty dirs pruned
        assert (cache.root / kept.path).exists()
        assert evidence.exists()  # quarantine is never collected
        assert cache.verify().ok
