"""Chaos suite for cache pulls: the convergence contract under seeded
transfer faults.

The contract (module docstring of :mod:`repro.cache.remote`): a pull
either (a) returns, after which the local cache verifies end to end, or
(b) raises loudly — and in *both* cases every artifact inside the
trusted ``v1/`` tree hashes to its content address, with damaged bytes
confined to ``quarantine/`` and ``partial/``. No fault schedule may
produce a silently corrupt cache, because a corrupt artifact that gets
scored is the one failure mode a measurement platform cannot tolerate.
"""

import hashlib

import pytest

from repro.cache.remote import FileRemote, default_breaker, pull, push
from repro.cache.store import LocalCache, publish_entries
from repro.core.exceptions import IntegrityError, RemoteError
from repro.resilience import (
    BreakerOpenError,
    ChaosRemote,
    ChaosRemoteConfig,
    RetryPolicy,
)

#: Fault schedules exercised by the property sweep. Kept ≥ 200 so the
#: sweep visits truncation/bit-flip/reset/burst interleavings densely
#: enough to have caught every ordering bug found during development.
SEEDS = range(200)


def fast_policy(seed=0, max_attempts=6):
    return RetryPolicy(max_attempts=max_attempts, base_s=0.0, seed=seed)


@pytest.fixture(scope="module")
def remote_tree(tmp_path_factory):
    """One pushed remote reused across every seed (it is read-only)."""
    root = tmp_path_factory.mktemp("chaos-remote")
    source = LocalCache(root / "source")
    payloads = [
        b'{"tile": %d, "pad": "%s"}\n' % (i, b"x" * (50 + 37 * i))
        for i in range(4)
    ]
    entries = [
        source.put(
            payload, period=f"{i:06d}", plane="ndt_by_region", records=1
        )
        for i, payload in enumerate(payloads)
    ]
    publish_entries(source, entries)
    remote = FileRemote(root / "remote")
    push(source, remote, policy=fast_policy())
    return source, remote


def assert_trusted_tree_is_clean(cache):
    """Every file under v1/ hashes to its own filename — always."""
    version_root = cache.root / "v1"
    if not version_root.is_dir():
        return
    for path in version_root.rglob("*.json"):
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        assert path.stem == digest, (
            f"unverified bytes inside the trusted tree: {path}"
        )


class TestConvergenceContract:
    def test_every_fault_schedule_converges_or_fails_loudly(
        self, remote_tree, tmp_path
    ):
        source, remote = remote_tree
        converged = failed = 0
        faults_seen = 0
        for seed in SEEDS:
            clone = LocalCache(tmp_path / f"clone-{seed}")
            chaos = ChaosRemote(
                remote,
                ChaosRemoteConfig(
                    seed=seed,
                    truncate_rate=0.30,
                    bitflip_rate=0.15,
                    reset_rate=0.15,
                    error_rate=0.15,
                    error_burst=2,
                    fault_manifest=False,
                ),
            )
            try:
                pull(
                    clone,
                    chaos,
                    policy=fast_policy(seed=seed),
                    breaker=default_breaker(),
                )
            except (IntegrityError, RemoteError, BreakerOpenError):
                failed += 1
            else:
                converged += 1
                report = clone.verify()
                assert report.ok, (
                    f"seed {seed}: pull returned but verify found "
                    f"{report.findings}"
                )
                assert (
                    clone.manifest().manifest_sha256
                    == source.manifest().manifest_sha256
                )
            # The invariant that must hold on *every* exit path.
            assert_trusted_tree_is_clean(clone)
            faults_seen += (
                chaos.injected_truncations
                + chaos.injected_bitflips
                + chaos.injected_resets
                + chaos.injected_errors
            )
        # The sweep must actually exercise faults and both outcomes.
        assert faults_seen > len(SEEDS)
        assert converged > 0, "no schedule converged — rates too hostile"
        assert failed > 0, "no schedule failed — rates too gentle"

    def test_interrupted_pull_resumes_to_convergence(self, remote_tree, tmp_path):
        """A failed chaotic pull + a clean re-pull always heals."""
        source, remote = remote_tree
        healed = 0
        for seed in range(40):
            clone = LocalCache(tmp_path / f"resume-{seed}")
            chaos = ChaosRemote(
                remote,
                ChaosRemoteConfig(
                    seed=seed,
                    truncate_rate=0.5,
                    reset_rate=0.4,
                    fault_manifest=False,
                ),
            )
            try:
                pull(
                    clone,
                    chaos,
                    policy=fast_policy(seed=seed, max_attempts=2),
                    breaker=default_breaker(),
                )
            except (RemoteError, BreakerOpenError, IntegrityError):
                pass
            assert_trusted_tree_is_clean(clone)
            # The operator retries against the now-healthy remote.
            pull(clone, remote, policy=fast_policy())
            report = clone.verify()
            assert report.ok
            assert (
                clone.manifest().manifest_sha256
                == source.manifest().manifest_sha256
            )
            healed += 1
        assert healed == 40


class TestFaultKinds:
    def test_truncation_triggers_ranged_resume(self, remote_tree, tmp_path):
        _, remote = remote_tree
        resumed_somewhere = False
        for seed in range(30):
            clone = LocalCache(tmp_path / f"trunc-{seed}")
            chaos = ChaosRemote(
                remote,
                ChaosRemoteConfig(
                    seed=seed, truncate_rate=0.6, fault_manifest=False
                ),
            )
            try:
                report = pull(
                    clone,
                    chaos,
                    policy=fast_policy(seed=seed, max_attempts=10),
                    breaker=default_breaker(),
                )
            except RemoteError:
                # Every attempt truncated — a loud failure is allowed,
                # a dirty tree is not.
                assert_trusted_tree_is_clean(clone)
                continue
            if chaos.injected_truncations and report.resumed:
                resumed_somewhere = True
            assert clone.verify().ok
        assert resumed_somewhere

    def test_bitflips_quarantine_and_restart(self, remote_tree, tmp_path):
        _, remote = remote_tree
        quarantined_somewhere = False
        for seed in range(30):
            clone = LocalCache(tmp_path / f"flip-{seed}")
            chaos = ChaosRemote(
                remote,
                ChaosRemoteConfig(
                    seed=seed, bitflip_rate=0.4, fault_manifest=False
                ),
            )
            try:
                report = pull(
                    clone,
                    chaos,
                    policy=fast_policy(seed=seed, max_attempts=10),
                    breaker=default_breaker(),
                )
            except IntegrityError:
                assert_trusted_tree_is_clean(clone)
                continue
            if chaos.injected_bitflips:
                assert report.quarantined or report.retries
                if report.quarantined:
                    quarantined_somewhere = True
                    assert list(clone.quarantine_dir.iterdir())
            assert clone.verify().ok
        assert quarantined_somewhere

    def test_manifest_bitflip_is_caught_by_its_signature(
        self, remote_tree, tmp_path
    ):
        _, remote = remote_tree
        caught = False
        for seed in range(40):
            clone = LocalCache(tmp_path / f"mflip-{seed}")
            chaos = ChaosRemote(
                remote,
                ChaosRemoteConfig(seed=seed, bitflip_rate=0.9),
            )
            try:
                pull(
                    clone,
                    chaos,
                    policy=fast_policy(seed=seed),
                    breaker=default_breaker(),
                )
            except IntegrityError:
                caught = True
                break
            except (RemoteError, BreakerOpenError):
                continue
        assert caught, "a mangled manifest was never rejected"

    def test_same_seed_same_fault_schedule(self, remote_tree, tmp_path):
        _, remote = remote_tree
        counts = []
        for attempt in range(2):
            clone = LocalCache(tmp_path / f"det-{attempt}")
            chaos = ChaosRemote(
                remote,
                ChaosRemoteConfig(
                    seed=1234,
                    truncate_rate=0.3,
                    bitflip_rate=0.2,
                    reset_rate=0.2,
                    error_rate=0.2,
                    fault_manifest=False,
                ),
            )
            try:
                pull(
                    clone,
                    chaos,
                    policy=fast_policy(seed=1234),
                    breaker=default_breaker(),
                )
            except (IntegrityError, RemoteError, BreakerOpenError):
                pass
            counts.append(
                (
                    chaos.injected_truncations,
                    chaos.injected_bitflips,
                    chaos.injected_resets,
                    chaos.injected_errors,
                )
            )
        assert counts[0] == counts[1]
