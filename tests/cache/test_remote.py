"""Transfer tests: file/http remotes, incremental sync, resume, retry,
breaker integration, corruption refusing to propagate."""

import threading

import pytest

from repro.cache.layout import MANIFEST_NAME, sha256_hex
from repro.cache.remote import (
    FileRemote,
    HttpRemote,
    Remote,
    open_remote,
    pull,
    push,
)
from repro.cache.store import LocalCache, publish_entries
from repro.core.exceptions import IntegrityError, RemoteError
from repro.resilience import BreakerOpenError, CircuitBreaker, RetryPolicy


def fast_policy(max_attempts=4, seed=0):
    """A retry budget that never sleeps (tests stay instant)."""
    return RetryPolicy(max_attempts=max_attempts, base_s=0.0, seed=seed)


def seeded_cache(tmp_path, name="local", payloads=(b'{"n":1}\n', b'{"n":2}\n')):
    cache = LocalCache(tmp_path / name)
    entries = [
        cache.put(payload, period="000001", plane="ndt_by_region", records=1)
        for payload in payloads
    ]
    publish_entries(cache, entries)
    return cache


class FlakyRemote(Remote):
    """Wraps a real remote; fails the first N calls of chosen verbs."""

    def __init__(self, inner, fetch_failures=0, put_failures=0):
        self.inner = inner
        self.name = inner.name
        self.fetch_failures = fetch_failures
        self.put_failures = put_failures
        self.calls = 0

    def fetch_manifest(self):
        return self.inner.fetch_manifest()

    def fetch(self, rel_path, offset=0):
        self.calls += 1
        if self.fetch_failures > 0:
            self.fetch_failures -= 1
            raise RemoteError("flaky: fetch refused")
        return self.inner.fetch(rel_path, offset)

    def put(self, rel_path, payload):
        if self.put_failures > 0:
            self.put_failures -= 1
            raise RemoteError("flaky: put refused")
        self.inner.put(rel_path, payload)

    def exists(self, rel_path):
        return self.inner.exists(rel_path)


class TestFileRemoteRoundTrip:
    def test_push_then_pull_reproduces_the_cache(self, tmp_path):
        source = seeded_cache(tmp_path)
        remote = FileRemote(tmp_path / "remote")
        report = push(source, remote, policy=fast_policy())
        assert len(report.uploaded) == 2
        assert remote.exists(MANIFEST_NAME)

        clone = LocalCache(tmp_path / "clone")
        pulled = pull(clone, remote, policy=fast_policy())
        assert sorted(pulled.fetched) == sorted(report.uploaded)
        assert clone.verify().ok
        assert (
            clone.manifest().manifest_sha256
            == source.manifest().manifest_sha256
        )

    def test_second_pull_is_a_noop(self, tmp_path):
        source = seeded_cache(tmp_path)
        remote = FileRemote(tmp_path / "remote")
        push(source, remote, policy=fast_policy())
        clone = LocalCache(tmp_path / "clone")
        pull(clone, remote, policy=fast_policy())
        again = pull(clone, remote, policy=fast_policy())
        assert again.fetched == []
        assert len(again.skipped) == 2
        assert again.bytes_transferred == 0

    def test_incremental_push_uploads_only_the_delta(self, tmp_path):
        source = seeded_cache(tmp_path)
        remote = FileRemote(tmp_path / "remote")
        push(source, remote, policy=fast_policy())
        new_entry = source.put(
            b'{"n":3}\n', period="000002", plane="ndt_by_region", records=1
        )
        publish_entries(source, [new_entry])
        report = push(source, remote, policy=fast_policy())
        assert report.uploaded == [new_entry.path]
        assert len(report.skipped) == 2

    def test_incremental_pull_appends_new_periods(self, tmp_path):
        source = seeded_cache(tmp_path)
        remote = FileRemote(tmp_path / "remote")
        push(source, remote, policy=fast_policy())
        clone = LocalCache(tmp_path / "clone")
        pull(clone, remote, policy=fast_policy())
        new_entry = source.put(
            b'{"n":3}\n', period="000002", plane="ndt_by_region", records=1
        )
        publish_entries(source, [new_entry])
        push(source, remote, policy=fast_policy())
        report = pull(clone, remote, policy=fast_policy())
        assert report.fetched == [new_entry.path]
        assert clone.manifest().periods() == ("000001", "000002")

    def test_pull_refetches_missing_local_bytes(self, tmp_path):
        """A quarantined (or deleted) artifact self-heals on re-pull."""
        source = seeded_cache(tmp_path)
        remote = FileRemote(tmp_path / "remote")
        push(source, remote, policy=fast_policy())
        clone = LocalCache(tmp_path / "clone")
        pull(clone, remote, policy=fast_policy())
        victim = clone.manifest().entries[0]
        (clone.root / victim.path).unlink()
        report = pull(clone, remote, policy=fast_policy())
        assert report.fetched == [victim.path]
        assert clone.verify().ok

    def test_missing_remote_manifest_is_a_remote_error(self, tmp_path):
        clone = LocalCache(tmp_path / "clone")
        with pytest.raises(RemoteError):
            pull(
                clone,
                FileRemote(tmp_path / "empty"),
                policy=fast_policy(max_attempts=2),
            )


class TestResume:
    def test_pull_resumes_a_staged_partial(self, tmp_path):
        payload = b'{"n":1,"pad":"' + b"x" * 400 + b'"}\n'
        source = seeded_cache(tmp_path, payloads=(payload,))
        remote = FileRemote(tmp_path / "remote")
        push(source, remote, policy=fast_policy())
        clone = LocalCache(tmp_path / "clone")
        entry = source.manifest().entries[0]
        # A previous pull died mid-transfer: half the bytes are staged.
        clone.partial_dir.mkdir(parents=True)
        clone.partial_path(entry).write_bytes(payload[:137])
        report = pull(clone, remote, policy=fast_policy())
        assert report.resumed == 1
        assert report.fetched == [entry.path]
        # Only the unseen suffix crossed the wire.
        assert report.bytes_transferred == len(payload) - 137
        assert clone.verify().ok

    def test_stale_oversized_partial_is_quarantined_not_served(
        self, tmp_path
    ):
        payload = b'{"n":1}\n'
        source = seeded_cache(tmp_path, payloads=(payload,))
        remote = FileRemote(tmp_path / "remote")
        push(source, remote, policy=fast_policy())
        clone = LocalCache(tmp_path / "clone")
        entry = source.manifest().entries[0]
        clone.partial_dir.mkdir(parents=True)
        clone.partial_path(entry).write_bytes(b"z" * (len(payload) + 10))
        report = pull(clone, remote, policy=fast_policy())
        assert report.quarantined  # the overshoot became evidence
        assert clone.verify().ok  # and the retry from zero succeeded


class TestRetryAndBreaker:
    def test_transient_fetch_failures_are_retried(self, tmp_path):
        source = seeded_cache(tmp_path, payloads=(b'{"n":1}\n',))
        remote = FlakyRemote(
            FileRemote(tmp_path / "remote"), fetch_failures=2
        )
        push(source, remote.inner, policy=fast_policy())
        clone = LocalCache(tmp_path / "clone")
        report = pull(clone, remote, policy=fast_policy(max_attempts=5))
        assert report.retries == 2
        assert clone.verify().ok

    def test_exhausted_retries_raise_remote_error(self, tmp_path):
        source = seeded_cache(tmp_path, payloads=(b'{"n":1}\n',))
        remote = FlakyRemote(
            FileRemote(tmp_path / "remote"), fetch_failures=99
        )
        push(source, remote.inner, policy=fast_policy())
        clone = LocalCache(tmp_path / "clone")
        with pytest.raises(RemoteError, match="not transferred"):
            pull(clone, remote, policy=fast_policy(max_attempts=3))
        # Nothing unverified entered the trusted tree.
        assert clone.verify().ok

    def test_open_breaker_stops_hammering_a_dead_remote(self, tmp_path):
        source = seeded_cache(tmp_path, payloads=(b'{"n":1}\n',))
        remote = FlakyRemote(
            FileRemote(tmp_path / "remote"), fetch_failures=999
        )
        push(source, remote.inner, policy=fast_policy())
        clone = LocalCache(tmp_path / "clone")
        breaker = CircuitBreaker(failure_threshold=2, recovery_s=60.0)
        with pytest.raises(BreakerOpenError):
            pull(
                clone,
                remote,
                policy=fast_policy(max_attempts=5),
                breaker=breaker,
            )
        # The breaker cut the attempt budget short.
        assert remote.calls == 2

    def test_push_retries_flaky_uploads(self, tmp_path):
        source = seeded_cache(tmp_path, payloads=(b'{"n":1}\n',))
        remote = FlakyRemote(FileRemote(tmp_path / "remote"), put_failures=2)
        report = push(source, remote, policy=fast_policy(max_attempts=5))
        assert report.retries == 2
        assert remote.inner.exists(MANIFEST_NAME)


class TestCorruptionDoesNotPropagate:
    def test_push_refuses_a_corrupt_local_artifact(self, tmp_path):
        source = seeded_cache(tmp_path, payloads=(b'{"n":1}\n',))
        victim = source.manifest().entries[0]
        (source.root / victim.path).write_bytes(b"rotten")
        remote = FileRemote(tmp_path / "remote")
        with pytest.raises(IntegrityError):
            push(source, remote, policy=fast_policy())
        # The rot stayed local: nothing was uploaded.
        assert not remote.exists(victim.path)
        assert not remote.exists(MANIFEST_NAME)

    def test_tampered_remote_manifest_fails_loudly_without_retry(
        self, tmp_path
    ):
        source = seeded_cache(tmp_path)
        remote = FileRemote(tmp_path / "remote")
        push(source, remote, policy=fast_policy())
        manifest_file = tmp_path / "remote" / MANIFEST_NAME
        manifest_file.write_text(
            manifest_file.read_text().replace('"records": 1', '"records": 5')
        )
        clone = LocalCache(tmp_path / "clone")
        with pytest.raises(IntegrityError, match="signature"):
            pull(clone, remote, policy=fast_policy())


class TestHttpRemote:
    @pytest.fixture()
    def http_remote(self, tmp_path):
        """A real HTTP server fronting a pushed remote tree."""
        import functools
        from http.server import SimpleHTTPRequestHandler, ThreadingHTTPServer

        source = seeded_cache(tmp_path)
        push(source, FileRemote(tmp_path / "remote"), policy=fast_policy())
        handler = functools.partial(
            SimpleHTTPRequestHandler, directory=str(tmp_path / "remote")
        )
        handler.log_message = lambda *args, **kwargs: None
        server = ThreadingHTTPServer(("127.0.0.1", 0), handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        try:
            yield source, HttpRemote(f"http://{host}:{port}")
        finally:
            server.shutdown()
            server.server_close()

    def test_pull_over_http(self, tmp_path, http_remote):
        source, remote = http_remote
        clone = LocalCache(tmp_path / "clone")
        report = pull(clone, remote, policy=fast_policy())
        assert len(report.fetched) == 2
        assert clone.verify().ok
        assert (
            clone.manifest().manifest_sha256
            == source.manifest().manifest_sha256
        )

    def test_offset_fetch_degrades_on_rangeless_server(
        self, tmp_path, http_remote
    ):
        # SimpleHTTPRequestHandler ignores Range headers and replies
        # 200 with the whole body; the client must slice the surplus.
        source, remote = http_remote
        entry = source.manifest().entries[0]
        full = remote.fetch(entry.path)
        assert sha256_hex(full) == entry.sha256
        assert remote.fetch(entry.path, offset=5) == full[5:]

    def test_http_errors_become_remote_errors(self, http_remote):
        _, remote = http_remote
        with pytest.raises(RemoteError, match="404"):
            remote.fetch("v1/nope/nothing/" + "a" * 64 + ".json")

    def test_exists_via_head(self, http_remote):
        source, remote = http_remote
        assert remote.exists(MANIFEST_NAME)
        assert not remote.exists("v1/absent.json")


class TestOpenRemote:
    def test_url_specs_dispatch_to_http(self):
        assert isinstance(open_remote("http://example.test/c"), HttpRemote)
        assert isinstance(open_remote("https://example.test/c"), HttpRemote)

    def test_paths_dispatch_to_file(self, tmp_path):
        remote = open_remote(str(tmp_path))
        assert isinstance(remote, FileRemote)
