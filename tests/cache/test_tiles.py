"""Tile tests: deterministic builds, granularity keying, and warm-start
score parity against direct ingestion."""

import numpy as np
import pytest

from repro.cache.store import LocalCache
from repro.cache.tiles import (
    build_tiles,
    parse_tile,
    tile_entries,
    tile_key,
    tile_payload,
    warm_plane,
    write_tiles,
)
from repro.core.exceptions import DataError, IntegrityError
from repro.core.scoring import score_regions
from repro.measurements.record import Measurement
from repro.measurements.sketchplane import SketchPlane

WEEK = 7 * 86400.0


def record(i, region="alpha", source="ndt", **overrides):
    values = {
        "download_mbps": 80.0 + (i * 37 % 200),
        "upload_mbps": 10.0 + (i * 13 % 40),
        "latency_ms": 15.0 + (i * 7 % 60),
        "packet_loss": 0.001 * (i % 5),
        "isp": ("fiberco", "coppernet")[i % 2],
        "access_tech": ("fiber", "dsl", "cable")[i % 3],
    }
    values.update(overrides)
    return Measurement(
        region=region, source=source, timestamp=float(i) * 3600.0, **values
    )


@pytest.fixture()
def records():
    out = []
    for region in ("alpha", "beta"):
        for source in ("ndt", "ookla"):
            out.extend(
                record(i, region=region, source=source) for i in range(400)
            )
    return out


class TestTileKey:
    def test_granularity_keys(self):
        r = record(0, region="alpha")
        assert tile_key(r, "region") == "alpha"
        assert tile_key(r, "region_isp") == "alpha/fiberco"
        assert tile_key(r, "region_tech") == "alpha/fiber"

    def test_missing_axes_key_as_unknown(self):
        r = record(0, isp="", access_tech="")
        assert tile_key(r, "region_isp") == "alpha/unknown"
        assert tile_key(r, "region_tech") == "alpha/unknown"

    def test_unknown_granularity_raises(self):
        with pytest.raises(ValueError):
            tile_key(record(0), "continent")
        with pytest.raises(ValueError):
            build_tiles([], granularity="continent")


class TestBuildTiles:
    def test_tiles_split_by_period_and_source(self, records):
        tiles = build_tiles(records, period_s=WEEK)
        periods = {period for period, _ in tiles}
        sources = {source for _, source in tiles}
        assert len(periods) == 3  # 400 hourly samples span 3 weeks
        assert sources == {"ndt", "ookla"}
        assert sum(doc["records"] for doc in tiles.values()) == len(records)

    def test_build_is_deterministic_bytes(self, records):
        first = build_tiles(records, granularity="region_isp")
        second = build_tiles(list(records), granularity="region_isp")
        assert first.keys() == second.keys()
        for key in first:
            assert tile_payload(first[key]) == tile_payload(second[key])

    def test_rebuild_into_cache_is_idempotent(self, tmp_path, records):
        cache = LocalCache(tmp_path / "cache")
        write_tiles(cache, records)
        manifest_sha = cache.manifest().manifest_sha256
        write_tiles(cache, records)
        assert cache.manifest().manifest_sha256 == manifest_sha
        assert cache.verify().ok

    def test_parse_tile_rejects_garbage(self):
        with pytest.raises(IntegrityError):
            parse_tile(b"not json")
        with pytest.raises(IntegrityError):
            parse_tile(b'{"tile_version": 99}')
        with pytest.raises(IntegrityError):
            parse_tile(b'{"tile_version": 1, "plane": 3}')


class TestWarmPlane:
    def test_warm_plane_matches_direct_sketch_scores(
        self, tmp_path, records, config
    ):
        """The --from-cache contract: warming from tiles scores within
        the sketch plane's own accuracy envelope of direct ingestion."""
        cache = LocalCache(tmp_path / "cache")
        write_tiles(cache, records)
        warmed = warm_plane(cache)
        assert len(warmed) == len(records)

        direct = SketchPlane()
        direct.extend(records)
        warm_scores = score_regions(warmed, config, quantiles="sketch")
        direct_scores = score_regions(direct, config, quantiles="sketch")
        assert warm_scores.keys() == direct_scores.keys()
        for region in warm_scores:
            assert warm_scores[region].value == pytest.approx(
                direct_scores[region].value, abs=0.01
            )

    def test_warm_plane_quantiles_within_sketch_error_of_exact(
        self, tmp_path, records
    ):
        """p50/p95 off cached tiles stay within 1% relative error of
        exact percentiles over the raw records — the same envelope the
        sketch parity suite holds the live plane to."""
        cache = LocalCache(tmp_path / "cache")
        write_tiles(cache, records)
        warmed = warm_plane(cache)
        for region in ("alpha", "beta"):
            downloads = np.array(
                [
                    r.download_mbps
                    for r in records
                    if r.region == region and r.source == "ndt"
                ]
            )
            view = warmed.view(region, "ndt")
            from repro.core.metrics import Metric

            for pct in (50.0, 95.0):
                exact = float(np.percentile(downloads, pct))
                sketched = view.quantile(Metric.DOWNLOAD, pct)
                assert sketched == pytest.approx(exact, rel=0.01)

    def test_period_filter_time_travels(self, tmp_path, records):
        cache = LocalCache(tmp_path / "cache")
        write_tiles(cache, records)
        all_periods = cache.manifest().periods()
        first = all_periods[0]
        partial = warm_plane(cache, periods=[first])
        assert 0 < len(partial) < len(records)
        assert len(tile_entries(cache, periods=[first])) < len(
            tile_entries(cache)
        )

    def test_multiple_granularities_coexist(self, tmp_path, records):
        cache = LocalCache(tmp_path / "cache")
        write_tiles(
            cache, records, granularities=("region", "region_isp")
        )
        by_isp = warm_plane(cache, granularity="region_isp")
        assert any("/" in key for key in by_isp.regions())
        by_region = warm_plane(cache, granularity="region")
        assert set(by_region.regions()) == {"alpha", "beta"}
        # Both granularities tally every record.
        assert len(by_isp) == len(by_region) == len(records)

    def test_empty_cache_raises_data_error(self, tmp_path):
        with pytest.raises(DataError, match="no tiles"):
            warm_plane(LocalCache(tmp_path / "empty"))

    def test_corrupt_tile_is_never_warmed(self, tmp_path, records):
        cache = LocalCache(tmp_path / "cache")
        write_tiles(cache, records)
        victim = cache.manifest().entries[0]
        (cache.root / victim.path).write_bytes(b'{"tile_version": 1}')
        with pytest.raises(IntegrityError, match=victim.path):
            warm_plane(cache)
        # Evidence quarantined, not served.
        assert list(cache.quarantine_dir.iterdir())
